//! Noise-aware workload mapping (paper §VII-A).
//!
//! Worst-case noise depends on *which* cores run the workloads, not only
//! how many (Figs. 14, 15). This module evaluates mappings against the
//! noise engine and implements a mapping policy that minimizes the
//! worst-case core noise.

use crate::engine::{Engine, SimJob};
use crate::noise::{NoiseOutcome, NoiseRunConfig};
use crate::site::SiteVec;
use crate::testbed::Testbed;
use crate::workload::{mappings_of, Distribution, Mapping, WorkloadKind};
use serde::{Deserialize, Serialize};
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;

/// Noise evaluation of one mapping (or rack-scale placement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingEvaluation {
    /// The evaluated mapping.
    pub mapping: Mapping,
    /// Per-site %p2p readings.
    pub per_core_pct: SiteVec<f64>,
    /// Site ordinal with the highest reading.
    pub worst_core: usize,
    /// The highest reading — the mapping's figure of (de)merit.
    pub worst_pct: f64,
}

impl MappingEvaluation {
    /// Builds the evaluation of a mapping from its noise outcome.
    pub fn from_outcome(mapping: &Mapping, outcome: &NoiseOutcome) -> MappingEvaluation {
        let (worst_core, worst_pct) = outcome.worst();
        MappingEvaluation {
            mapping: mapping.clone(),
            per_core_pct: outcome.pct_p2p.clone(),
            worst_core,
            worst_pct,
        }
    }
}

/// The [`SimJob`] that evaluates one mapping on the testbed's chip.
pub fn mapping_job(
    tb: &Testbed,
    mapping: &Mapping,
    stim_freq_hz: f64,
    sync: Option<SyncSpec>,
    cfg: &NoiseRunConfig,
) -> SimJob {
    let loads = tb.loads_of_mapping(mapping, stim_freq_hz, sync);
    SimJob::new(std::sync::Arc::new(tb.chip().clone()), loads, cfg.clone())
}

/// Evaluates one mapping through the shared experiment engine (cached:
/// re-evaluating a mapping is free).
///
/// # Errors
///
/// Returns [`PdnError`] when the PDN solve fails.
pub fn evaluate_mapping(
    tb: &Testbed,
    mapping: &Mapping,
    stim_freq_hz: f64,
    sync: Option<SyncSpec>,
    cfg: &NoiseRunConfig,
) -> Result<MappingEvaluation, PdnError> {
    let outcome = Engine::shared().run_one(&mapping_job(tb, mapping, stim_freq_hz, sync, cfg))?;
    Ok(MappingEvaluation::from_outcome(mapping, &outcome))
}

/// Evaluates every mapping of `k` maximum-dI/dt workloads (rest idle)
/// on an explicit engine, running the jobs in parallel.
///
/// # Errors
///
/// Returns [`PdnError`] when any PDN solve fails.
pub fn evaluate_all_mappings_on(
    engine: &Engine,
    tb: &Testbed,
    k_workloads: usize,
    stim_freq_hz: f64,
    sync: Option<SyncSpec>,
    cfg: &NoiseRunConfig,
) -> Result<Vec<MappingEvaluation>, PdnError> {
    let dist = Distribution {
        max_count: k_workloads,
        medium_count: 0,
    };
    let mappings = mappings_of(&dist);
    let batch = SimJob::batch(tb.chip());
    let jobs: Vec<SimJob> = mappings
        .iter()
        .map(|m| batch.job(tb.loads_of_mapping(m, stim_freq_hz, sync), cfg.clone()))
        .collect();
    let outcomes = engine.run_jobs(&jobs)?;
    Ok(mappings
        .iter()
        .zip(&outcomes)
        .map(|(m, o)| MappingEvaluation::from_outcome(m, o))
        .collect())
}

/// Evaluates every mapping of `k` maximum-dI/dt workloads (rest idle)
/// through the shared experiment engine.
///
/// # Errors
///
/// Returns [`PdnError`] when any PDN solve fails.
pub fn evaluate_all_mappings(
    tb: &Testbed,
    k_workloads: usize,
    stim_freq_hz: f64,
    sync: Option<SyncSpec>,
    cfg: &NoiseRunConfig,
) -> Result<Vec<MappingEvaluation>, PdnError> {
    evaluate_all_mappings_on(Engine::shared(), tb, k_workloads, stim_freq_hz, sync, cfg)
}

/// A mapping policy built from measured evaluations: picks the mapping
/// with the lowest worst-case noise for each workload count.
#[derive(Debug, Clone, Default)]
pub struct NoiseAwareMapper {
    evaluations: Vec<MappingEvaluation>,
}

impl NoiseAwareMapper {
    /// Builds the mapper from a measurement campaign.
    pub fn from_measurements(evaluations: Vec<MappingEvaluation>) -> Self {
        NoiseAwareMapper { evaluations }
    }

    /// All stored evaluations.
    pub fn evaluations(&self) -> &[MappingEvaluation] {
        &self.evaluations
    }

    fn with_count(&self, k: usize) -> impl Iterator<Item = &MappingEvaluation> {
        self.evaluations.iter().filter(move |e| {
            e.mapping
                .iter()
                .filter(|w| **w != WorkloadKind::Idle)
                .count()
                == k
        })
    }

    /// Best (lowest worst-case noise) mapping for `k` workloads.
    pub fn best_for(&self, k: usize) -> Option<&MappingEvaluation> {
        self.with_count(k)
            .min_by(|a, b| a.worst_pct.total_cmp(&b.worst_pct))
    }

    /// Worst mapping for `k` workloads.
    pub fn worst_for(&self, k: usize) -> Option<&MappingEvaluation> {
        self.with_count(k)
            .max_by(|a, b| a.worst_pct.total_cmp(&b.worst_pct))
    }

    /// Noise-reduction opportunity for `k` workloads: worst minus best
    /// mapping noise, in %p2p points (the paper's Fig. 15 secondary axis).
    pub fn opportunity(&self, k: usize) -> Option<f64> {
        match (self.best_for(k), self.worst_for(k)) {
            (Some(b), Some(w)) => Some(w.worst_pct - b.worst_pct),
            _ => None,
        }
    }
}

/// The naive mapping: fill cores in index order (what a noise-oblivious
/// scheduler does).
pub fn naive_mapping(k_workloads: usize) -> Mapping {
    Mapping::from_fn(NUM_CORES, |i| {
        if i < k_workloads.min(NUM_CORES) {
            WorkloadKind::MaxDidt
        } else {
            WorkloadKind::Idle
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(mapping: Mapping, worst_pct: f64) -> MappingEvaluation {
        MappingEvaluation {
            mapping,
            per_core_pct: SiteVec::from_elem(worst_pct, NUM_CORES),
            worst_core: 0,
            worst_pct,
        }
    }

    #[test]
    fn naive_mapping_fills_in_order() {
        let m = naive_mapping(3);
        assert_eq!(
            m[..3],
            [
                WorkloadKind::MaxDidt,
                WorkloadKind::MaxDidt,
                WorkloadKind::MaxDidt
            ]
        );
        assert_eq!(m[3], WorkloadKind::Idle);
    }

    #[test]
    fn mapper_selects_extremes_per_count() {
        let mut m1 = naive_mapping(2);
        m1[1] = WorkloadKind::Idle;
        m1[2] = WorkloadKind::MaxDidt; // {0, 2}
        let mapper = NoiseAwareMapper::from_measurements(vec![
            eval(naive_mapping(2), 25.0),
            eval(m1, 28.0),
            eval(naive_mapping(3), 31.0),
        ]);
        assert_eq!(mapper.best_for(2).unwrap().worst_pct, 25.0);
        assert_eq!(mapper.worst_for(2).unwrap().worst_pct, 28.0);
        assert!((mapper.opportunity(2).unwrap() - 3.0).abs() < 1e-12);
        assert!(mapper.opportunity(4).is_none());
    }

    #[test]
    fn end_to_end_single_mapping_evaluation() {
        let tb = Testbed::fast();
        let e = evaluate_mapping(
            tb,
            &naive_mapping(2),
            2.5e6,
            None,
            &NoiseRunConfig {
                window_s: Some(30e-6),
                ..NoiseRunConfig::default()
            },
        )
        .unwrap();
        assert!(e.worst_pct > 0.0 && e.worst_pct < 100.0);
        assert_eq!(e.per_core_pct[e.worst_core], e.worst_pct);
    }
}
