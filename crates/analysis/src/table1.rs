//! The EPI ranking table (paper Table I): first and last five
//! instructions of the 1301-instruction profile.

use crate::experiment::Experiment;
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::PdnError;
use voltnoise_system::noise::NoiseOutcome;
use voltnoise_system::testbed::Testbed;
use voltnoise_uarch::epi::EpiEntry;

/// One rendered Table I row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// 1-based rank.
    pub rank: usize,
    /// Mnemonic.
    pub mnemonic: String,
    /// Description.
    pub description: String,
    /// Power normalized to the lowest-power instruction.
    pub rel_power: f64,
}

/// The Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Ranks 1–5.
    pub top: Vec<Table1Row>,
    /// Ranks 1297–1301.
    pub bottom: Vec<Table1Row>,
    /// Total instructions profiled.
    pub total: usize,
}

impl Table1 {
    /// Builds the table from a testbed's EPI profile.
    pub fn from_testbed(tb: &Testbed) -> Self {
        let profile = tb.profile();
        let row = |rank: usize, e: &EpiEntry| Table1Row {
            rank,
            mnemonic: e.mnemonic.clone(),
            description: e.description.clone(),
            rel_power: e.rel_power,
        };
        let total = profile.len();
        Table1 {
            top: profile
                .top(5)
                .iter()
                .enumerate()
                .map(|(i, e)| row(i + 1, e))
                .collect(),
            bottom: profile
                .bottom(5)
                .iter()
                .enumerate()
                .map(|(i, e)| row(total - 4 + i, e))
                .collect(),
            total,
        }
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new("Table I: first and last five instructions in the EPI profile");
        t.columns(["rank", "instr", "description", "power"]);
        for r in self.top.iter().chain(&self.bottom) {
            t.row([
                r.rank.to_string(),
                r.mnemonic.clone(),
                r.description.clone(),
                format!("{:.2}", r.rel_power),
            ]);
        }
        t.note(&format!("total instructions profiled: {}", self.total));
        t.finish()
    }
}

/// The Table I experiment: pure EPI-profile processing, no simulation.
#[derive(Debug, Clone, Default)]
pub struct Table1Experiment;

impl Experiment for Table1Experiment {
    type Artifact = Table1;

    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table I: EPI profile extremes"
    }

    fn assemble(&self, tb: &Testbed, _outcomes: &[Arc<NoiseOutcome>]) -> Result<Table1, PdnError> {
        Ok(Table1::from_testbed(tb))
    }

    fn render(&self, artifact: &Table1) -> String {
        artifact.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_rows() {
        let t = Table1::from_testbed(Testbed::fast());
        assert_eq!(t.total, 1301);
        let top: Vec<&str> = t.top.iter().map(|r| r.mnemonic.as_str()).collect();
        assert_eq!(top, vec!["CIB", "CRB", "BXHG", "CGIB", "CHHSI"]);
        let bottom: Vec<&str> = t.bottom.iter().map(|r| r.mnemonic.as_str()).collect();
        assert_eq!(bottom, vec!["DDTRA", "MXTRA", "MDTRA", "STCK", "SRNM"]);
        assert_eq!(t.bottom.last().unwrap().rank, 1301);
        // Paper scale: top ~1.58, bottom 1.00-1.01.
        assert!(t.top[0].rel_power > 1.4 && t.top[0].rel_power < 1.85);
        assert!(t.bottom.iter().all(|r| r.rel_power < 1.08));
    }

    #[test]
    fn render_contains_both_ends() {
        let t = Table1::from_testbed(Testbed::fast());
        let text = t.render();
        assert!(text.contains("CIB"));
        assert!(text.contains("SRNM"));
        assert!(text.contains("1301"));
    }
}
