#![warn(missing_docs)]

//! # voltnoise
//!
//! A simulation-based reproduction of **"Voltage Noise in Multi-core
//! Processors: Empirical Characterization and Optimization
//! Opportunities"** (Bertran et al., MICRO 2014).
//!
//! The paper characterizes supply-voltage noise on a real IBM zEC12
//! mainframe processor using a systematic dI/dt **stressmark generation
//! methodology**, per-core **skitter** noise sensors, and **Vmin**
//! undervolting experiments. This workspace rebuilds each of those
//! pieces as a software substrate and reruns the paper's entire
//! evaluation on top of them:
//!
//! - [`pdn`] — lumped-RLC power-distribution-network simulation (MNA
//!   transient + AC), with a calibrated two-domain six-core chip model;
//! - [`uarch`] — a 1301-instruction z-like CISC core model with dispatch
//!   groups, OoO issue and a per-instruction energy model;
//! - [`measure`] — skitter macros, oscilloscope, power meter, and the
//!   Vmin/R-Unit failure harness;
//! - [`stressmark`] — the paper's contribution: EPI profiling, the
//!   9-candidate/531 441-combination sequence search, and fully
//!   parameterizable dI/dt stressmark construction;
//! - [`system`] — the assembled chip + TOD synchronization + noise
//!   experiment engine + the §VII optimization mechanisms;
//! - [`analysis`] — one driver per paper table/figure.
//!
//! # Quickstart
//!
//! ```no_run
//! use voltnoise::prelude::*;
//!
//! // Build the platform: profile the ISA, search the sequences, wire the chip.
//! let tb = Testbed::shared();
//!
//! // Generate a synchronized maximum dI/dt stressmark in the resonant band.
//! let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
//! println!("dI per core: {:.1} A", sm.delta_i());
//!
//! // Run it on all six cores and read the skitters.
//! let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
//! let noise = run_noise(tb.chip(), &loads, &NoiseRunConfig::default()).unwrap();
//! println!("worst-case noise: {:.1} %p2p", noise.max_pct_p2p());
//! ```

pub use voltnoise_analysis as analysis;
pub use voltnoise_measure as measure;
pub use voltnoise_pdn as pdn;
pub use voltnoise_stressmark as stressmark;
pub use voltnoise_system as system;
pub use voltnoise_uarch as uarch;

/// The most common imports for working with the library.
pub mod prelude {
    pub use voltnoise_analysis::{
        find, full_report, registry, run_delta_i, run_impedance, run_mapping_gain, run_margin,
        run_misalignment, run_scope_shot, run_sweep, CorrelationAnalysis, DeltaIConfig, Experiment,
        ExperimentOutput, FunnelSummary, ImpedanceConfig, MappingGainConfig, MarginConfig,
        MisalignConfig, RegistryEntry, ReportScale, ScopeConfig, SweepConfig, Table1,
    };
    pub use voltnoise_measure::{
        CriticalPath, PowerMeter, ScopeTrace, Skitter, SkitterConfig, VminConfig,
    };
    pub use voltnoise_pdn::{ChipPdn, Netlist, NodeId, PdnParams, TransientSolver, NUM_CORES};
    pub use voltnoise_stressmark::{
        compile, find_max_power_sequence, min_power_sequence, CompiledStressmark, SearchConfig,
        StressmarkSpec, SyncSpec,
    };
    pub use voltnoise_system::{
        evaluate_governor, run_noise, AlignmentComparison, Chip, ChipConfig, CoreLoad, Engine,
        EngineStats, GlobalNoiseGovernor, GovernorConfig, GuardbandController, GuardbandTable,
        Mapping, NoiseAwareMapper, NoiseRunConfig, NoiseTable, SimJob, Testbed, TodSync,
        WorkloadKind,
    };
    pub use voltnoise_uarch::{CoreConfig, EpiProfile, Isa, Kernel, Opcode};
}
