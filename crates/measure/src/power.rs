//! Chip-level power metering via the service element (paper §III).
//!
//! The zEC12 service element reads current and voltage of the chip input
//! rails with milliwatt granularity; the paper uses those readings
//! "extensively to assess the generation of the dI/dt stressmarks".

use serde::{Deserialize, Serialize};

/// A chip power reading in milliwatts (integer, matching the service
/// element's granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PowerReading {
    milliwatts: i64,
}

impl PowerReading {
    /// Power in watts.
    pub fn watts(self) -> f64 {
        self.milliwatts as f64 / 1e3
    }

    /// Power in milliwatts.
    pub fn milliwatts(self) -> i64 {
        self.milliwatts
    }
}

impl std::fmt::Display for PowerReading {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} mW", self.milliwatts)
    }
}

/// Chip-level power meter.
///
/// # Examples
///
/// ```
/// use voltnoise_measure::power::PowerMeter;
///
/// let meter = PowerMeter::new();
/// let reading = meter.read(1.05, 120.0); // 1.05 V rail at 120 A
/// assert_eq!(reading.milliwatts(), 126_000);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowerMeter {
    _private: (),
}

impl PowerMeter {
    /// Creates a power meter.
    pub fn new() -> Self {
        PowerMeter::default()
    }

    /// Reads power from instantaneous rail voltage and current, rounded
    /// to milliwatts.
    pub fn read(&self, rail_volts: f64, rail_amps: f64) -> PowerReading {
        PowerReading {
            milliwatts: (rail_volts * rail_amps * 1e3).round() as i64,
        }
    }

    /// Averages a stream of (volts, amps) samples into one reading.
    pub fn read_average(&self, samples: impl IntoIterator<Item = (f64, f64)>) -> PowerReading {
        let mut acc = 0.0f64;
        let mut n = 0usize;
        for (v, i) in samples {
            acc += v * i;
            n += 1;
        }
        let w = if n == 0 { 0.0 } else { acc / n as f64 };
        PowerReading {
            milliwatts: (w * 1e3).round() as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_rounds_to_milliwatts() {
        let m = PowerMeter::new();
        assert_eq!(m.read(1.0, 0.0123456).milliwatts(), 12);
        assert!((m.read(1.05, 100.0).watts() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn average_of_constant_equals_instant() {
        let m = PowerMeter::new();
        let avg = m.read_average((0..10).map(|_| (1.05, 50.0)));
        assert_eq!(avg, m.read(1.05, 50.0));
    }

    #[test]
    fn empty_average_reads_zero() {
        assert_eq!(
            PowerMeter::new()
                .read_average(std::iter::empty())
                .milliwatts(),
            0
        );
    }

    #[test]
    fn display_has_unit() {
        assert_eq!(PowerMeter::new().read(1.0, 1.0).to_string(), "1000 mW");
    }

    #[test]
    fn readings_order_by_power() {
        let m = PowerMeter::new();
        assert!(m.read(1.05, 60.0) < m.read(1.05, 61.0));
    }
}
