//! Target definition files — the Microprobe-style knowledge base.
//!
//! The paper's methodology "uses the Microprobe micro-benchmark
//! generation framework as the underlying infrastructure ... a back-end
//! knowledge base for the zEC12 architecture had to be implemented via
//! target definition files" (§IV). This module makes the modeled target
//! a first-class, serializable artifact: the full ISA table plus the
//! core configuration round-trips through JSON, so alternative targets
//! can be described without recompiling.

use crate::isa::{InstrDef, Isa};
use crate::pipeline::CoreConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete target definition: everything the stressmark generator
/// needs to know about one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetDefinition {
    /// Target name, e.g. `"zlike-ec12"`.
    pub name: String,
    /// Format version for forward compatibility.
    pub version: u32,
    /// Core pipeline and power configuration.
    pub core: CoreConfig,
    /// The full instruction table.
    pub instructions: Vec<InstrDef>,
}

/// Errors loading a target definition.
#[derive(Debug)]
pub enum TargetError {
    /// The JSON failed to parse.
    Parse(serde_json::Error),
    /// The definition is structurally invalid.
    Invalid(String),
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::Parse(e) => write!(f, "target definition parse error: {e}"),
            TargetError::Invalid(msg) => write!(f, "invalid target definition: {msg}"),
        }
    }
}

impl std::error::Error for TargetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TargetError::Parse(e) => Some(e),
            TargetError::Invalid(_) => None,
        }
    }
}

impl TargetDefinition {
    /// Captures the current modeled target.
    pub fn zlike() -> Self {
        let isa = Isa::zlike();
        TargetDefinition {
            name: "zlike-ec12".to_string(),
            version: 1,
            core: CoreConfig::default(),
            instructions: isa.iter().map(|(_, d)| d.clone()).collect(),
        }
    }

    /// Serializes the definition to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics: the definition contains only serializable data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("target definitions serialize")
    }

    /// Parses and validates a definition from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TargetError`] on malformed JSON, duplicate mnemonics,
    /// non-positive attributes, or an inconsistent core configuration.
    pub fn from_json(json: &str) -> Result<Self, TargetError> {
        let def: TargetDefinition = serde_json::from_str(json).map_err(TargetError::Parse)?;
        def.validate()?;
        Ok(def)
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TargetError::Invalid`] describing the first problem.
    pub fn validate(&self) -> Result<(), TargetError> {
        let bad = |msg: String| Err(TargetError::Invalid(msg));
        if self.instructions.is_empty() {
            return bad("no instructions".into());
        }
        let freq_ok = self.core.freq_hz.is_finite() && self.core.freq_hz > 0.0;
        if !freq_ok || self.core.dispatch_width == 0 || self.core.rob_uops == 0 {
            return bad("core configuration has non-positive parameters".into());
        }
        let mut seen = std::collections::HashSet::new();
        for d in &self.instructions {
            if !seen.insert(d.mnemonic.as_str()) {
                return bad(format!("duplicate mnemonic {}", d.mnemonic));
            }
            if d.energy_pj <= 0.0 || !d.energy_pj.is_finite() {
                return bad(format!("{}: non-positive energy", d.mnemonic));
            }
            if d.latency == 0 || d.occupancy == 0 {
                return bad(format!("{}: zero latency or occupancy", d.mnemonic));
            }
            if d.serializing && !d.dispatch_alone {
                return bad(format!(
                    "{}: serializing ops must dispatch alone",
                    d.mnemonic
                ));
            }
        }
        Ok(())
    }

    /// Builds the runtime [`Isa`] from the definition.
    ///
    /// # Errors
    ///
    /// Returns [`TargetError::Invalid`] when validation fails.
    pub fn build_isa(&self) -> Result<Isa, TargetError> {
        self.validate()?;
        Ok(Isa::from_defs(self.instructions.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zlike_round_trips_through_json() {
        let def = TargetDefinition::zlike();
        let json = def.to_json();
        let back = TargetDefinition::from_json(&json).unwrap();
        assert_eq!(back.name, "zlike-ec12");
        assert_eq!(back.instructions.len(), 1301);
        let isa = back.build_isa().unwrap();
        assert_eq!(isa.len(), 1301);
        assert!(isa.opcode("CIB").is_some());
    }

    #[test]
    fn rebuilt_isa_preserves_attributes() {
        let def = TargetDefinition::zlike();
        let isa = def.build_isa().unwrap();
        let reference = Isa::zlike();
        for m in ["CIB", "SRNM", "MADBR", "XC"] {
            let a = isa.def(isa.opcode(m).unwrap());
            let b = reference.def(reference.opcode(m).unwrap());
            assert_eq!(a, b, "{m} differs after round trip");
        }
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(
            TargetDefinition::from_json("{not json"),
            Err(TargetError::Parse(_))
        ));
    }

    #[test]
    fn rejects_duplicates_and_bad_values() {
        let mut def = TargetDefinition::zlike();
        def.instructions[1].mnemonic = def.instructions[0].mnemonic.clone();
        assert!(matches!(def.validate(), Err(TargetError::Invalid(_))));

        let mut def = TargetDefinition::zlike();
        def.instructions[0].energy_pj = -1.0;
        assert!(def.validate().is_err());

        let mut def = TargetDefinition::zlike();
        def.core.dispatch_width = 0;
        assert!(def.validate().is_err());
    }

    #[test]
    fn rejects_serializing_without_dispatch_alone() {
        let mut def = TargetDefinition::zlike();
        let idx = def
            .instructions
            .iter()
            .position(|d| d.serializing)
            .expect("serializing op exists");
        def.instructions[idx].dispatch_alone = false;
        assert!(def.validate().is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let mut def = TargetDefinition::zlike();
        def.instructions.clear();
        let err = def.validate().unwrap_err();
        assert!(err.to_string().contains("no instructions"));
    }
}
