//! Admission control: a step-budget ceiling on the estimated in-flight
//! solver load.
//!
//! Every batch request carries a deterministic step estimate (see
//! [`crate::wire::JobSpec::estimated_steps`]). Admission adds the
//! estimate to a running in-flight total under a lock; if the total
//! would exceed the configured ceiling the batch is refused — the
//! caller answers `429` with a `Retry-After` hint — and the total is
//! untouched. Admitted batches hold a [`Permit`] whose `Drop` returns
//! the estimate, so the accounting can never leak on an early return,
//! a panic in the handler, or a reaped deadline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The admission gate. Cheap to clone handles via [`Arc`].
#[derive(Debug)]
pub struct AdmissionControl {
    /// Maximum estimated steps allowed in flight at once.
    ceiling: u64,
    /// Estimated steps currently admitted.
    in_flight: Mutex<u64>,
    /// Batches refused so far (monotonic).
    rejected: AtomicU64,
}

/// Why a batch was refused, with the data the `429` response needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// The batch's own estimate.
    pub estimated: u64,
    /// Estimated steps already in flight at refusal time.
    pub in_flight: u64,
    /// The configured ceiling.
    pub ceiling: u64,
}

impl Rejection {
    /// Deterministic `Retry-After` hint, seconds: proportional to how
    /// overcommitted the gate is, clamped to `[1, 30]`.
    pub fn retry_after_secs(&self) -> u64 {
        let over = self.in_flight.saturating_add(self.estimated);
        let ratio = over / self.ceiling.max(1);
        ratio.clamp(1, 30)
    }
}

impl AdmissionControl {
    /// A gate admitting up to `ceiling` estimated steps in flight
    /// (a ceiling of 0 refuses every batch — useful for tests and for
    /// administratively draining a server).
    pub fn new(ceiling: u64) -> Arc<AdmissionControl> {
        Arc::new(AdmissionControl {
            ceiling,
            in_flight: Mutex::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// The configured ceiling.
    pub fn ceiling(&self) -> u64 {
        self.ceiling
    }

    /// Estimated steps currently admitted.
    pub fn in_flight(&self) -> u64 {
        *self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Batches refused so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Tries to admit a batch of `estimated` steps.
    ///
    /// A batch whose own estimate exceeds the ceiling is still admitted
    /// when the gate is *idle* (`in_flight == 0`): refusing it would
    /// starve it forever, and one oversized batch alone is exactly the
    /// load the operator sized the server for.
    ///
    /// # Errors
    ///
    /// Returns a [`Rejection`] carrying the numbers behind the `429`.
    pub fn try_admit(self: &Arc<Self>, estimated: u64) -> Result<Permit, Rejection> {
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let admitted_when_idle = *in_flight == 0 && self.ceiling > 0;
        let over = self.ceiling == 0 || in_flight.saturating_add(estimated) > self.ceiling;
        if over && !admitted_when_idle {
            let rejection = Rejection {
                estimated,
                in_flight: *in_flight,
                ceiling: self.ceiling,
            };
            drop(in_flight);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(rejection);
        }
        *in_flight += estimated;
        Ok(Permit {
            gate: self.clone(),
            estimated,
        })
    }

    fn release(&self, estimated: u64) {
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *in_flight = in_flight.saturating_sub(estimated);
    }
}

/// An admitted batch's hold on the gate; dropping it returns the
/// estimate.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<AdmissionControl>,
    estimated: u64,
}

impl Permit {
    /// The estimate this permit holds.
    pub fn estimated(&self) -> u64 {
        self.estimated
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.release(self.estimated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_the_ceiling_then_rejects() {
        let gate = AdmissionControl::new(100);
        let a = gate.try_admit(60).unwrap();
        assert_eq!(gate.in_flight(), 60);
        let rejection = gate.try_admit(50).unwrap_err();
        assert_eq!(
            rejection,
            Rejection {
                estimated: 50,
                in_flight: 60,
                ceiling: 100
            }
        );
        assert_eq!(gate.rejected(), 1);
        // Within the remaining headroom: admitted.
        let b = gate.try_admit(40).unwrap();
        assert_eq!(gate.in_flight(), 100);
        drop(a);
        drop(b);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn permit_drop_releases_even_out_of_order() {
        let gate = AdmissionControl::new(10);
        let a = gate.try_admit(4).unwrap();
        let b = gate.try_admit(6).unwrap();
        drop(b);
        assert_eq!(gate.in_flight(), 4);
        drop(a);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn oversized_batch_admitted_only_when_idle() {
        let gate = AdmissionControl::new(10);
        // Idle gate: a 50-step batch passes (anti-starvation).
        let big = gate.try_admit(50).unwrap();
        assert_eq!(big.estimated(), 50);
        // Busy gate: everything else bounces.
        assert!(gate.try_admit(1).is_err());
        drop(big);
        assert!(gate.try_admit(1).is_ok());
    }

    #[test]
    fn zero_ceiling_refuses_everything() {
        let gate = AdmissionControl::new(0);
        assert!(gate.try_admit(1).is_err());
        assert!(gate.try_admit(0).is_err());
        assert_eq!(gate.rejected(), 2);
    }

    #[test]
    fn retry_after_is_deterministic_and_clamped() {
        let low = Rejection {
            estimated: 5,
            in_flight: 6,
            ceiling: 10,
        };
        assert_eq!(low.retry_after_secs(), 1);
        let heavy = Rejection {
            estimated: 50,
            in_flight: 60,
            ceiling: 10,
        };
        assert_eq!(heavy.retry_after_secs(), 11);
        let absurd = Rejection {
            estimated: u64::MAX,
            in_flight: 1,
            ceiling: 1,
        };
        assert_eq!(absurd.retry_after_secs(), 30);
    }
}
