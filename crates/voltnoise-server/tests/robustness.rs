//! End-to-end robustness tests against a real `voltnoise-server`
//! process: crash (SIGKILL) + store resume, deadline reaping, admission
//! rejection under synthetic overload, and cross-client dedup.
//!
//! Every server is started `--reduced` (the cached reduced-search
//! testbed) so the in-process "direct" baselines built with
//! [`Testbed::fast`] resolve to byte-identical content keys.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;
use voltnoise_server::http_request;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::NoiseRunConfig;
use voltnoise_system::testbed::Testbed;
use voltnoise_system::workload::WorkloadKind;

/// A spawned server process; killed on drop so a failing test cannot
/// leak daemons.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(extra_args: &[&str], envs: &[(&str, &str)]) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_voltnoise-server"));
        cmd.args(["--reduced", "--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn voltnoise-server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before announcing its address")
                .expect("server stdout readable");
            if let Some(addr) = line.strip_prefix("voltnoise-server listening on ") {
                break addr.trim().to_string();
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProc { child, addr }
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> voltnoise_server::Response {
        http_request(&self.addr, method, path, body, Duration::from_secs(300))
            .expect("request to test server")
    }

    fn stats(&self) -> String {
        self.request("GET", "/stats", None).body
    }

    fn sigkill(&mut self) {
        self.child.kill().expect("SIGKILL server");
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Extracts and strict-decodes the top-level `"signal"` section of the
/// `/stats` JSON. The raw telemetry nests a `"signal"` aggregate too,
/// so take the *last* occurrence (the appended summary); that section
/// object is flat, so it ends at the first `}` after the key.
fn signal_section(stats: &str) -> voltnoise_server::SignalStats {
    let at = stats
        .rfind("\"signal\":")
        .unwrap_or_else(|| panic!("no signal section in {stats}"));
    let rest = &stats[at + "\"signal\":".len()..];
    let end = rest
        .find('}')
        .unwrap_or_else(|| panic!("unterminated signal section in {stats}"));
    voltnoise_server::parse_signal_stats(&rest[..=end])
        .unwrap_or_else(|e| panic!("signal section must strict-decode: {e} in {stats}"))
}

/// Extracts an integer stats field from the `/stats` JSON.
fn stat_field(stats: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = stats
        .find(&needle)
        .unwrap_or_else(|| panic!("no {name} in {stats}"));
    stats[at + needle.len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {name} in {stats}"))
}

/// Parses streamed `/jobs` lines into `(index, outcome-or-fault)` with
/// the raw outcome JSON preserved for byte-identity checks.
#[derive(Debug)]
enum Settled {
    Ok(String),
    Fault { kind: String },
}

fn parse_lines(body: &str) -> Vec<(usize, Settled)> {
    let mut out = Vec::new();
    for line in body.lines().filter(|l| !l.is_empty()) {
        if line.starts_with("{\"done\"") {
            continue;
        }
        let index: usize = line
            .strip_prefix("{\"index\":")
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparsable result line: {line}"));
        if let Some(at) = line.find("\"outcome\":") {
            let outcome = line[at + "\"outcome\":".len()..]
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated outcome in {line}"))
                .to_string();
            out.push((index, Settled::Ok(outcome)));
        } else if let Some(at) = line.find("\"kind\":\"") {
            let rest = &line[at + "\"kind\":\"".len()..];
            let kind = rest.split('"').next().unwrap_or("").to_string();
            out.push((index, Settled::Fault { kind }));
        } else {
            panic!("unrecognized result line: {line}");
        }
    }
    out.sort_by_key(|(i, _)| *i);
    out
}

const MAPPING_A: &str = r#"["max","idle","idle","idle","idle","idle"]"#;
const MAPPING_B: &str = r#"["max","med","idle","idle","idle","idle"]"#;

fn quick_job(mapping: &str, seed: u64) -> String {
    format!(
        r#"{{"mapping":{mapping},"stim_freq_hz":2.5e6,"sync":true,"window_s":5e-6,"seed":{seed}}}"#
    )
}

/// The in-process twin of [`quick_job`]: byte-identity baselines run
/// these through a local engine.
fn quick_sim_job(tb: &Testbed, kinds: [WorkloadKind; 6], seed: u64) -> SimJob {
    let loads = tb.loads_of_mapping(
        &kinds,
        2.5e6,
        Some(voltnoise_stressmark::SyncSpec::paper_default()),
    );
    SimJob::new(
        Arc::new(tb.chip().clone()),
        loads,
        NoiseRunConfig {
            window_s: Some(5e-6),
            seed,
            ..NoiseRunConfig::default()
        },
    )
}

fn kinds_a() -> [WorkloadKind; 6] {
    [
        WorkloadKind::MaxDidt,
        WorkloadKind::Idle,
        WorkloadKind::Idle,
        WorkloadKind::Idle,
        WorkloadKind::Idle,
        WorkloadKind::Idle,
    ]
}

fn kinds_b() -> [WorkloadKind; 6] {
    [
        WorkloadKind::MaxDidt,
        WorkloadKind::MediumDidt,
        WorkloadKind::Idle,
        WorkloadKind::Idle,
        WorkloadKind::Idle,
        WorkloadKind::Idle,
    ]
}

#[test]
fn health_stats_and_malformed_bodies() {
    let server = ServerProc::start(&[], &[]);
    assert_eq!(server.request("GET", "/healthz", None).body, "ok\n");
    assert_eq!(server.request("GET", "/readyz", None).body, "ready\n");
    let stats = server.stats();
    assert_eq!(stat_field(&stats, "solves"), 0);
    // The body carries a "signal" section that strict-decodes: a fresh
    // server has analyzed no traces, so the quantiles are absent.
    let signal = signal_section(&stats);
    assert_eq!(signal.traces, 0);
    assert_eq!(signal.rejected, 0);
    assert_eq!(signal.peak_freq_hz_p50, None);
    // Malformed bodies answer 400 with the machine-readable shape —
    // never a hang, never a connection drop.
    for bad in [
        "not json",
        r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":null}]}"#,
        r#"{"jobs":[]}"#,
        r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1.0,"stim_freq_hz":2.0}]}"#,
    ] {
        let resp = server.request("POST", "/jobs", Some(bad));
        assert_eq!(resp.status, 400, "body {bad:?} gave {}", resp.body);
        assert!(
            resp.body.contains("\"error\":\"invalid-request\""),
            "{}",
            resp.body
        );
        assert!(resp.body.contains("\"code\":"), "{}", resp.body);
    }
    // Unknown route → 404, wrong method → 404.
    assert_eq!(server.request("GET", "/nope", None).status, 404);
    assert_eq!(server.request("POST", "/healthz", Some("x")).status, 404);
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    // A one-step ceiling: the first (idle-exception) batch occupies the
    // gate for seconds, the probe bounces deterministically.
    let server = ServerProc::start(&["--step-ceiling", "1"], &[]);
    // A deliberately huge unbudgeted job (10 ms window ≈ millions of
    // steps): in flight long enough that the probe below always lands
    // while the gate is busy.
    let big = format!(
        r#"{{"jobs":[{{"mapping":{MAPPING_A},"stim_freq_hz":2.5e6,"window_s":1e-2,"seed":99}}]}}"#
    );
    let addr = server.addr.clone();
    let big_req = std::thread::spawn(move || {
        // The server kills this batch at drop; the response (all-fault
        // or severed) is irrelevant to the assertion.
        let _ = http_request(&addr, "POST", "/jobs", Some(&big), Duration::from_secs(2));
    });
    // Give the big batch time to pass admission and start solving.
    std::thread::sleep(Duration::from_millis(500));
    let probe = format!(r#"{{"jobs":[{}]}}"#, quick_job(MAPPING_A, 1));
    let resp = server.request("POST", "/jobs", Some(&probe));
    assert_eq!(resp.status, 429, "{}", resp.body);
    let retry_after: u64 = resp
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is an integer");
    assert!(retry_after >= 1);
    assert!(
        resp.body.contains("\"error\":\"overloaded\""),
        "{}",
        resp.body
    );
    assert!(resp.body.contains("\"retry_after_s\":"), "{}", resp.body);
    let stats = server.stats();
    assert!(
        stat_field(&stats, "shed_total") >= 1,
        "shed not counted: {stats}"
    );
    drop(server);
    let _ = big_req.join();
}

#[test]
fn deadline_reaps_unbudgeted_jobs() {
    let server = ServerProc::start(&[], &[]);
    // No step budget, a 10 ms window (far more work than the deadline
    // allows), 400 ms wall-clock deadline.
    let body = format!(
        r#"{{"jobs":[{{"mapping":{MAPPING_A},"stim_freq_hz":2.5e6,"window_s":1e-2,"seed":5}}],"deadline_ms":400}}"#
    );
    let resp = server.request("POST", "/jobs", Some(&body));
    assert_eq!(resp.status, 200);
    let results = parse_lines(&resp.body);
    assert_eq!(results.len(), 1);
    match &results[0].1 {
        Settled::Fault { kind } => assert_eq!(kind, "deadline"),
        other => panic!("expected a deadline fault, got {other:?}"),
    }
    assert!(resp.body.contains("\"faults\":1"), "{}", resp.body);
    let stats = server.stats();
    assert!(
        stat_field(&stats, "deadline_faults") >= 1,
        "deadline fault not counted: {stats}"
    );
}

#[test]
fn concurrent_identical_clients_share_one_solve() {
    let server = ServerProc::start(&[], &[]);
    let body = format!(r#"{{"jobs":[{}]}}"#, quick_job(MAPPING_A, 7));
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = server.addr.clone();
                let body = body.clone();
                scope.spawn(move || {
                    http_request(
                        &addr,
                        "POST",
                        "/jobs",
                        Some(&body),
                        Duration::from_secs(300),
                    )
                    .expect("concurrent jobs request")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut outcomes = Vec::new();
    for resp in &responses {
        assert_eq!(resp.status, 200);
        let results = parse_lines(&resp.body);
        assert_eq!(results.len(), 1);
        match &results[0].1 {
            Settled::Ok(outcome) => outcomes.push(outcome.clone()),
            other => panic!("expected success, got {other:?}"),
        }
    }
    assert_eq!(outcomes[0], outcomes[1], "clients must share one result");
    let stats = server.stats();
    assert_eq!(stat_field(&stats, "solves"), 1, "{stats}");
    assert_eq!(
        stat_field(&stats, "inflight_joins") + stat_field(&stats, "cache_hits"),
        1,
        "second client neither joined nor hit the cache: {stats}"
    );
    // Byte-identity against a direct in-process engine run.
    let tb = Testbed::fast();
    let direct = Engine::with_workers(1)
        .run_jobs(&[quick_sim_job(tb, kinds_a(), 7)])
        .expect("direct run");
    let direct_json = serde_json::to_string(&*direct[0]).expect("serialize outcome");
    assert_eq!(
        outcomes[0], direct_json,
        "server result differs from direct"
    );
}

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

fn sigterm(child: &Child) {
    let pid = i32::try_from(child.id()).expect("pid fits");
    assert_eq!(unsafe { kill(pid, 15) }, 0, "SIGTERM delivery failed");
}

#[test]
fn readyz_flips_during_drain_before_inflight_batches_finish() {
    // A long drain grace keeps the in-flight batch alive through the
    // whole test: the assertion is about /readyz flipping *before* the
    // batch finishes, not about cancellation.
    let server = ServerProc::start(&["--drain-grace-ms", "60000"], &[]);
    assert_eq!(server.request("GET", "/readyz", None).status, 200);
    // An unbudgeted 10 ms window: in flight for seconds.
    let body = format!(
        r#"{{"jobs":[{{"mapping":{MAPPING_A},"stim_freq_hz":2.5e6,"window_s":1e-2,"seed":31}}]}}"#
    );
    let addr = server.addr.clone();
    let batch = std::thread::spawn(move || {
        http_request(
            &addr,
            "POST",
            "/jobs",
            Some(&body),
            Duration::from_secs(120),
        )
        .expect("in-flight batch")
    });
    // Let the batch pass admission and start solving.
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        !batch.is_finished(),
        "batch finished before the drain test began"
    );
    sigterm(&server.child);
    // Not-ready must surface while the batch is still in flight.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let resp = loop {
        let resp = server.request("GET", "/readyz", None);
        if resp.status == 503 || std::time::Instant::now() >= deadline {
            break resp;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("draining"), "{}", resp.body);
    assert!(
        !batch.is_finished(),
        "/readyz flipped only after the in-flight batch finished"
    );
    // New work is refused while draining...
    let probe = format!(r#"{{"jobs":[{}]}}"#, quick_job(MAPPING_B, 32));
    assert_eq!(server.request("POST", "/jobs", Some(&probe)).status, 503);
    // ...but the in-flight batch still completes cleanly.
    let resp = batch.join().expect("batch thread");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let results = parse_lines(&resp.body);
    assert_eq!(results.len(), 1);
    assert!(
        matches!(results[0].1, Settled::Ok(_)),
        "in-flight batch faulted during drain: {results:?}"
    );
}

#[test]
fn sigkill_then_restart_resumes_from_store_without_duplicate_solves() {
    let store = std::env::temp_dir().join(format!(
        "voltnoise-server-test-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&store);
    let store_str = store.to_string_lossy().to_string();

    // Phase 1: solve two jobs, then SIGKILL — no drain, no compaction,
    // only the store's per-append durability.
    let batch_ab = format!(
        r#"{{"jobs":[{},{}]}}"#,
        quick_job(MAPPING_A, 7),
        quick_job(MAPPING_B, 7)
    );
    let mut first = ServerProc::start(&[], &[("VOLTNOISE_STORE", store_str.as_str())]);
    let resp = first.request("POST", "/jobs", Some(&batch_ab));
    assert_eq!(resp.status, 200);
    let first_results = parse_lines(&resp.body);
    assert_eq!(first_results.len(), 2);
    let first_outcomes: Vec<String> = first_results
        .iter()
        .map(|(i, s)| match s {
            Settled::Ok(outcome) => outcome.clone(),
            other => panic!("job {i} faulted: {other:?}"),
        })
        .collect();
    first.sigkill();
    assert!(
        std::fs::metadata(&store)
            .map(|m| m.len() > 0)
            .unwrap_or(false),
        "killed server left no store at {store_str}"
    );

    // Phase 2: restart over the same store, replay the campaign plus
    // one new job. The old jobs must be answered from disk — zero
    // duplicate solves — and byte-identically.
    let batch_abc = format!(
        r#"{{"jobs":[{},{},{}]}}"#,
        quick_job(MAPPING_A, 7),
        quick_job(MAPPING_B, 7),
        quick_job(MAPPING_A, 8)
    );
    let second = ServerProc::start(&[], &[("VOLTNOISE_STORE", store_str.as_str())]);
    let resp = second.request("POST", "/jobs", Some(&batch_abc));
    assert_eq!(resp.status, 200);
    let second_results = parse_lines(&resp.body);
    assert_eq!(second_results.len(), 3);
    let second_outcomes: Vec<String> = second_results
        .iter()
        .map(|(i, s)| match s {
            Settled::Ok(outcome) => outcome.clone(),
            other => panic!("job {i} faulted after resume: {other:?}"),
        })
        .collect();
    assert_eq!(
        second_outcomes[0], first_outcomes[0],
        "resume changed job 0"
    );
    assert_eq!(
        second_outcomes[1], first_outcomes[1],
        "resume changed job 1"
    );
    let stats = second.stats();
    assert_eq!(
        stat_field(&stats, "store_hits"),
        2,
        "resumed jobs not served from disk: {stats}"
    );
    assert_eq!(
        stat_field(&stats, "solves"),
        1,
        "resume re-solved stored jobs: {stats}"
    );

    // Byte-identity of the whole campaign against a direct engine run.
    let tb = Testbed::fast();
    let jobs = [
        quick_sim_job(tb, kinds_a(), 7),
        quick_sim_job(tb, kinds_b(), 7),
        quick_sim_job(tb, kinds_a(), 8),
    ];
    let direct = Engine::with_workers(1).run_jobs(&jobs).expect("direct run");
    for (i, outcome) in direct.iter().enumerate() {
        let direct_json = serde_json::to_string(&**outcome).expect("serialize outcome");
        assert_eq!(
            second_outcomes[i], direct_json,
            "job {i} differs from the direct engine run"
        );
    }
    let _ = std::fs::remove_file(&store);
}
