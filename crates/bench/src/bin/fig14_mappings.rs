//! Regenerates paper Fig. 14: three worst-case stressmarks mapped split
//! across rows vs clustered in one row.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig14");
}
