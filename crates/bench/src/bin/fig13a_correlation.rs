//! Regenerates paper Fig. 13a: the inter-core noise correlation matrix
//! over all workload mappings, with the detected core clusters.

use voltnoise::analysis::CorrelationAnalysis;
use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { DeltaIConfig::reduced() } else { DeltaIConfig::paper() };
    let data = run_delta_i(tb, &cfg).expect("campaign runs");
    let analysis = CorrelationAnalysis::from_dataset(&data);
    opts.finish(&analysis.render(), &analysis);
}
