//! Skitter macro model: on-chip voltage-noise sensing.
//!
//! The zEC12 skitter macros are latched tapped delay lines of 129
//! inverters that capture clock-edge positions every cycle; supply droop
//! slows the inverters, moving the captured edge, so the sticky-mode
//! min/max edge positions measure worst-case noise as a percent
//! peak-to-peak (%p2p) of the line (paper §III, \[13\]\[42\]).
//!
//! The model maps instantaneous supply voltage to an edge position via an
//! overdrive power law (inverter delay ∝ (V − V_th)^−β), quantizes to tap
//! granularity — producing the step structure of the paper's Fig. 7a —
//! and saturates at the ends of the line, matching the reduced linearity
//! the paper notes at high noise.

use serde::{Deserialize, Serialize};

/// Configuration of one skitter macro.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkitterConfig {
    /// Taps in the delay line (the hardware uses 129).
    pub taps: u32,
    /// Edge position (taps) observed at exactly nominal voltage.
    pub nominal_position: f64,
    /// Effective inverter threshold voltage in volts.
    pub vth: f64,
    /// Overdrive sensitivity exponent β.
    pub beta: f64,
    /// Nominal supply voltage in volts.
    pub v_nom: f64,
    /// Baseline clock-jitter spread in taps, present even on a quiet rail.
    pub baseline_jitter_taps: f64,
    /// Process-variation multiplier on sensitivity (1.0 = typical).
    pub sensitivity_variation: f64,
}

impl Default for SkitterConfig {
    fn default() -> Self {
        SkitterConfig {
            taps: 129,
            nominal_position: 90.0,
            vth: 0.60,
            beta: 3.0,
            v_nom: 1.05,
            baseline_jitter_taps: 3.0,
            sensitivity_variation: 1.0,
        }
    }
}

/// A skitter macro instance.
///
/// # Examples
///
/// ```
/// use voltnoise_measure::skitter::{Skitter, SkitterConfig};
///
/// let sk = Skitter::new(SkitterConfig::default());
/// // A quiet rail reads only the baseline jitter.
/// let quiet = sk.measure([1.05f64; 100].iter().copied());
/// assert!(quiet.pct_p2p() < 4.0);
/// // An 80 mV peak-to-peak swing reads tens of %p2p.
/// let noisy = sk.measure((0..100).map(|i| 1.05 + 0.04 * ((i as f64) * 0.3).sin()));
/// assert!(noisy.pct_p2p() > quiet.pct_p2p() + 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Skitter {
    config: SkitterConfig,
}

impl Skitter {
    /// Creates a skitter from its configuration.
    pub fn new(config: SkitterConfig) -> Self {
        Skitter { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SkitterConfig {
        &self.config
    }

    /// Continuous edge position (taps) at supply voltage `v`.
    ///
    /// Below the threshold voltage the line stops toggling; the position
    /// pins to zero.
    pub fn edge_position(&self, v: f64) -> f64 {
        let c = &self.config;
        let od = (v - c.vth).max(0.0);
        let od_nom = c.v_nom - c.vth;
        let ratio = (od / od_nom).powf(c.beta * c.sensitivity_variation);
        (c.nominal_position * ratio).clamp(0.0, c.taps as f64)
    }

    /// Quantized (latched) edge position at supply voltage `v`.
    pub fn latched_position(&self, v: f64) -> u32 {
        self.edge_position(v).round() as u32
    }

    /// Sticky-mode measurement over a stream of voltage samples: records
    /// every latch position an edge lands in and reports the spread.
    ///
    /// Returns the baseline-only reading when the iterator is empty.
    pub fn measure(&self, samples: impl IntoIterator<Item = f64>) -> SkitterReading {
        let mut min_pos = f64::INFINITY;
        let mut max_pos = f64::NEG_INFINITY;
        let mut count = 0usize;
        for v in samples {
            let p = self.edge_position(v);
            min_pos = min_pos.min(p);
            max_pos = max_pos.max(p);
            count += 1;
        }
        if count == 0 {
            min_pos = self.config.nominal_position;
            max_pos = self.config.nominal_position;
        }
        // Baseline clock jitter widens the sticky window symmetrically.
        let half_jitter = self.config.baseline_jitter_taps / 2.0;
        let lo = (min_pos - half_jitter).clamp(0.0, self.config.taps as f64);
        let hi = (max_pos + half_jitter).clamp(0.0, self.config.taps as f64);
        SkitterReading {
            min_tap: lo.floor() as u32,
            max_tap: hi.ceil() as u32,
            taps: self.config.taps,
            samples: count,
        }
    }

    /// Sticky measurement from a min/max voltage pair (used when the
    /// simulator reports extrema instead of full traces).
    pub fn measure_extremes(&self, v_min: f64, v_max: f64) -> SkitterReading {
        self.measure([v_min, v_max])
    }
}

/// Result of a sticky-mode skitter measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkitterReading {
    /// Lowest latch that captured an edge.
    pub min_tap: u32,
    /// Highest latch that captured an edge.
    pub max_tap: u32,
    /// Length of the delay line.
    pub taps: u32,
    /// Number of voltage samples observed.
    pub samples: usize,
}

impl SkitterReading {
    /// Percent peak-to-peak variation — the paper's %p2p metric. Higher
    /// %p2p means larger voltage droop.
    pub fn pct_p2p(&self) -> f64 {
        (self.max_tap.saturating_sub(self.min_tap)) as f64 / self.taps as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sk() -> Skitter {
        Skitter::new(SkitterConfig::default())
    }

    #[test]
    fn nominal_voltage_reads_nominal_position() {
        let s = sk();
        assert!((s.edge_position(1.05) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn position_is_monotonic_in_voltage() {
        let s = sk();
        let mut prev = 0.0;
        for k in 0..60 {
            let v = 0.7 + 0.01 * k as f64;
            let p = s.edge_position(v);
            assert!(p >= prev, "non-monotonic at v={v}");
            prev = p;
        }
    }

    #[test]
    fn position_saturates_at_line_ends() {
        let s = sk();
        assert_eq!(s.edge_position(2.0), 129.0);
        assert_eq!(s.edge_position(0.3), 0.0);
    }

    #[test]
    fn deeper_droop_reads_higher_p2p() {
        let s = sk();
        let small = s.measure_extremes(1.03, 1.06).pct_p2p();
        let big = s.measure_extremes(0.99, 1.09).pct_p2p();
        assert!(big > small + 5.0, "big {big} small {small}");
    }

    #[test]
    fn p2p_response_saturates_at_high_noise() {
        // The paper notes "the linearity between Vnoise and skitter
        // measurements diminishes" in the high-noise region.
        let s = sk();
        let gain_low = s.measure_extremes(1.05 - 0.02, 1.05 + 0.02).pct_p2p() / 0.04;
        let gain_high = s.measure_extremes(1.05 - 0.12, 1.05 + 0.12).pct_p2p() / 0.24;
        assert!(
            gain_high < gain_low,
            "expected compression: low {gain_low}, high {gain_high}"
        );
    }

    #[test]
    fn variation_increases_reading() {
        let cfg = SkitterConfig {
            sensitivity_variation: 1.2,
            ..SkitterConfig::default()
        };
        let fast = Skitter::new(cfg);
        let typ = sk();
        let v_lo = 1.00;
        let v_hi = 1.09;
        assert!(
            fast.measure_extremes(v_lo, v_hi).pct_p2p()
                > typ.measure_extremes(v_lo, v_hi).pct_p2p()
        );
    }

    #[test]
    fn empty_sample_stream_reads_baseline() {
        let r = sk().measure(std::iter::empty());
        assert!(r.pct_p2p() <= 4.0);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn calibration_anchor_points() {
        // Anchors used by the system-level calibration: an ~85 mV p2p swing
        // around the loaded operating point reads about 40 %p2p, and a
        // ~130 mV swing reads near 60 %p2p (paper Figs. 7a / 9 scales).
        let s = sk();
        let mid = 1.045;
        let read = |p2p: f64| {
            s.measure_extremes(mid - p2p / 2.0, mid + p2p / 2.0)
                .pct_p2p()
        };
        let r85 = read(0.085);
        let r130 = read(0.130);
        assert!((35.0..48.0).contains(&r85), "85 mV reads {r85}");
        assert!((53.0..68.0).contains(&r130), "130 mV reads {r130}");
    }
}
