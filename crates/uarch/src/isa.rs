//! The modeled z-like CISC instruction set.
//!
//! The paper profiles **every** instruction of the zEC12 ISA — 1301
//! micro-benchmarks (Table I shows ranks 1–5 and 1297–1301). This module
//! reconstructs an ISA of the same size and power structure: the
//! instructions the paper names carry their published descriptions and
//! relative power ordering, and the remainder is generated from
//! z/Architecture-style mnemonic families with deterministic per-instruction
//! attribute variation.

use crate::units::{IssueClass, UnitKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of an instruction within an [`Isa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Opcode(pub(crate) u16);

impl Opcode {
    /// Raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static properties of one instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrDef {
    /// Assembly mnemonic, unique within the ISA.
    pub mnemonic: String,
    /// Human-readable description (Table I style).
    pub description: String,
    /// Functional unit that executes the instruction.
    pub unit: UnitKind,
    /// Result latency in cycles.
    pub latency: u32,
    /// Cycles the issue port stays blocked (1 = fully pipelined).
    pub occupancy: u32,
    /// Dynamic energy per execution, in picojoules.
    pub energy_pj: f64,
    /// Branches end a dispatch group.
    pub ends_group: bool,
    /// Must be dispatched in a group of its own.
    pub dispatch_alone: bool,
    /// Serializes the pipeline: dispatch stalls until it completes.
    pub serializing: bool,
}

impl InstrDef {
    /// Issue class derived from the timing attributes, used by the
    /// stressmark candidate categorization.
    pub fn issue_class(&self) -> IssueClass {
        if self.serializing {
            IssueClass::Serializing
        } else if self.occupancy > 1 {
            IssueClass::Blocking
        } else if self.latency <= 1 {
            IssueClass::Short
        } else {
            IssueClass::Pipelined
        }
    }
}

/// An instruction-set architecture: a fixed table of [`InstrDef`]s.
///
/// # Examples
///
/// ```
/// use voltnoise_uarch::isa::Isa;
///
/// let isa = Isa::zlike();
/// assert_eq!(isa.len(), 1301);
/// let cib = isa.opcode("CIB").unwrap();
/// assert!(isa.def(cib).ends_group);
/// ```
#[derive(Debug, Clone)]
pub struct Isa {
    defs: Vec<InstrDef>,
    by_mnemonic: HashMap<String, Opcode>,
}

/// Number of instructions in the modeled z-like ISA (paper Table I ranks
/// run 1..=1301).
pub const ZLIKE_ISA_SIZE: usize = 1301;

impl Isa {
    /// Builds an ISA from explicit definitions.
    ///
    /// # Panics
    ///
    /// Panics on duplicate mnemonics or more than `u16::MAX` entries.
    pub fn from_defs(defs: Vec<InstrDef>) -> Self {
        assert!(defs.len() <= u16::MAX as usize, "too many instructions");
        let mut by_mnemonic = HashMap::with_capacity(defs.len());
        for (i, d) in defs.iter().enumerate() {
            let prev = by_mnemonic.insert(d.mnemonic.clone(), Opcode(i as u16));
            assert!(prev.is_none(), "duplicate mnemonic {}", d.mnemonic);
        }
        Isa { defs, by_mnemonic }
    }

    /// The modeled 1301-instruction z-like ISA.
    pub fn zlike() -> Self {
        Isa::from_defs(build_zlike_defs())
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when the ISA holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Definition of an opcode.
    ///
    /// # Panics
    ///
    /// Panics if the opcode is out of range (opcodes are only minted by
    /// this ISA, so this indicates opcode/ISA confusion).
    pub fn def(&self, op: Opcode) -> &InstrDef {
        &self.defs[op.index()]
    }

    /// Looks up an opcode by mnemonic.
    pub fn opcode(&self, mnemonic: &str) -> Option<Opcode> {
        self.by_mnemonic.get(mnemonic).copied()
    }

    /// Iterates `(Opcode, &InstrDef)` pairs in opcode order.
    pub fn iter(&self) -> impl Iterator<Item = (Opcode, &InstrDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (Opcode(i as u16), d))
    }

    /// All opcodes in order.
    pub fn opcodes(&self) -> impl Iterator<Item = Opcode> {
        (0..self.defs.len() as u16).map(Opcode)
    }
}

/// FNV-1a hash used for deterministic per-mnemonic attribute jitter.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic jitter in `[0, 1)` derived from a mnemonic and a salt.
fn jitter(mnemonic: &str, salt: u64) -> f64 {
    let mut h = fnv1a(mnemonic).wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // splitmix64-style finalizer for uniform bit mixing.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

struct Curated {
    mnemonic: &'static str,
    description: &'static str,
    unit: UnitKind,
    latency: u32,
    occupancy: u32,
    energy_pj: f64,
    ends_group: bool,
    dispatch_alone: bool,
    serializing: bool,
}

const fn c(
    mnemonic: &'static str,
    description: &'static str,
    unit: UnitKind,
    latency: u32,
    occupancy: u32,
    energy_pj: f64,
) -> Curated {
    Curated {
        mnemonic,
        description,
        unit,
        latency,
        occupancy,
        energy_pj,
        ends_group: false,
        dispatch_alone: false,
        serializing: false,
    }
}

const fn branch(
    mnemonic: &'static str,
    description: &'static str,
    unit: UnitKind,
    energy_pj: f64,
) -> Curated {
    Curated {
        mnemonic,
        description,
        unit,
        latency: 1,
        occupancy: 1,
        energy_pj,
        ends_group: true,
        dispatch_alone: false,
        serializing: false,
    }
}

const fn sys(
    mnemonic: &'static str,
    description: &'static str,
    latency: u32,
    energy_pj: f64,
) -> Curated {
    Curated {
        mnemonic,
        description,
        unit: UnitKind::Sys,
        latency,
        occupancy: latency,
        energy_pj,
        ends_group: false,
        dispatch_alone: true,
        serializing: true,
    }
}

/// Hand-curated instructions, including every instruction the paper's
/// Table I names, with energies tuned so the EPI ranking reproduces the
/// table's ordering.
const CURATED: &[Curated] = &[
    // --- Table I top five: fused compare-and-branch ops dominate. ---
    branch(
        "CIB",
        "Compare immediate and branch (32<8)",
        UnitKind::Bru,
        905.0,
    ),
    branch("CRB", "Compare and branch (32)", UnitKind::Bru, 898.0),
    branch("BXHG", "Branch on index high (64)", UnitKind::Bru, 896.0),
    branch(
        "CGIB",
        "Compare immediate and branch (64<8)",
        UnitKind::Bru,
        886.0,
    ),
    c(
        "CHHSI",
        "Compare halfword immediate (16<16)",
        UnitKind::Fxu,
        1,
        1,
        441.0,
    ),
    // --- More compare/branch family members. ---
    branch("CGRB", "Compare and branch (64)", UnitKind::Bru, 872.0),
    branch(
        "CLRB",
        "Compare logical and branch (32)",
        UnitKind::Bru,
        868.0,
    ),
    branch(
        "CLGRB",
        "Compare logical and branch (64)",
        UnitKind::Bru,
        860.0,
    ),
    branch("BXH", "Branch on index high (32)", UnitKind::Bru, 855.0),
    branch(
        "BXLEG",
        "Branch on index low or equal (64)",
        UnitKind::Bru,
        852.0,
    ),
    branch(
        "BRCT",
        "Branch relative on count (32)",
        UnitKind::Bru,
        610.0,
    ),
    branch(
        "BRCTG",
        "Branch relative on count (64)",
        UnitKind::Bru,
        612.0,
    ),
    branch("BC", "Branch on condition", UnitKind::Bru, 430.0),
    branch(
        "BCR",
        "Branch on condition (register)",
        UnitKind::Bru,
        380.0,
    ),
    branch("BRC", "Branch relative on condition", UnitKind::Bru, 428.0),
    branch(
        "BRCL",
        "Branch relative on condition long",
        UnitKind::Bru,
        452.0,
    ),
    branch("BRAS", "Branch relative and save", UnitKind::Bru, 530.0),
    branch(
        "BRASL",
        "Branch relative and save long",
        UnitKind::Bru,
        545.0,
    ),
    // --- High-power fixed point. ---
    c(
        "CHSI",
        "Compare halfword immediate (32<16)",
        UnitKind::Fxu,
        1,
        1,
        432.0,
    ),
    c(
        "CGHSI",
        "Compare halfword immediate (64<16)",
        UnitKind::Fxu,
        1,
        1,
        430.0,
    ),
    c("CR", "Compare (32)", UnitKind::Fxu, 1, 1, 402.0),
    c("CGR", "Compare (64)", UnitKind::Fxu, 1, 1, 405.0),
    c("AR", "Add (32)", UnitKind::Fxu, 1, 1, 398.0),
    c("AGR", "Add (64)", UnitKind::Fxu, 1, 1, 404.0),
    c("ALR", "Add logical (32)", UnitKind::Fxu, 1, 1, 391.0),
    c("SLR", "Subtract logical (32)", UnitKind::Fxu, 1, 1, 390.0),
    c("SR", "Subtract (32)", UnitKind::Fxu, 1, 1, 393.0),
    c("SGR", "Subtract (64)", UnitKind::Fxu, 1, 1, 399.0),
    c("NR", "And (32)", UnitKind::Fxu, 1, 1, 352.0),
    c("OR", "Or (32)", UnitKind::Fxu, 1, 1, 351.0),
    c("XR", "Exclusive or (32)", UnitKind::Fxu, 1, 1, 365.0),
    c("XGR", "Exclusive or (64)", UnitKind::Fxu, 1, 1, 371.0),
    c("LCR", "Load complement (32)", UnitKind::Fxu, 1, 1, 342.0),
    c("LPR", "Load positive (32)", UnitKind::Fxu, 1, 1, 341.0),
    c(
        "SLLG",
        "Shift left single logical (64)",
        UnitKind::Fxu,
        1,
        1,
        382.0,
    ),
    c(
        "SRLG",
        "Shift right single logical (64)",
        UnitKind::Fxu,
        1,
        1,
        381.0,
    ),
    c(
        "RLLG",
        "Rotate left single logical (64)",
        UnitKind::Fxu,
        1,
        1,
        388.0,
    ),
    c("MSR", "Multiply single (32)", UnitKind::Fxu, 5, 2, 520.0),
    c("MSGR", "Multiply single (64)", UnitKind::Fxu, 7, 2, 560.0),
    c(
        "MLGR",
        "Multiply logical (128<64)",
        UnitKind::Fxu,
        8,
        2,
        610.0,
    ),
    c("DLGR", "Divide logical (64)", UnitKind::Fxu, 30, 26, 1450.0),
    c("DSGR", "Divide single (64)", UnitKind::Fxu, 30, 26, 1430.0),
    c("DR", "Divide (32)", UnitKind::Fxu, 24, 20, 1280.0),
    // --- Loads and stores. ---
    c("L", "Load (32)", UnitKind::Lsu, 4, 1, 425.0),
    c("LG", "Load (64)", UnitKind::Lsu, 4, 1, 430.0),
    c("LGR", "Load register (64)", UnitKind::Fxu, 1, 1, 310.0),
    c("LR", "Load register (32)", UnitKind::Fxu, 1, 1, 305.0),
    c("LH", "Load halfword (32<16)", UnitKind::Lsu, 4, 1, 415.0),
    c(
        "LLGC",
        "Load logical character (64<8)",
        UnitKind::Lsu,
        4,
        1,
        410.0,
    ),
    c("ST", "Store (32)", UnitKind::Lsu, 1, 1, 390.0),
    c("STG", "Store (64)", UnitKind::Lsu, 1, 1, 398.0),
    c("STH", "Store halfword (16)", UnitKind::Lsu, 1, 1, 381.0),
    c("MVC", "Move character", UnitKind::Lsu, 6, 3, 890.0),
    c(
        "CLC",
        "Compare logical character",
        UnitKind::Lsu,
        6,
        3,
        870.0,
    ),
    c("XC", "Exclusive or character", UnitKind::Lsu, 6, 3, 905.0),
    // --- Binary floating point. ---
    c("AEBR", "Add short BFP", UnitKind::Bfu, 6, 1, 640.0),
    c("ADBR", "Add long BFP", UnitKind::Bfu, 6, 1, 655.0),
    c("MEEBR", "Multiply short BFP", UnitKind::Bfu, 7, 1, 700.0),
    c("MDBR", "Multiply long BFP", UnitKind::Bfu, 7, 1, 718.0),
    c(
        "MADBR",
        "Multiply and add long BFP",
        UnitKind::Bfu,
        7,
        1,
        772.0,
    ),
    c(
        "MAEBR",
        "Multiply and add short BFP",
        UnitKind::Bfu,
        7,
        1,
        756.0,
    ),
    c("DDBR", "Divide long BFP", UnitKind::Bfu, 31, 27, 1820.0),
    c("DEBR", "Divide short BFP", UnitKind::Bfu, 25, 21, 1610.0),
    c(
        "SQDBR",
        "Square root long BFP",
        UnitKind::Bfu,
        37,
        33,
        1950.0,
    ),
    c("LDR", "Load FPR (long)", UnitKind::Bfu, 1, 1, 290.0),
    c("CDBR", "Compare long BFP", UnitKind::Bfu, 4, 1, 520.0),
    // --- Decimal floating point: Table I bottom entries. ---
    c("ADTR", "Add long DFP", UnitKind::Dfu, 12, 8, 720.0),
    c("SDTR", "Subtract long DFP", UnitKind::Dfu, 12, 8, 718.0),
    c("CDTR", "Compare long DFP", UnitKind::Dfu, 9, 6, 600.0),
    c(
        "DDTRA",
        "Divide long DFP with rounding mode",
        UnitKind::Dfu,
        38,
        38,
        760.0,
    ),
    c(
        "MXTRA",
        "Multiply extended DFP with rounding mode",
        UnitKind::Dfu,
        33,
        33,
        640.0,
    ),
    c(
        "MDTRA",
        "Multiply long DFP with rounding mode",
        UnitKind::Dfu,
        28,
        28,
        520.0,
    ),
    c(
        "DXTRA",
        "Divide extended DFP with rounding mode",
        UnitKind::Dfu,
        42,
        42,
        880.0,
    ),
    c("QADTR", "Quantize long DFP", UnitKind::Dfu, 14, 10, 690.0),
    // --- System / serializing: Table I bottom entries. ---
    sys("STCK", "Store clock", 28, 480.0),
    sys("SRNM", "Set rounding mode", 26, 420.0),
    sys("STCKF", "Store clock fast", 22, 500.0),
    sys("SFPC", "Set floating point control", 26, 560.0),
    sys("STFPC", "Store floating point control", 24, 540.0),
    sys("EFPC", "Extract floating point control", 24, 530.0),
    sys("IPM", "Insert program mask", 18, 410.0),
    sys("SPM", "Set program mask", 20, 450.0),
];

struct Family {
    unit: UnitKind,
    description: &'static str,
    bases: &'static [&'static str],
    suffixes: &'static [&'static str],
    latency: u32,
    occupancy: u32,
    energy_lo: f64,
    energy_hi: f64,
    ends_group: bool,
    quota: usize,
}

/// Synthetic mnemonic families that fill the ISA to 1301 entries. The
/// unit/class mix mirrors a CISC ISA: a large fixed-point and
/// storage-to-storage population, sizable BFP/DFP blocks, branch variants
/// and a tail of serializing controls.
const FAMILIES: &[Family] = &[
    Family {
        unit: UnitKind::Fxu,
        description: "fixed-point register-register",
        bases: &[
            "A", "S", "N", "O", "X", "C", "CL", "AL", "SL", "M", "LT", "LN", "LP", "LC",
        ],
        suffixes: &[
            "RK", "GRK", "HHR", "HLR", "LHR", "RJ", "GFR", "YR", "HR", "GHR", "RT", "GRT",
        ],
        latency: 1,
        occupancy: 1,
        energy_lo: 300.0,
        energy_hi: 430.0,
        ends_group: false,
        quota: 168,
    },
    Family {
        unit: UnitKind::Fxu,
        description: "fixed-point register-immediate",
        bases: &["A", "S", "N", "O", "X", "C", "CL", "M", "LT", "TM"],
        suffixes: &[
            "FI", "GFI", "HI", "GHI", "IH", "IL", "IHF", "ILF", "SI", "GSI", "HIK", "GHIK",
        ],
        latency: 1,
        occupancy: 1,
        energy_lo: 310.0,
        energy_hi: 435.0,
        ends_group: false,
        quota: 120,
    },
    Family {
        unit: UnitKind::Fxu,
        description: "shift and rotate",
        bases: &[
            "SLL", "SRL", "SLA", "SRA", "RLL", "SLD", "SRD", "RISB", "RNSB", "ROSB", "RXSB",
        ],
        suffixes: &["", "K", "G", "GK", "A", "L", "H", "LG", "HG"],
        latency: 1,
        occupancy: 1,
        energy_lo: 330.0,
        energy_hi: 410.0,
        ends_group: false,
        quota: 80,
    },
    Family {
        unit: UnitKind::Fxu,
        description: "fixed-point multiply/divide",
        bases: &["MS", "ML", "MH", "MSG", "MLG", "D", "DL", "DSG"],
        suffixes: &["F", "FR", "Y", "RL", "GF", "GFR", "H", "HY"],
        latency: 7,
        occupancy: 2,
        energy_lo: 480.0,
        energy_hi: 640.0,
        ends_group: false,
        quota: 48,
    },
    Family {
        unit: UnitKind::Lsu,
        description: "load",
        bases: &[
            "L", "LG", "LH", "LB", "LLC", "LLH", "LLG", "LT", "LRV", "LM", "LPQ", "LAT",
        ],
        suffixes: &[
            "Y", "F", "FY", "T", "H", "HY", "RL", "GF", "GRL", "C", "B", "E",
        ],
        latency: 4,
        occupancy: 1,
        energy_lo: 360.0,
        energy_hi: 430.0,
        ends_group: false,
        quota: 130,
    },
    Family {
        unit: UnitKind::Lsu,
        description: "store",
        bases: &["ST", "STG", "STH", "STC", "STRV", "STM", "STPQ", "STOC"],
        suffixes: &["Y", "F", "FY", "T", "H", "HY", "RL", "G", "CY", "M", "E"],
        latency: 1,
        occupancy: 1,
        energy_lo: 340.0,
        energy_hi: 405.0,
        ends_group: false,
        quota: 80,
    },
    Family {
        unit: UnitKind::Lsu,
        description: "storage-to-storage",
        bases: &[
            "MVC", "CLC", "XC", "NC", "OC", "TR", "TRT", "ED", "UNPK", "PACK", "ZAP", "AP", "SP",
            "CP",
        ],
        suffixes: &["IN", "L", "LE", "U", "K", "A", "E", "Y"],
        latency: 8,
        occupancy: 4,
        energy_lo: 700.0,
        energy_hi: 960.0,
        ends_group: false,
        quota: 90,
    },
    Family {
        unit: UnitKind::Bfu,
        description: "binary floating point",
        bases: &[
            "AE", "AD", "AX", "SE", "SD", "SX", "ME", "MD", "MXD", "CE", "CD", "LE", "LD", "FI",
        ],
        suffixes: &["B", "BR", "BRA", "R", "E", "ER", "TR", "Y"],
        latency: 6,
        occupancy: 1,
        energy_lo: 560.0,
        energy_hi: 740.0,
        ends_group: false,
        quota: 100,
    },
    Family {
        unit: UnitKind::Bfu,
        description: "BFP divide/sqrt",
        bases: &["DE", "DD", "DX", "SQE", "SQD", "SQX"],
        suffixes: &["B", "BR", "R", "TRA", "Y"],
        latency: 30,
        occupancy: 26,
        energy_lo: 1500.0,
        energy_hi: 2000.0,
        ends_group: false,
        quota: 26,
    },
    Family {
        unit: UnitKind::Dfu,
        description: "decimal floating point",
        bases: &[
            "AD", "SD", "MD", "CD", "CED", "CGD", "CUD", "IED", "LTD", "RRD", "SLD", "SRD", "EED",
            "ESD",
        ],
        suffixes: &["TR", "TRB", "TRC", "TG", "TE", "TD", "TQ", "TX"],
        latency: 16,
        occupancy: 12,
        energy_lo: 520.0,
        energy_hi: 780.0,
        ends_group: false,
        quota: 96,
    },
    Family {
        unit: UnitKind::Bru,
        description: "branch",
        bases: &[
            "B", "BAL", "BAS", "BCT", "BIC", "BPP", "BPRP", "CRJ", "CGRJ", "CIJ", "CGIJ", "CLRJ",
            "CLIJ",
        ],
        suffixes: &["", "R", "G", "GR", "L", "LR", "H", "NE", "E"],
        latency: 1,
        occupancy: 1,
        energy_lo: 380.0,
        energy_hi: 700.0,
        ends_group: true,
        quota: 60,
    },
    Family {
        unit: UnitKind::Sys,
        description: "system control",
        bases: &[
            "PFPO", "TABORT", "ETND", "PPA", "NIAI", "LFAS", "CSST", "PLO", "SRST", "CUSE",
        ],
        suffixes: &["", "R", "G", "X"],
        latency: 24,
        occupancy: 24,
        energy_lo: 560.0,
        energy_hi: 660.0,
        ends_group: false,
        quota: 30,
    },
];

fn build_zlike_defs() -> Vec<InstrDef> {
    let mut defs: Vec<InstrDef> = Vec::with_capacity(ZLIKE_ISA_SIZE);
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();

    for cur in CURATED {
        used.insert(cur.mnemonic.to_string());
        defs.push(InstrDef {
            mnemonic: cur.mnemonic.to_string(),
            description: cur.description.to_string(),
            unit: cur.unit,
            latency: cur.latency,
            occupancy: cur.occupancy,
            energy_pj: cur.energy_pj,
            ends_group: cur.ends_group,
            dispatch_alone: cur.dispatch_alone,
            serializing: cur.serializing,
        });
    }

    for fam in FAMILIES {
        let mut added = 0usize;
        'outer: for suffix in fam.suffixes {
            for base in fam.bases {
                if added >= fam.quota {
                    break 'outer;
                }
                let mnemonic = format!("{base}{suffix}");
                if !used.insert(mnemonic.clone()) {
                    continue;
                }
                let j = jitter(&mnemonic, fam.unit.index() as u64);
                let energy = fam.energy_lo + (fam.energy_hi - fam.energy_lo) * j;
                // Small deterministic latency wobble for multi-cycle ops.
                let lat_wobble = if fam.latency > 4 {
                    ((jitter(&mnemonic, 77) * 5.0) as u32).saturating_sub(2)
                } else {
                    0
                };
                let serializing = fam.unit == UnitKind::Sys;
                defs.push(InstrDef {
                    mnemonic: mnemonic.clone(),
                    description: format!("{} ({mnemonic})", fam.description),
                    unit: fam.unit,
                    latency: fam.latency + lat_wobble,
                    occupancy: if fam.occupancy > 1 {
                        fam.occupancy + lat_wobble
                    } else {
                        fam.occupancy
                    },
                    energy_pj: energy,
                    ends_group: fam.ends_group,
                    dispatch_alone: serializing,
                    serializing,
                });
                added += 1;
            }
        }
        // Mnemonic collisions (within or across families) may leave a
        // family slightly under quota; the numbered top-up below keeps the
        // total exact.
        let _ = added;
    }

    // Top up with numbered fixed-point variants to hit the exact size.
    let mut k = 0usize;
    while defs.len() < ZLIKE_ISA_SIZE {
        let mnemonic = format!("LXV{k}");
        if used.insert(mnemonic.clone()) {
            let j = jitter(&mnemonic, 3);
            defs.push(InstrDef {
                mnemonic: mnemonic.clone(),
                description: format!("extended fixed-point variant ({mnemonic})"),
                unit: UnitKind::Fxu,
                latency: 1,
                occupancy: 1,
                energy_pj: 300.0 + 120.0 * j,
                ends_group: false,
                dispatch_alone: false,
                serializing: false,
            });
        }
        k += 1;
    }
    defs.truncate(ZLIKE_ISA_SIZE);
    defs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zlike_has_exactly_1301_instructions() {
        assert_eq!(Isa::zlike().len(), ZLIKE_ISA_SIZE);
    }

    #[test]
    fn mnemonics_are_unique() {
        let isa = Isa::zlike();
        let mut seen = std::collections::HashSet::new();
        for (_, d) in isa.iter() {
            assert!(seen.insert(d.mnemonic.clone()), "duplicate {}", d.mnemonic);
        }
    }

    #[test]
    fn table1_instructions_exist_with_paper_descriptions() {
        let isa = Isa::zlike();
        let expect = [
            ("CIB", "Compare immediate and branch (32<8)"),
            ("CRB", "Compare and branch (32)"),
            ("BXHG", "Branch on index high (64)"),
            ("CGIB", "Compare immediate and branch (64<8)"),
            ("CHHSI", "Compare halfword immediate (16<16)"),
            ("DDTRA", "Divide long DFP with rounding mode"),
            ("MXTRA", "Multiply extended DFP with rounding mode"),
            ("MDTRA", "Multiply long DFP with rounding mode"),
            ("STCK", "Store clock"),
            ("SRNM", "Set rounding mode"),
        ];
        for (m, d) in expect {
            let op = isa.opcode(m).unwrap_or_else(|| panic!("missing {m}"));
            assert_eq!(isa.def(op).description, d);
        }
    }

    #[test]
    fn serializing_ops_dispatch_alone() {
        let isa = Isa::zlike();
        for (_, d) in isa.iter() {
            if d.serializing {
                assert!(d.dispatch_alone, "{} serializes but not alone", d.mnemonic);
            }
        }
    }

    #[test]
    fn issue_classes_derive_consistently() {
        let isa = Isa::zlike();
        let srnm = isa.def(isa.opcode("SRNM").unwrap());
        assert_eq!(srnm.issue_class(), IssueClass::Serializing);
        let chhsi = isa.def(isa.opcode("CHHSI").unwrap());
        assert_eq!(chhsi.issue_class(), IssueClass::Short);
        let l = isa.def(isa.opcode("L").unwrap());
        assert_eq!(l.issue_class(), IssueClass::Pipelined);
        let ddtra = isa.def(isa.opcode("DDTRA").unwrap());
        assert_eq!(ddtra.issue_class(), IssueClass::Blocking);
    }

    #[test]
    fn all_units_are_represented() {
        let isa = Isa::zlike();
        for unit in crate::units::UnitKind::ALL {
            assert!(
                isa.iter().any(|(_, d)| d.unit == unit),
                "no instructions on {unit}"
            );
        }
    }

    #[test]
    fn energies_are_positive_and_bounded() {
        let isa = Isa::zlike();
        for (_, d) in isa.iter() {
            assert!(
                d.energy_pj > 100.0 && d.energy_pj < 3000.0,
                "{}",
                d.mnemonic
            );
            assert!(d.latency >= 1);
            assert!(d.occupancy >= 1);
        }
    }

    #[test]
    fn jitter_is_deterministic_and_uniformish() {
        assert_eq!(jitter("ABC", 1), jitter("ABC", 1));
        assert_ne!(jitter("ABC", 1), jitter("ABD", 1));
        let mean: f64 = (0..1000).map(|i| jitter(&format!("m{i}"), 0)).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn branches_end_groups() {
        let isa = Isa::zlike();
        for m in ["CIB", "BC", "BRCT"] {
            assert!(isa.def(isa.opcode(m).unwrap()).ends_group);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate mnemonic")]
    fn from_defs_rejects_duplicates() {
        let d = InstrDef {
            mnemonic: "DUP".into(),
            description: "dup".into(),
            unit: UnitKind::Fxu,
            latency: 1,
            occupancy: 1,
            energy_pj: 300.0,
            ends_group: false,
            dispatch_alone: false,
            serializing: false,
        };
        let _ = Isa::from_defs(vec![d.clone(), d]);
    }
}
