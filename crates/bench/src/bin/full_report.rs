//! Generates the complete evaluation report (every table and figure) in
//! one run. Use `--reduced` for a fast pass; omit it for paper scale.

use voltnoise::analysis::{full_report, ReportScale};
use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let (tb, scale) = if opts.reduced {
        (Testbed::fast(), ReportScale::Reduced)
    } else {
        (Testbed::shared(), ReportScale::Paper)
    };
    let report = full_report(tb, scale).expect("all experiments run");
    print!("{report}");
}
