//! Regenerates paper Fig. 12: the available voltage margin measured by
//! Vmin undervolting campaigns over the frequency/event grid.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig12");
}
