//! Regenerates paper Fig. 15: worst-case noise of the best vs worst
//! workload mapping for every number of scheduled workloads.

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { MappingGainConfig::reduced() } else { MappingGainConfig::paper() };
    let res = run_mapping_gain(tb, &cfg).expect("mapping study runs");
    opts.finish(&res.render(), &res);
}
