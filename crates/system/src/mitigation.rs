//! Chip-wide noise mitigation (paper §V-F).
//!
//! The sensitivity analysis concludes that "any mechanism implemented to
//! reduce the noise should be implemented on a chip-wide basis", because
//! (a) large intra-core ΔI events on a few cores do not lead to high
//! noise, while (b) relatively small ΔI events happening simultaneously
//! on all cores can — and announces that "the next generation processor
//! chip for System z mainframes will include a mechanism to globally
//! monitor/reduce noise if necessary".
//!
//! This module implements that mechanism: a **global ΔI governor** that
//! admits per-core high-activity phases into 62.5 ns stagger slots such
//! that no slot's aggregate ΔI exceeds a budget, plus the *local*
//! alternative (per-core ΔI clamping) it outperforms.

use crate::noise::{run_noise, CoreLoad, NoiseRunConfig};
use crate::testbed::Testbed;
use serde::{Deserialize, Serialize};
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;

/// Configuration of the global governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Maximum aggregate ΔI admitted into one coincidence slot, amperes.
    pub delta_i_budget_a: f64,
    /// Maximum stagger the governor may impose, in 62.5 ns ticks.
    pub max_stagger_ticks: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            delta_i_budget_a: 25.0,
            max_stagger_ticks: 16,
        }
    }
}

/// The admission decision for one core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Admission {
    /// Core index.
    pub core: usize,
    /// Stagger slot assigned (ticks of 62.5 ns after the boundary).
    pub slot: u32,
}

/// The global ΔI governor: a greedy slot packer.
///
/// # Examples
///
/// ```
/// use voltnoise_system::mitigation::{GlobalNoiseGovernor, GovernorConfig};
///
/// let gov = GlobalNoiseGovernor::new(GovernorConfig {
///     delta_i_budget_a: 20.0,
///     max_stagger_ticks: 8,
/// });
/// // Six cores each wanting a 10 A event: two per slot.
/// let slots = gov.schedule(&[10.0; 6]);
/// assert_eq!(slots.iter().filter(|a| a.slot == 0).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalNoiseGovernor {
    config: GovernorConfig,
}

impl GlobalNoiseGovernor {
    /// Creates a governor.
    pub fn new(config: GovernorConfig) -> Self {
        GlobalNoiseGovernor { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    /// Assigns each requesting core a stagger slot such that no slot's
    /// aggregate ΔI exceeds the budget (first-fit decreasing packing).
    /// Requests larger than the whole budget get a slot of their own.
    /// When the stagger bound is exhausted, remaining requests overflow
    /// into the last slot (the governor never blocks work, it only
    /// de-synchronizes it).
    pub fn schedule(&self, delta_i_requests: &[f64]) -> Vec<Admission> {
        let mut order: Vec<usize> = (0..delta_i_requests.len()).collect();
        order.sort_by(|&a, &b| delta_i_requests[b].total_cmp(&delta_i_requests[a]));
        let slots = self.config.max_stagger_ticks as usize + 1;
        let mut load = vec![0.0f64; slots];
        let mut out = Vec::with_capacity(delta_i_requests.len());
        for core in order {
            let need = delta_i_requests[core];
            let slot = (0..slots)
                .find(|&s| load[s] + need <= self.config.delta_i_budget_a || load[s] == 0.0)
                .unwrap_or(slots - 1);
            load[slot] += need;
            out.push(Admission {
                core,
                slot: slot as u32,
            });
        }
        out.sort_by_key(|a| a.core);
        out
    }

    /// Worst single-slot aggregate ΔI after scheduling.
    pub fn worst_slot_delta_i(&self, delta_i_requests: &[f64]) -> f64 {
        let admissions = self.schedule(delta_i_requests);
        let slots = self.config.max_stagger_ticks as usize + 1;
        let mut load = vec![0.0f64; slots];
        for a in &admissions {
            load[a.slot as usize] += delta_i_requests[a.core];
        }
        load.into_iter().fold(0.0, f64::max)
    }
}

/// Evaluation of the governor against the ungoverned worst case and the
/// local-clamping alternative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorEvaluation {
    /// Worst-case noise with no mitigation (all cores synchronized).
    pub ungoverned_pct: f64,
    /// Worst-case noise with the global governor staggering admissions.
    pub governed_pct: f64,
    /// Worst-case noise with *local* per-core ΔI clamping scaled to the
    /// same per-core budget share (budget / 6), still synchronized.
    pub local_clamp_pct: f64,
    /// ΔI each core loses under local clamping (throughput proxy), as a
    /// fraction of its full ΔI. The global governor loses none.
    pub local_clamp_delta_i_loss: f64,
    /// Largest stagger the governor imposed, in ticks.
    pub max_stagger_ticks: u32,
}

impl GovernorEvaluation {
    /// Renders the §V-F comparison.
    pub fn render(&self) -> String {
        format!(
            "# §V-F: chip-wide noise mitigation\n\
             ungoverned (all cores synchronized): {:.1} %p2p\n\
             global governor (stagger <= {} ticks, no dI loss): {:.1} %p2p\n\
             local per-core dI clamp ({:.0} % dI lost per core): {:.1} %p2p\n",
            self.ungoverned_pct,
            self.max_stagger_ticks,
            self.governed_pct,
            self.local_clamp_delta_i_loss * 100.0,
            self.local_clamp_pct
        )
    }
}

/// Evaluates the governor on the testbed at a stimulus frequency.
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn evaluate_governor(
    tb: &Testbed,
    stim_freq_hz: f64,
    gov_cfg: &GovernorConfig,
    run_cfg: &NoiseRunConfig,
) -> Result<GovernorEvaluation, PdnError> {
    let sm = tb.max_stressmark(stim_freq_hz, Some(SyncSpec::paper_default()));
    let delta_i = sm.delta_i();
    let requests = [delta_i; NUM_CORES];

    // Baseline: everything synchronized at slot 0.
    let baseline: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let ungoverned = run_noise(tb.chip(), &baseline, run_cfg)?.max_pct_p2p();

    // Governed: apply the admission slots as sync offsets.
    let governor = GlobalNoiseGovernor::new(*gov_cfg);
    let admissions = governor.schedule(&requests);
    let governed_loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|i| {
        let mut gsm = sm.clone();
        if let Some(sync) = &mut gsm.spec.sync {
            sync.offset_ticks = admissions[i].slot;
        }
        CoreLoad::Stressmark(gsm)
    });
    let governed = run_noise(tb.chip(), &governed_loads, run_cfg)?.max_pct_p2p();
    let max_stagger = admissions.iter().map(|a| a.slot).max().unwrap_or(0);

    // Local alternative: each core clamps its own ΔI to budget / 6 but
    // events stay synchronized (a local mechanism cannot know about the
    // other cores).
    let per_core_budget = gov_cfg.delta_i_budget_a / NUM_CORES as f64;
    let clamp_fraction = (per_core_budget / delta_i).min(1.0);
    let clamped_loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| {
        let mut csm = sm.clone();
        csm.i_high_a = csm.i_low_a + delta_i * clamp_fraction;
        CoreLoad::Stressmark(csm)
    });
    let local_clamp = run_noise(tb.chip(), &clamped_loads, run_cfg)?.max_pct_p2p();

    Ok(GovernorEvaluation {
        ungoverned_pct: ungoverned,
        governed_pct: governed,
        local_clamp_pct: local_clamp,
        local_clamp_delta_i_loss: 1.0 - clamp_fraction,
        max_stagger_ticks: max_stagger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_respects_budget_when_possible() {
        let gov = GlobalNoiseGovernor::new(GovernorConfig {
            delta_i_budget_a: 22.0,
            max_stagger_ticks: 8,
        });
        let requests = [10.0; 6];
        assert!(gov.worst_slot_delta_i(&requests) <= 22.0);
        // 2 x 10 A per slot -> 3 slots used.
        let slots: std::collections::HashSet<u32> =
            gov.schedule(&requests).iter().map(|a| a.slot).collect();
        assert_eq!(slots.len(), 3);
    }

    #[test]
    fn oversized_requests_get_private_slots() {
        let gov = GlobalNoiseGovernor::new(GovernorConfig {
            delta_i_budget_a: 5.0,
            max_stagger_ticks: 8,
        });
        let admissions = gov.schedule(&[12.0, 12.0]);
        assert_ne!(admissions[0].slot, admissions[1].slot);
    }

    #[test]
    fn exhausted_stagger_overflows_rather_than_blocks() {
        let gov = GlobalNoiseGovernor::new(GovernorConfig {
            delta_i_budget_a: 10.0,
            max_stagger_ticks: 1, // only 2 slots
        });
        let admissions = gov.schedule(&[10.0; 6]);
        assert_eq!(admissions.len(), 6);
        assert!(admissions.iter().all(|a| a.slot <= 1));
    }

    #[test]
    fn governor_beats_both_baseline_and_local_clamp() {
        let tb = Testbed::fast();
        let run_cfg = NoiseRunConfig {
            window_s: Some(40e-6),
            ..NoiseRunConfig::default()
        };
        let eval = evaluate_governor(tb, 2.5e6, &GovernorConfig::default(), &run_cfg).unwrap();
        // Global staggering cuts noise without any ΔI loss...
        assert!(
            eval.governed_pct < eval.ungoverned_pct - 5.0,
            "governed {} vs ungoverned {}",
            eval.governed_pct,
            eval.ungoverned_pct
        );
        assert!(eval.max_stagger_ticks >= 1);
        // ...while the local clamp must sacrifice most of the ΔI
        // (throughput) to reduce noise at all — the paper's argument for
        // a global mechanism: the governor recovers a large share of the
        // clamp's noise reduction at zero ΔI cost.
        assert!(eval.local_clamp_delta_i_loss > 0.5);
        let clamp_reduction = eval.ungoverned_pct - eval.local_clamp_pct;
        let governed_reduction = eval.ungoverned_pct - eval.governed_pct;
        assert!(
            governed_reduction > 0.5 * clamp_reduction,
            "governor reduction {governed_reduction:.1} should be at least half of \
             the clamp's {clamp_reduction:.1} (which costs 60% throughput)"
        );
    }

    #[test]
    fn noop_budget_keeps_everything_in_slot_zero() {
        let gov = GlobalNoiseGovernor::new(GovernorConfig {
            delta_i_budget_a: 1000.0,
            max_stagger_ticks: 8,
        });
        assert!(gov.schedule(&[10.0; 6]).iter().all(|a| a.slot == 0));
    }
}
