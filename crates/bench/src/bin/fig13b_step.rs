//! Regenerates paper Fig. 13b: simulated dI step on core 0, observing the
//! noise propagation to every core (depth and arrival time).
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig13b");
}
