//! Full-evaluation report: walks the experiment registry at a chosen
//! scale on one shared [`Engine`] and assembles one text document with
//! all the paper's tables and figures.
//!
//! Because every entry runs through the same engine, overlapping
//! campaigns deduplicate: Figs. 11a, 11b and 13a share one ΔI job set,
//! and any mapping jobs repeated across Figs. 14, 15 and the §VII-B
//! study solve once.

use crate::experiment::{registry, ExperimentFailure, RegistryEntry};
use crate::render::Table;
use voltnoise_pdn::PdnError;
use voltnoise_system::engine::Engine;
use voltnoise_system::testbed::Testbed;

/// Scale at which the report is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportScale {
    /// Paper-scale configurations (minutes).
    Paper,
    /// Reduced configurations (tens of seconds).
    Reduced,
}

/// Generates the full evaluation report on a dedicated engine.
///
/// # Errors
///
/// The signature is kept fallible for compatibility, but experiment
/// failures no longer abort the report: each failing experiment is
/// dropped from the document and listed in a trailing fault summary
/// (see [`full_report_on`]).
pub fn full_report(tb: &Testbed, scale: ReportScale) -> Result<String, PdnError> {
    full_report_on(tb, &Engine::new(), scale)
}

/// Generates the full evaluation report on a caller-provided engine
/// (e.g. [`Engine::shared`], or a single-worker engine for determinism
/// checks).
///
/// Experiments run on the settled path: a failing experiment does not
/// abort the walk. Its figure section is omitted — the surviving
/// sections render exactly as they would in a fault-free run — and a
/// `Fault summary` table at the end lists every failed experiment with
/// its captured fault(s). A fault-free report carries no summary
/// section, so healthy output is byte-identical to what this function
/// produced before the degraded path existed.
///
/// # Errors
///
/// Kept for signature compatibility; currently always returns `Ok`.
pub fn full_report_on(
    tb: &Testbed,
    engine: &Engine,
    scale: ReportScale,
) -> Result<String, PdnError> {
    let reduced = scale == ReportScale::Reduced;
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("# voltnoise — full evaluation report\n\n");
    let mut failures: Vec<(&RegistryEntry, ExperimentFailure)> = Vec::new();
    for entry in registry().iter().filter(|e| e.in_report) {
        match entry.run_settled(tb, engine, reduced) {
            Ok(output) => {
                out.push_str(&output.rendered);
                out.push('\n');
            }
            Err(failure) => failures.push((entry, failure)),
        }
    }
    if !failures.is_empty() {
        let mut t = Table::new("Fault summary: experiments that could not be rendered");
        t.columns(["id", "job_faults", "detail"]);
        for (entry, failure) in &failures {
            t.row([
                entry.id.to_string(),
                failure.faults.len().to_string(),
                failure.summary(),
            ]);
        }
        out.push_str(&t.finish());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_report_covers_every_artifact() {
        let tb = Testbed::fast();
        let report = full_report(tb, ReportScale::Reduced).unwrap();
        for marker in [
            "Table I", "Fig. 5", "Fig. 7a", "Fig. 7b", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11a",
            "Fig. 11b", "Fig. 12", "Fig. 13a", "Fig. 13b", "Fig. 14", "Fig. 15", "§VII-B",
        ] {
            assert!(report.contains(marker), "report missing {marker}");
        }
        assert!(report.len() > 4_000, "report suspiciously short");
    }
}
