//! Regenerates paper Fig. 15: best vs worst mapping noise per workload
//! count — the noise-aware mapping opportunity.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig15");
}
