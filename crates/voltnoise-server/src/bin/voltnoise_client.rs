//! `voltnoise-client` — a minimal client for the campaign daemon.
//!
//! ```text
//! voltnoise-client ADDR health            # GET /healthz
//! voltnoise-client ADDR stats             # GET /stats
//! voltnoise-client ADDR jobs BODY.json    # POST /jobs, print streamed lines
//! voltnoise-client ADDR jobs -            # read the batch body from stdin
//! ```
//!
//! Exits 0 on a 2xx response, 1 otherwise; the response body goes to
//! stdout either way (a `429` body carries the retry hint).

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;
use voltnoise_server::http_request;

fn run() -> Result<u16, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, command) = match args.as_slice() {
        [addr, command, ..] => (addr.as_str(), command.as_str()),
        _ => {
            return Err("usage: voltnoise-client ADDR health|stats|jobs [BODY.json|-]".to_string())
        }
    };
    let timeout = Duration::from_secs(600);
    let response = match command {
        "health" => http_request(addr, "GET", "/healthz", None, timeout),
        "stats" => http_request(addr, "GET", "/stats", None, timeout),
        "jobs" => {
            let source = args
                .get(2)
                .ok_or_else(|| "jobs needs a body file (or - for stdin)".to_string())?;
            let body = if source == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?
            };
            http_request(addr, "POST", "/jobs", Some(&body), timeout)
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    .map_err(|e| format!("request failed: {e}"))?;
    print!("{}", response.body);
    Ok(response.status)
}

fn main() -> ExitCode {
    match run() {
        Ok(status) if (200..300).contains(&status) => ExitCode::SUCCESS,
        Ok(status) => {
            eprintln!("voltnoise-client: server answered {status}");
            ExitCode::FAILURE
        }
        Err(why) => {
            eprintln!("voltnoise-client: {why}");
            ExitCode::FAILURE
        }
    }
}
