//! Noise sensitivity to ΔI (paper Figs. 11a and 11b).
//!
//! Runs synchronized stressmark mixes — idle / medium / maximum per core —
//! over workload-to-core mappings and relates the noise to the fraction
//! of the chip's maximum possible ΔI each mapping generates. The same
//! dataset feeds the inter-core correlation analysis of Fig. 13a.

use crate::experiment::Experiment;
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::{NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;
use voltnoise_system::workload::{all_distributions, mappings_of, Distribution, Mapping};

/// Campaign configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaIConfig {
    /// Stimulus frequency (paper: 2 MHz band, synchronized).
    pub stim_freq_hz: f64,
    /// Maximum mappings evaluated per distribution (deterministically
    /// strided when a distribution has more).
    pub mappings_per_distribution: usize,
    /// Simulation window per run.
    pub window_s: Option<f64>,
}

impl DeltaIConfig {
    /// Paper-style coverage.
    pub fn paper() -> Self {
        DeltaIConfig {
            stim_freq_hz: 2.5e6,
            mappings_per_distribution: 10,
            window_s: Some(60e-6),
        }
    }

    /// Reduced for tests.
    pub fn reduced() -> Self {
        DeltaIConfig {
            stim_freq_hz: 2.5e6,
            mappings_per_distribution: 3,
            window_s: Some(40e-6),
        }
    }
}

/// One evaluated run of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaIRun {
    /// The workload-to-core mapping.
    pub mapping: Mapping,
    /// Its distribution.
    pub distribution: Distribution,
    /// Fraction of the maximum possible chip ΔI.
    pub delta_i_fraction: f64,
    /// Per-core %p2p readings.
    pub per_core_pct: [f64; NUM_CORES],
}

impl DeltaIRun {
    /// Worst per-core reading of this run.
    pub fn max_pct(&self) -> f64 {
        self.per_core_pct
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The full campaign dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaIDataset {
    /// Every evaluated run.
    pub runs: Vec<DeltaIRun>,
}

impl DeltaIDataset {
    /// Fig. 11a series: for each distinct ΔI fraction, the maximum
    /// per-core noise observed across all mappings generating it.
    pub fn max_noise_by_delta_i(&self) -> Vec<(f64, f64)> {
        let mut by_frac: Vec<(f64, f64)> = Vec::new();
        for run in &self.runs {
            match by_frac
                .iter_mut()
                .find(|(f, _)| (*f - run.delta_i_fraction).abs() < 1e-9)
            {
                Some((_, m)) => *m = m.max(run.max_pct()),
                None => by_frac.push((run.delta_i_fraction, run.max_pct())),
            }
        }
        by_frac.sort_by(|a, b| a.0.total_cmp(&b.0));
        by_frac
    }

    /// Fig. 11b series: noise averaged over cores and mappings, grouped
    /// by distribution, sorted by ΔI fraction then by concentration.
    pub fn average_noise_by_distribution(&self) -> Vec<(Distribution, f64, f64)> {
        let mut out: Vec<(Distribution, f64, f64, usize)> = Vec::new();
        for run in &self.runs {
            let avg: f64 = run.per_core_pct.iter().sum::<f64>() / NUM_CORES as f64;
            match out.iter_mut().find(|(d, ..)| *d == run.distribution) {
                Some((_, _, acc, n)) => {
                    *acc += avg;
                    *n += 1;
                }
                None => out.push((run.distribution, run.delta_i_fraction, avg, 1)),
            }
        }
        let mut res: Vec<(Distribution, f64, f64)> = out
            .into_iter()
            .map(|(d, f, acc, n)| (d, f, acc / n as f64))
            .collect();
        res.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.max_count.cmp(&b.0.max_count)));
        res
    }

    /// Per-core noise series across runs (input to Fig. 13a correlation).
    pub fn per_core_series(&self) -> [Vec<f64>; NUM_CORES] {
        std::array::from_fn(|i| self.runs.iter().map(|r| r.per_core_pct[i]).collect())
    }

    /// Renders the Fig. 11a rows.
    pub fn render_fig11a(&self) -> String {
        let mut t = Table::new("Fig. 11a: max %p2p noise vs % of maximum possible dI");
        t.columns(["pct_of_max_di", "max_pct_p2p"]);
        for (f, m) in self.max_noise_by_delta_i() {
            t.row([format!("{:.1}", f * 100.0), format!("{m:.1}")]);
        }
        t.finish()
    }

    /// Renders the Fig. 11b rows.
    pub fn render_fig11b(&self) -> String {
        let mut t = Table::new("Fig. 11b: average noise by workload distribution (max-medium)");
        t.columns(["distribution", "pct_of_max_di", "avg_pct_p2p"]);
        for (d, f, avg) in self.average_noise_by_distribution() {
            t.row([d.label(), format!("{:.1}", f * 100.0), format!("{avg:.1}")]);
        }
        t.finish()
    }
}

/// Which figure a [`DeltaIExperiment`] renders. All views share the same
/// job list, so an engine with a warm cache assembles the second and
/// third views without a single new solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaIView {
    /// Fig. 11a: max noise vs ΔI fraction.
    Fig11a,
    /// Fig. 11b: average noise by distribution.
    Fig11b,
    /// Fig. 13a: inter-core correlation matrix of the campaign.
    Correlation,
}

/// The ΔI campaign experiment (Figs. 11a, 11b and the Fig. 13a input).
#[derive(Debug, Clone)]
pub struct DeltaIExperiment {
    /// The campaign grid.
    pub cfg: DeltaIConfig,
    /// The rendered view.
    pub view: DeltaIView,
}

impl DeltaIExperiment {
    /// The deterministic campaign plan: every `(distribution, mapping)`
    /// pair, in run order.
    fn plan(&self) -> Vec<(Distribution, Mapping)> {
        let mut out = Vec::new();
        for dist in all_distributions() {
            let mappings = mappings_of(&dist);
            let stride = (mappings.len() / self.cfg.mappings_per_distribution.max(1)).max(1);
            for mapping in mappings.iter().step_by(stride) {
                out.push((dist, mapping.clone()));
            }
        }
        out
    }
}

impl Experiment for DeltaIExperiment {
    type Artifact = DeltaIDataset;

    fn id(&self) -> &'static str {
        match self.view {
            DeltaIView::Fig11a => "fig11a",
            DeltaIView::Fig11b => "fig11b",
            DeltaIView::Correlation => "fig13a",
        }
    }

    fn title(&self) -> &'static str {
        match self.view {
            DeltaIView::Fig11a => "Fig. 11a: max noise vs dI fraction",
            DeltaIView::Fig11b => "Fig. 11b: average noise by workload distribution",
            DeltaIView::Correlation => "Fig. 13a: inter-core noise correlation",
        }
    }

    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let sync = Some(SyncSpec::paper_default());
        let run_cfg = NoiseRunConfig {
            window_s: self.cfg.window_s,
            record_traces: false,
            seed: 1,
            ..NoiseRunConfig::default()
        };
        let batch = SimJob::batch(tb.chip());
        Ok(self
            .plan()
            .iter()
            .map(|(_, mapping)| {
                batch.job(
                    tb.loads_of_mapping(mapping, self.cfg.stim_freq_hz, sync),
                    run_cfg.clone(),
                )
            })
            .collect())
    }

    fn assemble(
        &self,
        _tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<DeltaIDataset, PdnError> {
        let runs = self
            .plan()
            .into_iter()
            .zip(outcomes)
            .map(|((dist, mapping), out)| DeltaIRun {
                mapping,
                distribution: dist,
                delta_i_fraction: dist.delta_i_fraction(),
                per_core_pct: out.pct_p2p.to_array(),
            })
            .collect();
        Ok(DeltaIDataset { runs })
    }

    fn render(&self, artifact: &DeltaIDataset) -> String {
        match self.view {
            DeltaIView::Fig11a => artifact.render_fig11a(),
            DeltaIView::Fig11b => artifact.render_fig11b(),
            DeltaIView::Correlation => {
                crate::propagation::CorrelationAnalysis::from_dataset(artifact).render()
            }
        }
    }
}

/// Runs the ΔI campaign on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_delta_i(tb: &Testbed, cfg: &DeltaIConfig) -> Result<DeltaIDataset, PdnError> {
    DeltaIExperiment {
        cfg: cfg.clone(),
        view: DeltaIView::Fig11a,
    }
    .run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn dataset() -> &'static DeltaIDataset {
        static CELL: OnceLock<DeltaIDataset> = OnceLock::new();
        CELL.get_or_init(|| {
            run_delta_i(Testbed::fast(), &DeltaIConfig::reduced()).expect("campaign runs")
        })
    }

    #[test]
    fn noise_grows_with_delta_i() {
        let series = dataset().max_noise_by_delta_i();
        assert!(series.len() >= 5);
        let first = series.first().unwrap();
        let last = series.last().unwrap();
        assert!(first.0 < 0.01 && last.0 > 0.99);
        assert!(
            last.1 > first.1 + 20.0,
            "full-dI noise {} vs idle {}",
            last.1,
            first.1
        );
        // Broad monotonic growth: each point at least as high as the
        // floor three steps earlier.
        for w in series.windows(4) {
            assert!(
                w[3].1 >= w[0].1 - 3.0,
                "{:?}",
                w.iter().map(|p| p.1).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn distribution_grouping_covers_all_28() {
        let groups = dataset().average_noise_by_distribution();
        assert_eq!(groups.len(), 28);
    }

    #[test]
    fn amount_of_delta_i_matters_more_than_its_source() {
        // Paper §V-D: "the important factor is the amount of dI generated
        // and not the source of the dI": distributions with equal dI
        // fraction read within a few points of each other.
        let groups = dataset().average_noise_by_distribution();
        let half: Vec<f64> = groups
            .iter()
            .filter(|(_, f, _)| (*f - 0.5).abs() < 1e-9)
            .map(|(_, _, avg)| *avg)
            .collect();
        assert!(half.len() >= 3, "need several 50% dI distributions");
        let spread = half.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - half.iter().cloned().fold(f64::INFINITY, f64::min);
        let level = half.iter().sum::<f64>() / half.len() as f64;
        assert!(
            spread < 0.25 * level,
            "source placement changed noise too much: spread {spread} at level {level}"
        );
    }

    #[test]
    fn renders_have_rows() {
        let d = dataset();
        assert!(d.render_fig11a().lines().count() > 5);
        assert!(d.render_fig11b().lines().count() > 10);
    }
}
