//! Dispatch-group formation and the cycle-level execution model.
//!
//! The modeled core follows the zEC12 outline the paper leans on: an
//! in-order front end dispatching **groups of up to three** micro-ops per
//! cycle (branches close a group; serializing operations dispatch alone),
//! out-of-order issue over the unit ports of [`crate::units::UnitKind`],
//! and in-order retirement bounded by a reorder-buffer budget.
//!
//! Stressmark kernels are dependency-free by construction (the paper
//! found explicit dependencies unnecessary, §IV-C), so the model resolves
//! only *structural* hazards: dispatch width, port occupancy, the ROB
//! bound and pipeline serialization.

use crate::isa::{Isa, Opcode};
use crate::units::UnitKind;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static configuration of the modeled core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Core clock frequency in hertz (the modeled machine runs 5.5 GHz).
    pub freq_hz: f64,
    /// Maximum micro-ops per dispatch group.
    pub dispatch_width: usize,
    /// Maximum in-flight (dispatched, unretired) micro-ops.
    pub rob_uops: usize,
    /// Leakage + clock-grid power in watts, drawn regardless of activity.
    pub static_power_w: f64,
    /// Nominal supply voltage in volts, used to convert power to current.
    pub v_nom: f64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            freq_hz: 5.5e9,
            dispatch_width: 3,
            rob_uops: 72,
            static_power_w: 8.5,
            v_nom: 1.05,
        }
    }
}

impl CoreConfig {
    /// Clock period in seconds.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.freq_hz
    }
}

/// Splits a kernel body into dispatch groups (indices into `body`).
///
/// Rules (paper §IV-B: "sequences that are known to not have an average
/// dispatch group size of 3 ... are filtered out"):
///
/// - at most `dispatch_width` micro-ops per group;
/// - a branch (`ends_group`) closes its group;
/// - a `dispatch_alone` instruction forms a singleton group.
///
/// # Examples
///
/// ```
/// use voltnoise_uarch::isa::Isa;
/// use voltnoise_uarch::pipeline::{form_groups, CoreConfig};
///
/// let isa = Isa::zlike();
/// let cfg = CoreConfig::default();
/// let chhsi = isa.opcode("CHHSI").unwrap();
/// let cib = isa.opcode("CIB").unwrap();
/// // [CHHSI, CHHSI, CIB, CHHSI] -> groups {0,1,2}, {3}
/// let groups = form_groups(&isa, &cfg, &[chhsi, chhsi, cib, chhsi]);
/// assert_eq!(groups, vec![vec![0, 1, 2], vec![3]]);
/// ```
pub fn form_groups(isa: &Isa, cfg: &CoreConfig, body: &[Opcode]) -> Vec<Vec<usize>> {
    let mut groups = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for (i, &op) in body.iter().enumerate() {
        let def = isa.def(op);
        if def.dispatch_alone {
            if !current.is_empty() {
                groups.push(std::mem::take(&mut current));
            }
            groups.push(vec![i]);
            continue;
        }
        current.push(i);
        if def.ends_group || current.len() >= cfg.dispatch_width {
            groups.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// Average dispatch-group size of a body (micro-ops per group).
pub fn average_group_size(isa: &Isa, cfg: &CoreConfig, body: &[Opcode]) -> f64 {
    let groups = form_groups(isa, cfg, body);
    if groups.is_empty() {
        0.0
    } else {
        body.len() as f64 / groups.len() as f64
    }
}

/// Outcome of a cycle-level simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Total simulated cycles (time of the last completion).
    pub cycles: u64,
    /// Micro-ops executed.
    pub uops: u64,
    /// Total dynamic energy in picojoules.
    pub energy_pj: f64,
    /// Dynamic energy per cycle, in picojoules, when tracing was enabled.
    pub cycle_energy_pj: Option<Vec<f64>>,
}

impl SimOutcome {
    /// Micro-ops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops as f64 / self.cycles as f64
        }
    }

    /// Average power in watts for a core configuration.
    pub fn avg_power_w(&self, cfg: &CoreConfig) -> f64 {
        if self.cycles == 0 {
            return cfg.static_power_w;
        }
        cfg.static_power_w + self.energy_pj * 1e-12 * cfg.freq_hz / self.cycles as f64
    }

    /// Average supply current in amperes.
    pub fn avg_current_a(&self, cfg: &CoreConfig) -> f64 {
        self.avg_power_w(cfg) / cfg.v_nom
    }
}

/// Cycle-level simulator of one core.
#[derive(Debug)]
pub struct PipelineSim<'a> {
    isa: &'a Isa,
    cfg: &'a CoreConfig,
}

impl<'a> PipelineSim<'a> {
    /// Creates a simulator over an ISA and core configuration.
    pub fn new(isa: &'a Isa, cfg: &'a CoreConfig) -> Self {
        PipelineSim { isa, cfg }
    }

    /// Simulates `iterations` repetitions of `body` and returns aggregate
    /// metrics. When `trace` is set, per-cycle dynamic energy is recorded
    /// (one entry per cycle, pJ).
    pub fn run(&self, body: &[Opcode], iterations: usize, trace: bool) -> SimOutcome {
        let groups = form_groups(self.isa, self.cfg, body);
        let mut port_free: Vec<Vec<u64>> = UnitKind::ALL
            .iter()
            .map(|u| vec![0u64; u.ports()])
            .collect();

        // In-flight completion times in dispatch order, for the ROB bound.
        let mut inflight: VecDeque<u64> = VecDeque::with_capacity(self.cfg.rob_uops + 4);
        let mut retire_watermark: u64 = 0; // in-order retire cursor
        let mut max_completion: u64 = 0;
        let mut dispatch_cycle: u64 = 0;
        let mut serialize_until: u64 = 0;

        let mut uops: u64 = 0;
        let mut energy = 0.0f64;
        let mut cycle_energy: Vec<f64> = Vec::new();
        let add_energy = |cycle: u64, e: f64, cycle_energy: &mut Vec<f64>| {
            if trace {
                let idx = cycle as usize;
                if idx >= cycle_energy.len() {
                    cycle_energy.resize(idx + 1, 0.0);
                }
                cycle_energy[idx] += e;
            }
        };

        for _ in 0..iterations {
            for group in &groups {
                // One group per cycle, after any serialization drain.
                dispatch_cycle = (dispatch_cycle + 1).max(serialize_until);

                let is_serializing = group.iter().any(|&i| self.isa.def(body[i]).serializing);
                if is_serializing {
                    // Wait for the pipeline to drain.
                    dispatch_cycle = dispatch_cycle.max(max_completion + 1);
                }

                // ROB back-pressure: free slots by retiring in order.
                while inflight.len() + group.len() > self.cfg.rob_uops {
                    let done = inflight.pop_front().expect("rob accounting");
                    retire_watermark = retire_watermark.max(done);
                    dispatch_cycle = dispatch_cycle.max(retire_watermark + 1);
                }

                for &i in group {
                    let def = self.isa.def(body[i]);
                    // Earliest free port of the instruction's unit.
                    let ports = &mut port_free[def.unit.index()];
                    let (best, &free_at) = ports
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &t)| t)
                        .expect("unit has ports");
                    let issue = dispatch_cycle.max(free_at);
                    ports[best] = issue + def.occupancy as u64;
                    let completion = issue + def.latency as u64;
                    max_completion = max_completion.max(completion);
                    inflight.push_back(completion);
                    uops += 1;
                    energy += def.energy_pj;
                    add_energy(issue, def.energy_pj, &mut cycle_energy);
                }

                if is_serializing {
                    serialize_until = max_completion + 1;
                }
            }
        }

        SimOutcome {
            cycles: max_completion.max(dispatch_cycle),
            uops,
            energy_pj: energy,
            cycle_energy_pj: trace.then_some(cycle_energy),
        }
    }
}

/// Fast analytic throughput estimate in micro-ops per cycle, used to
/// pre-filter large candidate sets before cycle simulation (paper §IV-B
/// step 4 motivates IPC filtering by its speed).
///
/// The estimate is the structural bound: dispatch can sustain at most one
/// group per cycle, each unit sustains `ports / occupancy` micro-ops per
/// cycle, and serializing instructions insert full drains.
pub fn estimate_throughput(isa: &Isa, cfg: &CoreConfig, body: &[Opcode]) -> f64 {
    if body.is_empty() {
        return 0.0;
    }
    let groups = form_groups(isa, cfg, body);
    let mut unit_occupancy = [0u64; 6];
    let mut serialize_penalty = 0u64;
    for &op in body {
        let def = isa.def(op);
        unit_occupancy[def.unit.index()] += def.occupancy as u64;
        if def.serializing {
            serialize_penalty += def.latency as u64 + 1;
        }
    }
    let dispatch_cycles = groups.len() as u64;
    let unit_cycles = UnitKind::ALL
        .iter()
        .map(|u| unit_occupancy[u.index()].div_ceil(u.ports() as u64))
        .max()
        .unwrap_or(0);
    let cycles = dispatch_cycles.max(unit_cycles) + serialize_penalty;
    body.len() as f64 / cycles.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Isa, CoreConfig) {
        (Isa::zlike(), CoreConfig::default())
    }

    #[test]
    fn groups_close_on_branches_and_width() {
        let (isa, cfg) = setup();
        let chhsi = isa.opcode("CHHSI").unwrap();
        let cib = isa.opcode("CIB").unwrap();
        let body = [chhsi, chhsi, chhsi, chhsi, cib, chhsi];
        let groups = form_groups(&isa, &cfg, &body);
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn serializing_op_is_singleton_group() {
        let (isa, cfg) = setup();
        let chhsi = isa.opcode("CHHSI").unwrap();
        let srnm = isa.opcode("SRNM").unwrap();
        let groups = form_groups(&isa, &cfg, &[chhsi, srnm, chhsi]);
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn dual_port_fxu_sustains_ipc_2_on_single_op_loop() {
        let (isa, cfg) = setup();
        let chhsi = isa.opcode("CHHSI").unwrap();
        let sim = PipelineSim::new(&isa, &cfg);
        let out = sim.run(&vec![chhsi; 300], 4, false);
        let ipc = out.ipc();
        assert!((ipc - 2.0).abs() < 0.1, "ipc = {ipc}");
    }

    #[test]
    fn branch_loop_sustains_ipc_1() {
        let (isa, cfg) = setup();
        let cib = isa.opcode("CIB").unwrap();
        let sim = PipelineSim::new(&isa, &cfg);
        let out = sim.run(&vec![cib; 300], 4, false);
        assert!((out.ipc() - 1.0).abs() < 0.05, "ipc = {}", out.ipc());
    }

    #[test]
    fn mixed_sequence_reaches_ipc_3() {
        let (isa, cfg) = setup();
        let chhsi = isa.opcode("CHHSI").unwrap();
        let l = isa.opcode("L").unwrap();
        let cib = isa.opcode("CIB").unwrap();
        let madbr = isa.opcode("MADBR").unwrap();
        let body = [chhsi, l, cib, chhsi, madbr, cib];
        let sim = PipelineSim::new(&isa, &cfg);
        let out = sim.run(&body, 400, false);
        assert!(out.ipc() > 2.8, "ipc = {}", out.ipc());
    }

    #[test]
    fn serializing_loop_has_tiny_ipc() {
        let (isa, cfg) = setup();
        let srnm = isa.opcode("SRNM").unwrap();
        let sim = PipelineSim::new(&isa, &cfg);
        let out = sim.run(&[srnm; 50], 4, false);
        assert!(out.ipc() < 0.08, "ipc = {}", out.ipc());
    }

    #[test]
    fn blocking_divide_throttles_unit() {
        let (isa, cfg) = setup();
        let ddbr = isa.opcode("DDBR").unwrap(); // occupancy 27 on 1-port BFU
        let sim = PipelineSim::new(&isa, &cfg);
        let out = sim.run(&[ddbr; 100], 4, false);
        let expected = 1.0 / isa.def(ddbr).occupancy as f64;
        assert!((out.ipc() - expected).abs() < 0.01, "ipc = {}", out.ipc());
    }

    #[test]
    fn estimator_tracks_simulation_within_20_percent() {
        let (isa, cfg) = setup();
        let sim = PipelineSim::new(&isa, &cfg);
        let bodies: Vec<Vec<Opcode>> = vec![
            vec![isa.opcode("CHHSI").unwrap(); 6],
            vec![isa.opcode("CIB").unwrap(); 6],
            vec![
                isa.opcode("CHHSI").unwrap(),
                isa.opcode("L").unwrap(),
                isa.opcode("CIB").unwrap(),
                isa.opcode("CHHSI").unwrap(),
                isa.opcode("MADBR").unwrap(),
                isa.opcode("CIB").unwrap(),
            ],
            vec![isa.opcode("DDBR").unwrap(); 6],
        ];
        for body in bodies {
            let est = estimate_throughput(&isa, &cfg, &body);
            let real = sim.run(&body, 400, false).ipc();
            let rel = (est - real).abs() / real.max(1e-9);
            assert!(rel < 0.2, "est {est} vs real {real} for {body:?}");
        }
    }

    #[test]
    fn energy_trace_sums_to_total() {
        let (isa, cfg) = setup();
        let chhsi = isa.opcode("CHHSI").unwrap();
        let sim = PipelineSim::new(&isa, &cfg);
        let out = sim.run(&[chhsi; 60], 3, true);
        let trace_sum: f64 = out.cycle_energy_pj.as_ref().unwrap().iter().sum();
        assert!((trace_sum - out.energy_pj).abs() < 1e-6);
    }

    #[test]
    fn rob_bound_limits_runahead() {
        let (isa, mut cfg) = setup();
        cfg.rob_uops = 6;
        // Long-latency loads: with a tiny ROB, dispatch stalls on retire.
        let l = isa.opcode("L").unwrap();
        let sim_small = PipelineSim::new(&isa, &cfg);
        let out_small = sim_small.run(&vec![l; 120], 4, false);
        let cfg_big = CoreConfig::default();
        let sim_big = PipelineSim::new(&isa, &cfg_big);
        let out_big = sim_big.run(&vec![l; 120], 4, false);
        assert!(out_small.ipc() <= out_big.ipc() + 1e-9);
    }

    #[test]
    fn power_includes_static_floor() {
        let (isa, cfg) = setup();
        let srnm = isa.opcode("SRNM").unwrap();
        let sim = PipelineSim::new(&isa, &cfg);
        let out = sim.run(&[srnm; 50], 2, false);
        let p = out.avg_power_w(&cfg);
        assert!(p > cfg.static_power_w);
        assert!(p < cfg.static_power_w + 0.5, "p = {p}");
    }
}
