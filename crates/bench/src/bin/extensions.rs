//! Extension studies beyond the paper's evaluation: the §V-F global
//! noise governor, deterministic-vs-probabilistic alignment, noise-aware
//! scheduling over job traces, and the GA search alternative of §IV-C.

use voltnoise::prelude::*;
use voltnoise::stressmark::{ga_search, GaConfig};
use voltnoise::system::dither::AlignmentComparison;
use voltnoise::system::mitigation::{evaluate_governor, GovernorConfig};
use voltnoise::system::scheduler::{
    replay, synthetic_trace, NaivePolicy, NoiseAwarePolicy, NoiseTable,
};
use voltnoise::system::NoiseRunConfig;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced {
        Testbed::fast()
    } else {
        Testbed::shared()
    };
    let run_cfg = NoiseRunConfig {
        window_s: Some(if opts.reduced { 30e-6 } else { 50e-6 }),
        ..NoiseRunConfig::default()
    };

    let gov = evaluate_governor(tb, 2.5e6, &GovernorConfig::default(), &run_cfg)
        .expect("governor evaluation runs");
    print!("{}", gov.render());

    let cmp = AlignmentComparison::run(6, 16, if opts.reduced { 500 } else { 5_000 }, 11);
    print!("{}", cmp.render());

    println!("# noise-aware scheduling over a synthetic job trace");
    let table = NoiseTable::characterize(tb, 2.5e6, &run_cfg).expect("64-mask characterization");
    let trace = synthetic_trace(if opts.reduced { 80 } else { 400 }, 3.0);
    let naive =
        replay(&mut table.clone(), &NaivePolicy, &trace).expect("naive replay over a full table");
    let aware = replay(&mut table.clone(), &NoiseAwarePolicy::new(), &trace)
        .expect("aware replay over a full table");
    for out in [&naive, &aware] {
        println!(
            "policy {:12} mean required margin {:.1} %p2p, peak {:.1} %p2p, queued {}",
            out.policy, out.mean_required_pct, out.peak_required_pct, out.queued_jobs
        );
    }

    println!("# GA search (paper §IV-C extension) vs exhaustive funnel");
    let candidates: Vec<Opcode> = voltnoise::stressmark::select_candidates(tb.isa(), tb.profile())
        .iter()
        .map(|c| c.opcode)
        .collect();
    let ga = ga_search(tb.isa(), tb.core(), &candidates, &GaConfig::default());
    println!(
        "GA: {:?} {:.2} W after {} evaluations (exhaustive winner {:.2} W after {} evaluations)",
        ga.best.mnemonics,
        ga.best.power_w,
        ga.evaluations,
        tb.max_sequence().power_w,
        tb.search().after_ipc
    );
}
