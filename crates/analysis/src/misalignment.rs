//! Noise sensitivity to ΔI-event misalignment (paper Fig. 10).
//!
//! Stressmarks at the resonant stimulus frequency synchronize every 4 ms,
//! but their sync-loop exit conditions are offset in 62.5 ns TOD ticks;
//! for a maximum allowed misalignment the offsets are distributed evenly
//! and all stressmark-to-core rotations are averaged.

use crate::experiment::Experiment;
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::{CoreLoad, NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;
use voltnoise_system::tod::spread_offsets;

/// Misalignment-sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisalignConfig {
    /// Stimulus frequency (the paper uses the ~2 MHz resonant band).
    pub stim_freq_hz: f64,
    /// Maximum allowed misalignments to evaluate, in 62.5 ns ticks.
    pub max_ticks: Vec<u64>,
    /// Offset-to-core rotations averaged per point (the paper runs "all
    /// possible stressmark to core mappings" and averages).
    pub rotations: usize,
    /// Simulation window per run.
    pub window_s: Option<f64>,
}

impl MisalignConfig {
    /// Paper-style: 0–625 ns in 62.5 ns steps.
    pub fn paper() -> Self {
        MisalignConfig {
            stim_freq_hz: 2.5e6,
            max_ticks: (0..=10).collect(),
            rotations: 6,
            window_s: Some(80e-6),
        }
    }

    /// Reduced for tests.
    pub fn reduced() -> Self {
        MisalignConfig {
            stim_freq_hz: 2.5e6,
            max_ticks: vec![0, 1, 4, 10],
            rotations: 2,
            window_s: Some(50e-6),
        }
    }
}

/// One misalignment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisalignPoint {
    /// Maximum allowed misalignment in ticks (62.5 ns units).
    pub max_ticks: u64,
    /// Rotation-averaged per-core %p2p.
    pub per_core_pct: [f64; NUM_CORES],
}

impl MisalignPoint {
    /// Maximum misalignment in nanoseconds.
    pub fn max_ns(&self) -> f64 {
        self.max_ticks as f64 * 62.5
    }

    /// Mean across cores.
    pub fn mean_pct(&self) -> f64 {
        self.per_core_pct.iter().sum::<f64>() / NUM_CORES as f64
    }
}

/// Result of the misalignment sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisalignResult {
    /// One point per maximum-misalignment setting.
    pub points: Vec<MisalignPoint>,
}

impl MisalignResult {
    /// Renders the Fig. 10 series.
    pub fn render(&self) -> String {
        let mut t =
            Table::new("Fig. 10: average %p2p vs maximum allowed misalignment between stressmarks");
        t.columns(
            ["max_misalign_ns".to_string(), "mean_pct".to_string()]
                .into_iter()
                .chain((0..NUM_CORES).map(|i| format!("core{i}"))),
        );
        for p in &self.points {
            t.row(
                [format!("{:.1}", p.max_ns()), format!("{:.1}", p.mean_pct())]
                    .into_iter()
                    .chain(p.per_core_pct.iter().map(|v| format!("{v:.1}"))),
            );
        }
        t.finish()
    }
}

/// The Fig. 10 misalignment experiment.
#[derive(Debug, Clone)]
pub struct MisalignExperiment {
    /// The sweep grid.
    pub cfg: MisalignConfig,
}

impl Experiment for MisalignExperiment {
    type Artifact = MisalignResult;

    fn id(&self) -> &'static str {
        "fig10"
    }

    fn title(&self) -> &'static str {
        "Fig. 10: noise vs maximum stressmark misalignment"
    }

    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let batch = SimJob::batch(tb.chip());
        let rotations = self.cfg.rotations.max(1);
        let mut jobs = Vec::with_capacity(self.cfg.max_ticks.len() * rotations);
        for &ticks in &self.cfg.max_ticks {
            let offsets = spread_offsets(NUM_CORES, ticks);
            for rot in 0..rotations {
                let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|core| {
                    let mut sync = SyncSpec::paper_default();
                    sync.offset_ticks = offsets[(core + rot) % NUM_CORES] as u32;
                    CoreLoad::Stressmark(tb.max_stressmark(self.cfg.stim_freq_hz, Some(sync)))
                });
                jobs.push(batch.job(
                    loads,
                    NoiseRunConfig {
                        window_s: self.cfg.window_s,
                        record_traces: false,
                        seed: 1 + rot as u64,
                        ..NoiseRunConfig::default()
                    },
                ));
            }
        }
        Ok(jobs)
    }

    fn assemble(
        &self,
        _tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<MisalignResult, PdnError> {
        let rotations = self.cfg.rotations.max(1);
        let points = self
            .cfg
            .max_ticks
            .iter()
            .zip(outcomes.chunks(rotations))
            .map(|(&max_ticks, chunk)| {
                let mut acc = [0.0f64; NUM_CORES];
                for out in chunk {
                    for (a, v) in acc.iter_mut().zip(out.pct_p2p.iter().copied()) {
                        *a += v;
                    }
                }
                MisalignPoint {
                    max_ticks,
                    per_core_pct: acc.map(|v| v / rotations as f64),
                }
            })
            .collect();
        Ok(MisalignResult { points })
    }

    fn render(&self, artifact: &MisalignResult) -> String {
        artifact.render()
    }
}

/// Runs the misalignment sweep on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_misalignment(tb: &Testbed, cfg: &MisalignConfig) -> Result<MisalignResult, PdnError> {
    MisalignExperiment { cfg: cfg.clone() }.run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misalignment_collapses_sync_bonus() {
        let tb = Testbed::fast();
        let res = run_misalignment(tb, &MisalignConfig::reduced()).unwrap();
        let aligned = res.points[0].mean_pct();
        let one_tick = res.points[1].mean_pct();
        let wide = res.points.last().unwrap().mean_pct();
        // One 62.5 ns tick already removes a large share of the bonus...
        assert!(
            one_tick < aligned - 5.0,
            "aligned {aligned} vs one tick {one_tick}"
        );
        // ...and wide misalignment brings it near the unaligned level.
        assert!(wide < one_tick, "wide {wide} vs one tick {one_tick}");
        assert!(aligned - wide > 15.0, "total collapse {aligned} -> {wide}");
    }

    #[test]
    fn points_are_monotone_non_increasing_roughly() {
        let tb = Testbed::fast();
        let res = run_misalignment(tb, &MisalignConfig::reduced()).unwrap();
        for w in res.points.windows(2) {
            assert!(
                w[1].mean_pct() <= w[0].mean_pct() + 2.0,
                "noise should not grow with misalignment: {} -> {}",
                w[0].mean_pct(),
                w[1].mean_pct()
            );
        }
    }

    #[test]
    fn render_lists_all_settings() {
        let tb = Testbed::fast();
        let cfg = MisalignConfig {
            max_ticks: vec![0, 10],
            rotations: 1,
            ..MisalignConfig::reduced()
        };
        let res = run_misalignment(tb, &cfg).unwrap();
        let text = res.render();
        assert!(text.contains("0.0,"));
        assert!(text.contains("625.0,"));
    }
}
