//! `SIGTERM`/`SIGINT` handling without external crates.
//!
//! std exposes no signal API, but it already links libc on every
//! platform this workspace targets, so a two-line FFI declaration of
//! `signal(2)` is all that is needed. The handler does the only thing
//! that is async-signal-safe here: it stores a flag into a static
//! atomic. The server's accept loop polls the flag and runs the actual
//! drain sequence in normal thread context.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the `SIGTERM`/`SIGINT` handlers. Idempotent.
pub fn install() {
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown from normal code — the same path a signal takes,
/// used by tests and by fatal internal errors that should drain rather
/// than abort.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_flips_the_flag() {
        // Note: the flag is process-global; this test runs in its own
        // test binary where nothing else reads it.
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }
}
