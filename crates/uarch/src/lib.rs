#![warn(missing_docs)]

//! # voltnoise-uarch
//!
//! A z-like CISC **core model** for the `voltnoise` workspace: the
//! execution substrate on which dI/dt stressmarks are generated and
//! evaluated, standing in for the zEC12 cores of the paper *"Voltage
//! Noise in Multi-core Processors"* (Bertran et al., MICRO 2014).
//!
//! Components:
//!
//! - [`isa::Isa`] — a 1301-instruction ISA whose power structure matches
//!   the paper's Table I (fused compare-and-branch ops at the top, DFP
//!   and serializing system ops at the bottom);
//! - [`pipeline`] — dispatch groups of up to three micro-ops, out-of-order
//!   issue over two FXU, two LSU, one BFU, one DFU, one BRU and one
//!   serializing system pipe, plus a fast analytic throughput estimator;
//! - [`kernel::Kernel`] — looped micro-benchmarks with measured IPC,
//!   power, current and per-cycle current traces;
//! - [`epi::EpiProfile`] — the full energy-per-instruction ranking the
//!   stressmark search starts from.
//!
//! # Examples
//!
//! ```
//! use voltnoise_uarch::isa::Isa;
//! use voltnoise_uarch::kernel::Kernel;
//! use voltnoise_uarch::pipeline::CoreConfig;
//!
//! let isa = Isa::zlike();
//! let cfg = CoreConfig::default();
//! let k = Kernel::single_instruction(&isa, isa.opcode("CIB").unwrap(), 4000);
//! let metrics = k.run(&isa, &cfg);
//! assert!(metrics.avg_power_w > cfg.static_power_w);
//! ```

pub mod deps;
pub mod disruptive;
pub mod epi;
pub mod isa;
pub mod kernel;
pub mod pipeline;
pub mod target;
pub mod units;

pub use deps::{assign_operands, run_with_deps, DependencyStudy, OperandPolicy};
pub use disruptive::{DisruptedKernel, DisruptionStudy, DisruptiveEvent};
pub use epi::{EpiEntry, EpiProfile};
pub use isa::{InstrDef, Isa, Opcode, ZLIKE_ISA_SIZE};
pub use kernel::{Kernel, RunMetrics, EPI_REPETITIONS};
pub use pipeline::{estimate_throughput, form_groups, CoreConfig, PipelineSim, SimOutcome};
pub use target::{TargetDefinition, TargetError};
pub use units::{IssueClass, UnitKind};
