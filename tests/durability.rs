//! Durability integration suite: the persistent result store survives a
//! process boundary (simulated with separate engines over one file),
//! tolerates corruption, and lets an interrupted report campaign resume
//! with zero duplicate solves; cooperative cancellation drains a batch
//! into deterministic partial results; and step budgets surface as
//! typed, final (never retried) faults.

#[path = "golden/mod.rs"]
mod golden;

use voltnoise::analysis::{full_report_on, registry, ReportScale};
use voltnoise::pdn::{CancelToken, PdnError};
use voltnoise::prelude::*;
use voltnoise::system::{set_trace, FaultKind, JobFault, NoiseOutcome, ResultStore, RetryPolicy};

/// A unique temp path per test (one process may run many tests).
fn temp_store(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "voltnoise-durability-{tag}-{}.jsonl",
        std::process::id()
    ))
}

/// Distinct (by seed) max-stressmark jobs on the fast testbed chip.
fn test_jobs(tb: &Testbed, n: u64) -> Vec<SimJob> {
    let batch = SimJob::batch(tb.chip());
    (1..=n)
        .map(|seed| {
            let sm = tb.max_stressmark(2.5e6, None);
            let loads: [CoreLoad; NUM_CORES] =
                std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
            batch.job(
                loads,
                NoiseRunConfig {
                    window_s: Some(20e-6),
                    record_traces: false,
                    seed,
                    ..NoiseRunConfig::default()
                },
            )
        })
        .collect()
}

fn json_of(outcome: &NoiseOutcome) -> String {
    serde_json::to_string(outcome).unwrap()
}

#[test]
fn store_round_trip_serves_from_disk_with_zero_resolves() {
    let tb = Testbed::fast();
    let path = temp_store("roundtrip");
    let _ = std::fs::remove_file(&path);
    let jobs = test_jobs(tb, 3);

    // First process: solve everything, appending to the store.
    let first = Engine::with_workers(2).with_store(&path).unwrap();
    let outcomes = first.run_jobs(&jobs).unwrap();
    assert_eq!(first.solves(), 3);
    assert_eq!(first.store_hits(), 0);

    // Second process (fresh engine, no memory): every job answers from
    // disk, bit-identically, with zero new solves.
    let second = Engine::with_workers(2).with_store(&path).unwrap();
    let replayed = second.run_jobs(&jobs).unwrap();
    assert_eq!(second.solves(), 0, "store must prevent any re-solve");
    assert_eq!(second.store_hits(), 3);
    for (a, b) in outcomes.iter().zip(&replayed) {
        assert_eq!(json_of(a), json_of(b));
    }

    // A repeated lookup in the same engine is an in-memory cache hit,
    // not a second disk hit.
    second.run_jobs(&jobs).unwrap();
    assert_eq!(second.store_hits(), 3);
    assert_eq!(second.cache_hits(), 3);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_and_garbage_lines_are_skipped_not_fatal() {
    let tb = Testbed::fast();
    let path = temp_store("corrupt");
    let _ = std::fs::remove_file(&path);
    let jobs = test_jobs(tb, 2);

    let first = Engine::with_workers(1).with_store(&path).unwrap();
    first.run_jobs(&jobs).unwrap();
    drop(first);

    // Crash simulation: a torn half-record, free-form garbage, and a
    // non-UTF8 line appended after valid records.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(b"{\"key\":\"deadbeef\",\"outco").unwrap();
    f.write_all(b"\nnot json at all\n\xff\xfe\x00garbage\n")
        .unwrap();
    drop(f);

    let second = Engine::with_workers(1).with_store(&path).unwrap();
    let stats_before = second.stats();
    assert!(
        stats_before.store_corrupt_lines >= 3,
        "corrupt lines must be counted, got {}",
        stats_before.store_corrupt_lines
    );
    // The valid prefix still serves.
    second.run_jobs(&jobs).unwrap();
    assert_eq!(second.solves(), 0);
    assert_eq!(second.store_hits(), 2);

    // Compaction rewrites a clean file: reopening reports zero corrupt
    // lines and the same entries.
    second.store().unwrap().compact().unwrap();
    let third = Engine::with_workers(1).with_store(&path).unwrap();
    assert_eq!(third.stats().store_corrupt_lines, 0);
    third.run_jobs(&jobs).unwrap();
    assert_eq!(third.solves(), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn alien_header_resets_the_store() {
    let path = temp_store("alien");
    std::fs::write(
        &path,
        "{\"format\":\"someone-elses-cache\",\"version\":9}\n{}\n",
    )
    .unwrap();
    let store = ResultStore::open(&path).unwrap();
    assert!(store.is_empty(), "alien store must reset, not half-load");
    // The reset store is immediately usable.
    let raw = std::fs::read_to_string(&path).unwrap();
    assert!(
        raw.starts_with("{\"format\":\"voltnoise-store\""),
        "reset must rewrite our header, got: {raw}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancellation_drains_cached_results_and_faults_the_rest() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 4);
    let token = CancelToken::new();
    let engine = Engine::with_workers(2).with_cancel(token.clone());

    // Two jobs settle before the interrupt arrives.
    engine.run_jobs(&jobs[..2]).unwrap();
    assert_eq!(engine.solves(), 2);

    token.cancel();
    let settled = engine.run_jobs_settled(&jobs);
    // Cached results still flow — the partial result set is exactly the
    // work already paid for.
    assert!(settled[0].is_ok() && settled[1].is_ok());
    for s in &settled[2..] {
        match s {
            Err(JobFault {
                attempts: 0,
                fault: FaultKind::Cancelled(PdnError::Cancelled { .. }),
                ..
            }) => {}
            other => panic!("expected a cancellation fault, got {other:?}"),
        }
    }
    assert_eq!(engine.solves(), 2, "no job may start after cancellation");
}

#[test]
fn step_budget_faults_are_typed_final_and_keyed() {
    let tb = Testbed::fast();
    let batch = SimJob::batch(tb.chip());
    let sm = tb.max_stressmark(2.5e6, None);
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let base = NoiseRunConfig {
        window_s: Some(20e-6),
        record_traces: false,
        seed: 1,
        ..NoiseRunConfig::default()
    };
    let budgeted = batch.job(
        loads.clone(),
        NoiseRunConfig {
            max_steps: Some(10),
            ..base.clone()
        },
    );
    let unbudgeted = batch.job(loads, base);
    assert_ne!(
        budgeted.key(),
        unbudgeted.key(),
        "max_steps must be part of the content key"
    );

    // Even with a generous retry policy, a budget fault consumes exactly
    // one attempt: it is deterministic, so retries cannot help.
    let engine = Engine::with_workers(1).with_retry(RetryPolicy::attempts(3));
    match engine.run_one_settled(&budgeted) {
        Err(JobFault {
            attempts: 1,
            fault: FaultKind::Budget(PdnError::BudgetExceeded { steps: 10, .. }),
            ..
        }) => {}
        other => panic!("expected a budget fault after 1 attempt, got {other:?}"),
    }
    assert_eq!(engine.stats().budget_faults, 1);
    assert_eq!(engine.retries(), 0, "budget faults must never retry");

    // The same electrical job without the budget solves fine.
    engine.run_one(&unbudgeted).unwrap();

    // Engine-level default budget: inherited only by jobs without their
    // own bound.
    let strict = Engine::with_workers(1).with_step_budget(10);
    assert!(matches!(
        strict.run_one_settled(&unbudgeted),
        Err(JobFault {
            fault: FaultKind::Budget(_),
            ..
        })
    ));
    assert_eq!(strict.stats().budget_faults, 1);
}

#[test]
fn budget_faults_render_in_the_report_fault_summary() {
    let tb = Testbed::fast();
    // A 10-step budget fails every experiment's first job deterministically.
    let strict = Engine::with_workers(2).with_step_budget(10);
    let report = full_report_on(tb, &strict, ReportScale::Reduced).unwrap();
    assert!(
        report.contains("Fault summary"),
        "budget-starved report must carry a fault summary"
    );
    assert!(
        report.contains("budget fault: step budget exhausted"),
        "summary must name the budget fault kind:\n{report}"
    );
    assert!(strict.stats().budget_faults > 0);
}

#[test]
fn interrupted_report_campaign_resumes_byte_identically() {
    let tb = Testbed::fast();
    let path = temp_store("resume-report");
    let _ = std::fs::remove_file(&path);

    // The uninterrupted baseline.
    let baseline_engine = Engine::with_workers(2);
    let baseline = full_report_on(tb, &baseline_engine, ReportScale::Reduced).unwrap();

    // First process: run only the first few experiments, then "crash".
    let first = Engine::with_workers(2).with_store(&path).unwrap();
    for entry in registry().iter().filter(|e| e.in_report).take(4) {
        let _ = entry.run_settled(tb, &first, true);
    }
    let paid_for = first.solves();
    assert!(paid_for > 0, "the interrupted run must have done real work");
    drop(first);

    // Second process: the full report, resumed over the same store.
    let second = Engine::with_workers(2).with_store(&path).unwrap();
    let resumed = full_report_on(tb, &second, ReportScale::Reduced).unwrap();
    assert_eq!(resumed, baseline, "resumed report must be byte-identical");
    assert_eq!(
        second.store_hits(),
        paid_for,
        "every solve paid for before the crash must be served from disk"
    );
    assert_eq!(
        second.solves() + paid_for,
        baseline_engine.solves(),
        "resume must add zero duplicate solves"
    );
    let _ = std::fs::remove_file(&path);
}

/// Golden-output guard: the full report's figure bytes are identical
/// with telemetry tracing on and off, and identical again when the
/// traced run resumes from a persistent store (where the engine's
/// solve/store-hit counters differ wildly from the baseline's).
/// Telemetry observes; it may never perturb.
#[test]
fn report_bytes_are_identical_traced_untraced_and_resumed() {
    let tb = Testbed::fast();
    let path = temp_store("golden-trace");
    let _ = std::fs::remove_file(&path);

    // Untraced baseline — itself pinned to the shared golden file, so
    // this guard anchors to the same bytes the solver-core suite does.
    set_trace(false);
    let baseline = full_report_on(tb, &Engine::with_workers(2), ReportScale::Reduced).unwrap();
    golden::assert_golden("full_report_reduced.txt", &baseline);

    // Traced run, fresh engine: every solve carries phase timing.
    set_trace(true);
    let traced_engine = Engine::with_workers(2);
    let traced = full_report_on(tb, &traced_engine, ReportScale::Reduced).unwrap();
    assert!(
        traced_engine.telemetry().job_wall.count() > 0,
        "setup: the traced run must actually have recorded wall times"
    );
    assert_eq!(
        traced, baseline,
        "tracing must not change a byte of the report"
    );

    // Traced + store-resumed: partial campaign, "crash", then a resumed
    // report served largely from disk — still byte-identical, even
    // though this engine's stats (solves, store hits, histograms) are
    // nothing like the baseline engine's.
    let first = Engine::with_workers(2).with_store(&path).unwrap();
    for entry in registry().iter().filter(|e| e.in_report).take(3) {
        let _ = entry.run_settled(tb, &first, true);
    }
    drop(first);
    let second = Engine::with_workers(2).with_store(&path).unwrap();
    let resumed = full_report_on(tb, &second, ReportScale::Reduced).unwrap();
    set_trace(false);
    assert!(second.store_hits() > 0, "setup: resume must hit the store");
    assert_eq!(
        resumed, baseline,
        "a traced, store-resumed report must be byte-identical"
    );
    let _ = std::fs::remove_file(&path);
}
