//! Package-design flow (paper §II-B): impedance masks, compliance
//! checking, and decap sizing — how designers "ensure that a target
//! maximum impedance Z is not surpassed for any given frequency by
//! placing enough decaps in parallel".
//!
//! Run with: `cargo run --release --example package_design`

use voltnoise::pdn::design::{check_mask, size_decap, ImpedanceMask};
use voltnoise::pdn::{ChipPdn, PdnParams};

fn main() {
    let mask = ImpedanceMask::zlike_default();

    println!("== modern (deep-trench eDRAM) design vs the impedance mask ==");
    let modern = ChipPdn::build(&PdnParams::default()).expect("default params valid");
    let v = check_mask(&modern, modern.core_node(0), &mask, 200).expect("AC sweep");
    println!("violations: {}", v.len());

    println!("\n== legacy design (1/40 on-die decap) ==");
    let legacy_params = PdnParams::legacy_decap();
    let legacy = ChipPdn::build(&legacy_params).expect("legacy params valid");
    let v = check_mask(&legacy, legacy.core_node(0), &mask, 200).expect("AC sweep");
    println!("violations: {}", v.len());
    for viol in v.iter().take(5) {
        println!(
            "  {:.3e} Hz: {:.3} mOhm > limit {:.3} mOhm",
            viol.freq_hz,
            viol.z_ohm * 1e3,
            viol.limit_ohm * 1e3
        );
    }

    println!("\n== sizing the decap to recover compliance ==");
    let sizing = size_decap(&legacy_params, &mask, 64.0, 150).expect("sizing runs");
    println!(
        "smallest compliant decap multiplier: {:.1}x (paper: deep trench added 40x)",
        sizing.decap_scale
    );
    println!(
        "sized on-die capacitance: domain {:.0} uF, L3 {:.0} uF, per-core {:.1} uF; residual violations: {}",
        sizing.params.c_domain * 1e6,
        sizing.params.c_l3 * 1e6,
        sizing.params.c_core * 1e6,
        sizing.violations.len()
    );
}
