//! Full-evaluation report: walks the experiment registry at a chosen
//! scale on one shared [`Engine`] and assembles one text document with
//! all the paper's tables and figures.
//!
//! Because every entry runs through the same engine, overlapping
//! campaigns deduplicate: Figs. 11a, 11b and 13a share one ΔI job set,
//! and any mapping jobs repeated across Figs. 14, 15 and the §VII-B
//! study solve once.

use crate::experiment::{registry, ExperimentFailure, RegistryEntry};
use crate::render::Table;
use voltnoise_pdn::PdnError;
use voltnoise_system::engine::{Engine, EngineStats};
use voltnoise_system::telemetry::LogHistogram;
use voltnoise_system::testbed::Testbed;

/// Scale at which the report is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportScale {
    /// Paper-scale configurations (minutes).
    Paper,
    /// Reduced configurations (tens of seconds).
    Reduced,
}

/// Generates the full evaluation report on a dedicated engine.
///
/// # Errors
///
/// The signature is kept fallible for compatibility, but experiment
/// failures no longer abort the report: each failing experiment is
/// dropped from the document and listed in a trailing fault summary
/// (see [`full_report_on`]).
pub fn full_report(tb: &Testbed, scale: ReportScale) -> Result<String, PdnError> {
    full_report_on(tb, &Engine::new(), scale)
}

/// Generates the full evaluation report on a caller-provided engine
/// (e.g. [`Engine::shared`], or a single-worker engine for determinism
/// checks).
///
/// Experiments run on the settled path: a failing experiment does not
/// abort the walk. Its figure section is omitted — the surviving
/// sections render exactly as they would in a fault-free run — and a
/// `Fault summary` table at the end lists every failed experiment with
/// its captured fault(s). A fault-free report carries no summary
/// section, so healthy output is byte-identical to what this function
/// produced before the degraded path existed.
///
/// # Errors
///
/// Kept for signature compatibility; currently always returns `Ok`.
pub fn full_report_on(
    tb: &Testbed,
    engine: &Engine,
    scale: ReportScale,
) -> Result<String, PdnError> {
    let reduced = scale == ReportScale::Reduced;
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("# voltnoise — full evaluation report\n\n");
    let mut failures: Vec<(&RegistryEntry, ExperimentFailure)> = Vec::new();
    for entry in registry().iter().filter(|e| e.in_report) {
        match entry.run_settled(tb, engine, reduced) {
            Ok(output) => {
                out.push_str(&output.rendered);
                out.push('\n');
            }
            Err(failure) => failures.push((entry, failure)),
        }
    }
    if !failures.is_empty() {
        let mut t = Table::new("Fault summary: experiments that could not be rendered");
        t.columns(["id", "job_faults", "detail"]);
        for (entry, failure) in &failures {
            t.row([
                entry.id.to_string(),
                failure.faults.len().to_string(),
                failure.summary(),
            ]);
        }
        out.push_str(&t.finish());
    }
    Ok(out)
}

/// Generates the full report plus a rendered telemetry section for the
/// engine that produced it, as two **separate** documents.
///
/// They are separate on purpose: the report's figure bytes are a golden
/// artifact — identical whether tracing is on or off, whether a run was
/// fresh or store-resumed — while the telemetry section describes *this
/// particular run* (solve counts, cache hits, wall-clock histograms)
/// and differs every time. Callers print the report to stdout and the
/// telemetry next to it (the `full_report` binary sends it to stderr,
/// alongside the existing store diagnostics).
///
/// # Errors
///
/// Kept for signature compatibility; currently always returns `Ok`.
pub fn full_report_with_telemetry(
    tb: &Testbed,
    engine: &Engine,
    scale: ReportScale,
) -> Result<(String, String), PdnError> {
    let report = full_report_on(tb, engine, scale)?;
    let telemetry = telemetry_section(&engine.stats());
    Ok((report, telemetry))
}

fn quantiles_cell(h: &LogHistogram) -> String {
    match (h.median(), h.p95()) {
        (Some(med), Some(p95)) => format!("median ≥{med} ns / p95 ≥{p95} ns ({})", h.count()),
        _ => "no samples".to_string(),
    }
}

/// Renders an engine's run statistics and aggregated solver telemetry
/// as a report-style `#`-commented CSV table.
///
/// This section never enters [`full_report_on`] output — it rides next
/// to the report, in the same way store diagnostics do, so that figure
/// bytes stay a pure function of the experiment content.
pub fn telemetry_section(stats: &EngineStats) -> String {
    let tel = &stats.telemetry;
    let mut t = Table::new("Engine telemetry (this run only; never part of figure bytes)");
    t.columns(["metric", "value"]);
    for (metric, value) in [
        ("workers", stats.workers),
        ("jobs_solved", stats.solves),
        ("cache_hits", stats.cache_hits),
        ("store_hits", stats.store_hits),
        ("faults", stats.faults),
    ] {
        t.row([metric.to_string(), value.to_string()]);
    }
    for (metric, value) in [
        ("solver_steps", tel.solver.steps),
        ("dc_solves", tel.solver.dc_solves),
        ("lu_factorizations", tel.solver.lu_factorizations),
        ("factor_cache_hits", tel.solver.factor_cache_hits),
        ("solve_calls", tel.solver.solve_calls),
        ("est_flops", tel.solver.est_flops),
        ("sparse_solves", tel.solver.sparse_solves),
        ("pattern_reuses", tel.solver.pattern_reuses),
    ] {
        t.row([metric.to_string(), value.to_string()]);
    }
    if tel.job_wall.is_empty() {
        t.note("wall-clock histograms empty — tracing disabled (set VOLTNOISE_TRACE=1)");
    } else {
        for (metric, hist) in [
            ("job_wall", &tel.job_wall),
            ("phase_assemble", &tel.assemble),
            ("phase_factor", &tel.factor),
            ("phase_step", &tel.step),
            ("phase_validate", &tel.validate),
        ] {
            t.row([metric.to_string(), quantiles_cell(hist)]);
        }
        t.note(&format!(
            "phase totals: assemble {} ns, factor {} ns, step {} ns, validate {} ns",
            tel.phase_ns.assemble_ns,
            tel.phase_ns.factor_ns,
            tel.phase_ns.step_ns,
            tel.phase_ns.validate_ns
        ));
    }
    t.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_report_covers_every_artifact() {
        let tb = Testbed::fast();
        let report = full_report(tb, ReportScale::Reduced).unwrap();
        for marker in [
            "Table I", "Fig. 5", "Fig. 7a", "Fig. 7b", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11a",
            "Fig. 11b", "Fig. 12", "Fig. 13a", "Fig. 13b", "Fig. 14", "Fig. 15", "§VII-B",
        ] {
            assert!(report.contains(marker), "report missing {marker}");
        }
        assert!(report.len() > 4_000, "report suspiciously short");
    }

    #[test]
    fn telemetry_section_rides_alongside_not_inside() {
        let tb = Testbed::fast();
        let engine = Engine::with_workers(2);
        let (report, telemetry) =
            full_report_with_telemetry(tb, &engine, ReportScale::Reduced).unwrap();
        // The report half is exactly what full_report_on produces on an
        // equivalent engine — telemetry never leaks into figure bytes.
        let plain = full_report_on(tb, &Engine::with_workers(2), ReportScale::Reduced).unwrap();
        assert_eq!(report, plain);
        assert!(telemetry.starts_with("# Engine telemetry"));
        assert!(telemetry.contains("jobs_solved"));
        assert!(telemetry.contains("solver_steps"));
        // Untraced run: the section says so instead of printing zeros.
        assert!(telemetry.contains("tracing disabled"));
        assert!(!report.contains("Engine telemetry"));
    }
}
