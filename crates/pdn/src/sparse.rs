//! CSR sparse matrix and sparse LU for drawer-scale MNA systems.
//!
//! The dense solver in [`crate::linalg`] is the right tool for a single
//! chip (a few dozen unknowns); a multi-chip drawer assembles hundreds,
//! where dense `O(n³)` factorization wastes almost all of its work on
//! structural zeros. This module provides the large-system path:
//!
//! - [`CsrMatrix`]: numeric values over a shared
//!   [`SystemPattern`](crate::mna::SystemPattern), assembled through the
//!   same [`StampTarget`] stamping code as the dense path;
//! - [`SparseLu`]: right-looking sparse LU with Markowitz pivoting
//!   under a threshold-pivoting stability constraint, plus
//!   [`SparseLu::refactor`] which reuses a previously discovered
//!   [`EliminationOrder`] (the expensive symbolic part) when only the
//!   numeric values changed — the common case for the transient
//!   factor cache, where the pattern is fixed and only the step size
//!   varies.
//!
//! Flop accounting is *nnz-aware*: [`SparseLu::factor_flops`] counts
//! the multiply-adds and divisions actually performed (fill-in
//! included), and [`SparseLu::solve_flops`] is `2·nnz(L+U)` — so
//! [`crate::telemetry::SolverCounters::est_flops`] reflects real sparse
//! work, directly comparable against the dense cost model.

use crate::error::PdnError;
use crate::linalg::Scalar;
use crate::mna::{StampTarget, SystemPattern};
use std::sync::Arc;

/// Relative threshold for threshold pivoting: a candidate pivot must be
/// at least this fraction of the largest magnitude in its column. The
/// classic `0.1` trades a little growth-factor headroom for much more
/// freedom to pick sparsity-preserving (Markowitz-minimal) pivots.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Absolute magnitude below which a pivot is treated as numerically
/// zero — the same cutoff the dense LU uses.
const PIVOT_MIN: f64 = 1e-300;

/// A square sparse matrix in CSR form: numeric values laid over a
/// shared symbolic [`SystemPattern`].
///
/// Assembled via the [`StampTarget`] trait so the exact stamping code
/// that fills the dense fast path also fills this one. Stamps landing
/// outside the pattern are counted (never silently dropped);
/// [`SparseLu::factor`] refuses a matrix with such strays.
#[derive(Debug, Clone)]
pub struct CsrMatrix<T> {
    pattern: Arc<SystemPattern>,
    values: Vec<T>,
    missing: usize,
}

impl<T: Scalar> CsrMatrix<T> {
    /// An all-zero matrix over `pattern`.
    pub fn zeros(pattern: Arc<SystemPattern>) -> Self {
        let nnz = pattern.nnz();
        CsrMatrix {
            pattern,
            values: vec![T::ZERO; nnz],
            missing: 0,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.pattern.size()
    }

    /// The shared symbolic pattern.
    pub fn pattern(&self) -> &Arc<SystemPattern> {
        &self.pattern
    }

    /// Number of stamps that fell outside the pattern (should be zero
    /// whenever the pattern was built from the same stamping sequence).
    pub fn missing_stamps(&self) -> usize {
        self.missing
    }

    /// Resets all values to zero, keeping pattern and allocation.
    pub fn clear(&mut self) {
        self.values.fill(T::ZERO);
        self.missing = 0;
    }

    /// Value at `(r, c)`, zero for structurally absent positions.
    pub fn get(&self, r: usize, c: usize) -> T {
        self.pattern
            .index_of(r, c)
            .map(|i| self.values[i])
            .unwrap_or(T::ZERO)
    }

    /// Matrix-vector product `y = A x`, the sparse analogue of
    /// [`crate::linalg::Matrix::mul_vec`]. Used by the reduced-order
    /// model to project the descriptor matrices onto a Krylov basis.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::DimensionMismatch`] when `x.len()` differs
    /// from the matrix dimension.
    pub fn mul_vec(&self, x: &[T]) -> Result<Vec<T>, PdnError> {
        let n = self.dim();
        if x.len() != n {
            return Err(PdnError::DimensionMismatch {
                expected: n,
                actual: x.len(),
            });
        }
        let mut y = vec![T::ZERO; n];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (c, v) in self.row(r) {
                acc = acc + v * x[c];
            }
            *yr = acc;
        }
        Ok(y)
    }

    /// One row as `(col, value)` pairs, sorted by column.
    fn row(&self, r: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let cols = self.pattern.row_cols(r);
        let base = self.pattern.index_of(r, *cols.first().unwrap_or(&0));
        let start = base.unwrap_or(0);
        cols.iter()
            .enumerate()
            .map(move |(i, &c)| (c, self.values[start + i]))
    }
}

impl<T: Scalar> StampTarget<T> for CsrMatrix<T> {
    #[inline]
    fn add(&mut self, r: usize, c: usize, value: T) {
        match self.pattern.index_of(r, c) {
            Some(i) => self.values[i] = self.values[i] + value,
            None => self.missing += 1,
        }
    }
}

/// The pivot sequence of a sparse LU factorization: at elimination step
/// `k`, row `rows[k]` was chosen as pivot row and column `cols[k]` as
/// pivot column.
///
/// For a fixed sparsity pattern, replaying this order skips the
/// Markowitz search entirely and produces identical fill structure —
/// the "symbolic factorization reuse" the transient factor cache
/// depends on. The numeric threshold check still runs; if a reused
/// pivot has gone numerically bad, [`SparseLu::refactor`] fails and the
/// caller falls back to a fresh [`SparseLu::factor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationOrder {
    rows: Vec<usize>,
    cols: Vec<usize>,
}

/// Sparse LU factors of a [`CsrMatrix`], reusable across right-hand
/// sides just like the dense [`crate::linalg::LuFactors`].
#[derive(Debug, Clone)]
pub struct SparseLu<T> {
    n: usize,
    /// Pivot row chosen at step `k` (original row index).
    row_of: Vec<usize>,
    /// Pivot column chosen at step `k` (original column index).
    col_of: Vec<usize>,
    /// Off-pivot entries of U's `k`-th row, original column ids.
    u_rows: Vec<Vec<(usize, T)>>,
    /// Pivot (diagonal of U) at step `k`.
    u_diag: Vec<T>,
    /// Multipliers eliminated at step `k`: `(original row, L value)`.
    l_cols: Vec<Vec<(usize, T)>>,
    factor_flops: u64,
    nnz_factors: u64,
}

impl<T: Scalar> SparseLu<T> {
    /// Factors `a` with Markowitz pivot selection under threshold
    /// pivoting, discovering a fresh [`EliminationOrder`].
    ///
    /// # Errors
    ///
    /// [`PdnError::SingularMatrix`] when no acceptable pivot exists at
    /// some step; [`PdnError::DimensionMismatch`] when `a` recorded
    /// stamps outside its pattern.
    pub fn factor(a: &CsrMatrix<T>) -> Result<SparseLu<T>, PdnError> {
        Self::factorize(a, None)
    }

    /// Re-factors a matrix with the **same pattern** using a previously
    /// discovered pivot order, skipping the Markowitz search.
    ///
    /// # Errors
    ///
    /// [`PdnError::SingularMatrix`] when a reused pivot is numerically
    /// unacceptable for the new values (callers fall back to
    /// [`SparseLu::factor`]); [`PdnError::DimensionMismatch`] on size
    /// or stray-stamp mismatch.
    pub fn refactor(a: &CsrMatrix<T>, order: &EliminationOrder) -> Result<SparseLu<T>, PdnError> {
        if order.rows.len() != a.dim() {
            return Err(PdnError::DimensionMismatch {
                expected: a.dim(),
                actual: order.rows.len(),
            });
        }
        Self::factorize(a, Some(order))
    }

    fn factorize(a: &CsrMatrix<T>, fixed: Option<&EliminationOrder>) -> Result<Self, PdnError> {
        if a.missing_stamps() > 0 {
            return Err(PdnError::DimensionMismatch {
                expected: 0,
                actual: a.missing_stamps(),
            });
        }
        let n = a.dim();
        let mut rows: Vec<Vec<(usize, T)>> = (0..n).map(|r| a.row(r).collect()).collect();
        let mut row_active = vec![true; n];
        let mut col_active = vec![true; n];
        let mut lu = SparseLu {
            n,
            row_of: Vec::with_capacity(n),
            col_of: Vec::with_capacity(n),
            u_rows: Vec::with_capacity(n),
            u_diag: Vec::with_capacity(n),
            l_cols: Vec::with_capacity(n),
            factor_flops: 0,
            nnz_factors: 0,
        };
        let mut merge_buf: Vec<(usize, T)> = Vec::new();

        for k in 0..n {
            let (pr, pc) = match fixed {
                Some(order) => {
                    let (r, c) = (order.rows[k], order.cols[k]);
                    if r >= n || c >= n || !row_active[r] || !col_active[c] {
                        return Err(PdnError::SingularMatrix { column: k });
                    }
                    (r, c)
                }
                None => select_pivot(&rows, &row_active, k)?,
            };

            // Extract the pivot row, splitting off the diagonal.
            let prow = std::mem::take(&mut rows[pr]);
            row_active[pr] = false;
            col_active[pc] = false;
            let mut diag = T::ZERO;
            let mut found = false;
            let mut urow = Vec::with_capacity(prow.len().saturating_sub(1));
            for (c, v) in prow {
                if c == pc {
                    diag = v;
                    found = true;
                } else {
                    urow.push((c, v));
                }
            }
            let dmag = diag.magnitude();
            if !(found && dmag.is_finite() && dmag > PIVOT_MIN) {
                return Err(PdnError::SingularMatrix { column: k });
            }

            // Eliminate the pivot column from every remaining row.
            let mut lcol = Vec::new();
            for (r, row) in rows.iter_mut().enumerate() {
                if !row_active[r] {
                    continue;
                }
                let Ok(pos) = row.binary_search_by(|&(c, _)| c.cmp(&pc)) else {
                    continue;
                };
                let m = row[pos].1 / diag;
                lu.factor_flops += 1; // the division
                row.remove(pos);
                merge_sub(row, m, &urow, &mut merge_buf);
                lu.factor_flops += 2 * urow.len() as u64;
                lcol.push((r, m));
            }

            lu.nnz_factors += 1 + urow.len() as u64 + lcol.len() as u64;
            lu.row_of.push(pr);
            lu.col_of.push(pc);
            lu.u_diag.push(diag);
            lu.u_rows.push(urow);
            lu.l_cols.push(lcol);
        }
        Ok(lu)
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The pivot order this factorization used (fresh or replayed),
    /// for reuse via [`SparseLu::refactor`].
    pub fn order(&self) -> EliminationOrder {
        EliminationOrder {
            rows: self.row_of.clone(),
            cols: self.col_of.clone(),
        }
    }

    /// Floating-point operations this factorization actually performed
    /// (multiply-adds counted as two, divisions as one; fill-in
    /// included). The sparse analogue of
    /// [`crate::linalg::Matrix::lu_flops`], but measured, not modeled.
    pub fn factor_flops(&self) -> u64 {
        self.factor_flops
    }

    /// Stored factor entries (L multipliers + U entries + diagonals).
    pub fn nnz(&self) -> u64 {
        self.nnz_factors
    }

    /// Floating-point operations of one solve: `2·nnz(L+U)` — the
    /// nnz-aware analogue of [`crate::linalg::LuFactors::solve_flops`].
    pub fn solve_flops(&self) -> u64 {
        2 * self.nnz_factors
    }

    /// Solves `A x = b` into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// [`PdnError::DimensionMismatch`] on size mismatch.
    pub fn solve_into(&self, b: &[T], x: &mut [T]) -> Result<(), PdnError> {
        if b.len() != self.n || x.len() != self.n {
            return Err(PdnError::DimensionMismatch {
                expected: self.n,
                actual: b.len().min(x.len()),
            });
        }
        // Forward pass: replay the eliminations on the RHS. After step
        // k, w[row_of[k]] holds y_k and is never touched again (its row
        // went inactive), so `w` doubles as the y vector.
        let mut w = b.to_vec();
        for k in 0..self.n {
            let yk = w[self.row_of[k]];
            for &(r, m) in &self.l_cols[k] {
                w[r] = w[r] - m * yk;
            }
        }
        // Backward pass over U in reverse pivot order. Every column id
        // in u_rows[k] is the pivot column of some later step, already
        // solved when step k is reached.
        for k in (0..self.n).rev() {
            let mut acc = w[self.row_of[k]];
            for &(c, u) in &self.u_rows[k] {
                acc = acc - u * x[c];
            }
            x[self.col_of[k]] = acc / self.u_diag[k];
        }
        Ok(())
    }

    /// Solves `A x = b`, allocating the result.
    ///
    /// # Errors
    ///
    /// [`PdnError::DimensionMismatch`] on size mismatch.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, PdnError> {
        let mut x = vec![T::ZERO; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A X = B` for a batch of right-hand sides stored
    /// column-contiguously (RHS `k` in `rhs[k*n .. (k+1)*n]`), the
    /// sparse analogue of
    /// [`crate::linalg::LuFactors::solve_batch_into`].
    ///
    /// The elimination replay and backward sweep run column-outer, so
    /// each column performs exactly the operation sequence of
    /// [`SparseLu::solve_into`] — results are bitwise identical to
    /// solving each RHS alone. The batch shares one workspace
    /// allocation instead of one per RHS.
    ///
    /// # Errors
    ///
    /// [`PdnError::DimensionMismatch`] when the buffer lengths differ
    /// or are not a multiple of the factored dimension.
    pub fn solve_batch_into(&self, rhs: &[T], x: &mut [T]) -> Result<(), PdnError> {
        let n = self.n;
        if n == 0 || rhs.len() != x.len() || !rhs.len().is_multiple_of(n) {
            return Err(PdnError::DimensionMismatch {
                expected: n,
                actual: rhs.len().min(x.len()),
            });
        }
        let k = rhs.len() / n;
        let mut w = rhs.to_vec();
        for step in 0..n {
            let r0 = self.row_of[step];
            for col in 0..k {
                let base = col * n;
                let yk = w[base + r0];
                for &(r, m) in &self.l_cols[step] {
                    w[base + r] = w[base + r] - m * yk;
                }
            }
        }
        for step in (0..n).rev() {
            let r0 = self.row_of[step];
            let c0 = self.col_of[step];
            let d = self.u_diag[step];
            for col in 0..k {
                let base = col * n;
                let mut acc = w[base + r0];
                for &(c, u) in &self.u_rows[step] {
                    acc = acc - u * x[base + c];
                }
                x[base + c0] = acc / d;
            }
        }
        Ok(())
    }
}

/// Markowitz pivot selection under threshold pivoting: among entries
/// with magnitude at least `PIVOT_THRESHOLD`× their column's maximum,
/// pick the one minimizing `(row_count - 1) * (col_count - 1)` (fill
/// bound). Scans run in fixed index order, so selection is
/// deterministic.
fn select_pivot<T: Scalar>(
    rows: &[Vec<(usize, T)>],
    row_active: &[bool],
    step: usize,
) -> Result<(usize, usize), PdnError> {
    let n = rows.len();
    let mut col_count = vec![0usize; n];
    let mut col_max = vec![0f64; n];
    for (r, row) in rows.iter().enumerate() {
        if !row_active[r] {
            continue;
        }
        for &(c, v) in row {
            col_count[c] += 1;
            let mag = v.magnitude();
            if mag.is_finite() && mag > col_max[c] {
                col_max[c] = mag;
            }
        }
    }
    let mut best: Option<(u64, usize, usize)> = None;
    for (r, row) in rows.iter().enumerate() {
        if !row_active[r] {
            continue;
        }
        let rcount = row.len();
        for &(c, v) in row {
            let mag = v.magnitude();
            if !(mag.is_finite() && mag > PIVOT_MIN) {
                continue;
            }
            if mag < PIVOT_THRESHOLD * col_max[c] {
                continue;
            }
            let cost = ((rcount - 1) * (col_count[c] - 1)) as u64;
            if best.is_none_or(|(bc, _, _)| cost < bc) {
                best = Some((cost, r, c));
            }
        }
    }
    best.map(|(_, r, c)| (r, c))
        .ok_or(PdnError::SingularMatrix { column: step })
}

/// `row -= m * sub`, both sides sorted by column; fill-in positions are
/// created as needed and exact cancellations keep explicit zeros so the
/// fill structure is a pure function of pattern and pivot order.
fn merge_sub<T: Scalar>(
    row: &mut Vec<(usize, T)>,
    m: T,
    sub: &[(usize, T)],
    buf: &mut Vec<(usize, T)>,
) {
    buf.clear();
    let mut i = 0;
    let mut j = 0;
    while i < row.len() && j < sub.len() {
        match row[i].0.cmp(&sub[j].0) {
            std::cmp::Ordering::Less => {
                buf.push(row[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                buf.push((sub[j].0, -(m * sub[j].1)));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                buf.push((row[i].0, row[i].1 - m * sub[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    buf.extend_from_slice(&row[i..]);
    for &(c, v) in &sub[j..] {
        buf.push((c, -(m * v)));
    }
    std::mem::swap(row, buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;
    use crate::mna::{MnaSystem, SystemPattern};
    use crate::netlist::{Netlist, NodeId};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn chip_like_netlist(stages: usize) -> Netlist {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let mut prev = vdd;
        for i in 0..stages {
            let node = nl.add_node(format!("n{i}"));
            nl.add_series_rl(prev, node, 1e-3 * (i + 1) as f64, 1e-9)
                .unwrap();
            nl.add_capacitor_with_esr(node, NodeId::GROUND, 1e-6, 1e-3)
                .unwrap();
            prev = node;
        }
        nl.add_current_source(prev, NodeId::GROUND).unwrap();
        nl
    }

    fn dense_of(sys: &MnaSystem, h: f64) -> Matrix<f64> {
        let mut m = Matrix::zeros(sys.size(), sys.size());
        sys.stamp_transient(&mut m, h);
        m
    }

    fn sparse_of(sys: &MnaSystem, pattern: &Arc<SystemPattern>, h: f64) -> CsrMatrix<f64> {
        let mut m = CsrMatrix::zeros(pattern.clone());
        sys.stamp_transient(&mut m, h);
        m
    }

    #[test]
    fn sparse_solution_matches_dense() {
        let nl = chip_like_netlist(8);
        let sys = MnaSystem::new(&nl);
        let pattern = Arc::new(SystemPattern::coupled(&sys));
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        for _ in 0..20 {
            let h = rng.gen_range(1e-10..1e-7);
            let dense = dense_of(&sys, h);
            let sparse = sparse_of(&sys, &pattern, h);
            let b: Vec<f64> = (0..sys.size()).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let xd = dense.lu().unwrap().solve(&b).unwrap();
            let xs = SparseLu::factor(&sparse).unwrap().solve(&b).unwrap();
            for (d, s) in xd.iter().zip(&xs) {
                assert!((d - s).abs() < 1e-9, "dense {d} vs sparse {s}");
            }
        }
    }

    #[test]
    fn refactor_with_reused_order_matches_fresh() {
        let nl = chip_like_netlist(6);
        let sys = MnaSystem::new(&nl);
        let pattern = Arc::new(SystemPattern::coupled(&sys));
        let a1 = sparse_of(&sys, &pattern, 1e-9);
        let lu1 = SparseLu::factor(&a1).unwrap();
        let order = lu1.order();
        // Different values, same pattern: refactor must agree with a
        // fresh factorization of the new matrix.
        let a2 = sparse_of(&sys, &pattern, 7e-9);
        let fresh = SparseLu::factor(&a2).unwrap();
        let reused = SparseLu::refactor(&a2, &order).unwrap();
        let b: Vec<f64> = (0..sys.size()).map(|i| (i as f64) - 3.0).collect();
        let xf = fresh.solve(&b).unwrap();
        let xr = reused.solve(&b).unwrap();
        for (f, r) in xf.iter().zip(&xr) {
            assert!((f - r).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        // Two nodes joined by a resistor, no path to ground.
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        let b = nl.add_node("b");
        nl.add_resistor(a, b, 1.0).unwrap();
        let sys = MnaSystem::new(&nl);
        let pattern = Arc::new(SystemPattern::coupled(&sys));
        let m = sparse_of(&sys, &pattern, 1e-9);
        assert!(matches!(
            SparseLu::factor(&m),
            Err(PdnError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn stray_stamp_is_refused_not_dropped() {
        let nl = chip_like_netlist(2);
        let sys = MnaSystem::new(&nl);
        let pattern = Arc::new(SystemPattern::coupled(&sys));
        let mut m = sparse_of(&sys, &pattern, 1e-9);
        let vrow = sys.size() - 1;
        m.add(vrow, vrow, 1.0); // branch-row diagonal: structurally zero
        assert_eq!(m.missing_stamps(), 1);
        assert!(matches!(
            SparseLu::factor(&m),
            Err(PdnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn flop_counts_are_nnz_aware() {
        let nl = chip_like_netlist(10);
        let sys = MnaSystem::new(&nl);
        let pattern = Arc::new(SystemPattern::coupled(&sys));
        let m = sparse_of(&sys, &pattern, 1e-9);
        let dense = dense_of(&sys, 1e-9);
        let lu = SparseLu::factor(&m).unwrap();
        assert!(lu.factor_flops() > 0);
        assert!(lu.solve_flops() == 2 * lu.nnz());
        // A tridiagonal-ish PDN chain factors far cheaper than the
        // dense cost model.
        assert!(
            lu.factor_flops() < dense.lu_flops() / 4,
            "sparse {} vs dense model {}",
            lu.factor_flops(),
            dense.lu_flops()
        );
    }

    #[test]
    fn batched_solve_is_bitwise_identical_to_looped() {
        let nl = chip_like_netlist(9);
        let sys = MnaSystem::new(&nl);
        let pattern = Arc::new(SystemPattern::coupled(&sys));
        let m = sparse_of(&sys, &pattern, 3e-9);
        let lu = SparseLu::factor(&m).unwrap();
        let n = sys.size();
        let k = 4;
        let mut rng = SmallRng::seed_from_u64(0xba7c);
        let rhs: Vec<f64> = (0..n * k).map(|_| rng.gen_range(-8.0..8.0)).collect();
        let mut batched = vec![0.0; n * k];
        lu.solve_batch_into(&rhs, &mut batched).unwrap();
        for col in 0..k {
            let single = lu.solve(&rhs[col * n..(col + 1) * n]).unwrap();
            for i in 0..n {
                assert_eq!(
                    single[i].to_bits(),
                    batched[col * n + i].to_bits(),
                    "col {col} row {i}"
                );
            }
        }
        // Ragged buffers are rejected; an empty batch is a no-op.
        let mut x = vec![0.0; n + 1];
        assert!(lu.solve_batch_into(&rhs[..n + 1], &mut x).is_err());
        assert!(lu.solve_batch_into(&[], &mut []).is_ok());
    }

    #[test]
    fn mul_vec_matches_dense_product() {
        let nl = chip_like_netlist(5);
        let sys = MnaSystem::new(&nl);
        let pattern = Arc::new(SystemPattern::coupled(&sys));
        let m = sparse_of(&sys, &pattern, 2e-9);
        let dense = dense_of(&sys, 2e-9);
        let x: Vec<f64> = (0..sys.size()).map(|i| (i as f64) * 0.5 - 2.0).collect();
        let ys = m.mul_vec(&x).unwrap();
        let yd = dense.mul_vec(&x);
        for (s, d) in ys.iter().zip(&yd) {
            assert!((s - d).abs() < 1e-9, "sparse {s} vs dense {d}");
        }
        assert!(m.mul_vec(&x[..1]).is_err());
    }

    #[test]
    fn solve_into_rejects_bad_lengths() {
        let nl = chip_like_netlist(2);
        let sys = MnaSystem::new(&nl);
        let pattern = Arc::new(SystemPattern::coupled(&sys));
        let m = sparse_of(&sys, &pattern, 1e-9);
        let lu = SparseLu::factor(&m).unwrap();
        let mut x = vec![0.0; sys.size()];
        assert!(lu.solve_into(&[1.0], &mut x).is_err());
    }
}
