//! Workload kinds and workload-to-core mappings.
//!
//! The paper's §V-D/VI experiments map three workload classes — idle,
//! medium dI/dt and maximum dI/dt — onto the six cores in all possible
//! ways (36 distinct distributions) and measure per-core noise for each.

use crate::site::SiteVec;
use serde::{Deserialize, Serialize};
use voltnoise_pdn::topology::NUM_CORES;

/// Workload class of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Core idles (spin loop / static power only).
    Idle,
    /// Medium dI/dt stressmark: half the ΔI of the maximum.
    MediumDidt,
    /// Maximum dI/dt stressmark.
    MaxDidt,
}

impl WorkloadKind {
    /// All kinds, in increasing ΔI order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::Idle,
        WorkloadKind::MediumDidt,
        WorkloadKind::MaxDidt,
    ];

    /// Short label used in reports ("idle", "med", "max").
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Idle => "idle",
            WorkloadKind::MediumDidt => "med",
            WorkloadKind::MaxDidt => "max",
        }
    }
}

/// A placement of workload kinds onto the sites of a
/// [`crate::site::SiteSpace`], indexed by site ordinal. At chip scale
/// this has [`NUM_CORES`] entries; at rack scale one per rack site.
pub type Placement = SiteVec<WorkloadKind>;

/// A workload-to-core mapping (the chip-scale name for a
/// [`Placement`], kept for the §V-D/VI experiments' vocabulary).
pub type Mapping = Placement;

/// A workload *distribution*: how many cores run each class, regardless
/// of which cores (the paper's Fig. 11b "x-y" notation: x maximum
/// stressmarks, y medium stressmarks, the rest idle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Distribution {
    /// Cores running the maximum dI/dt stressmark.
    pub max_count: usize,
    /// Cores running the medium dI/dt stressmark.
    pub medium_count: usize,
}

impl Distribution {
    /// The distribution of a mapping (any site count).
    pub fn of(mapping: &[WorkloadKind]) -> Self {
        Distribution {
            max_count: mapping
                .iter()
                .filter(|w| **w == WorkloadKind::MaxDidt)
                .count(),
            medium_count: mapping
                .iter()
                .filter(|w| **w == WorkloadKind::MediumDidt)
                .count(),
        }
    }

    /// Fraction of the chip's maximum possible ΔI this distribution
    /// generates (a medium stressmark contributes half a maximum one).
    pub fn delta_i_fraction(&self) -> f64 {
        (self.max_count as f64 + self.medium_count as f64 / 2.0) / NUM_CORES as f64
    }

    /// Paper-style "x-y" label.
    pub fn label(&self) -> String {
        format!("{}-{}", self.max_count, self.medium_count)
    }
}

/// Enumerates all distributions with `max_count + medium_count <= 6` —
/// the paper's "6 cores & 3 workloads ⇒ 36 combinations".
pub fn all_distributions() -> Vec<Distribution> {
    let mut out = Vec::new();
    for max_count in 0..=NUM_CORES {
        for medium_count in 0..=(NUM_CORES - max_count) {
            out.push(Distribution {
                max_count,
                medium_count,
            });
        }
    }
    out
}

/// Enumerates every distinct core-assignment (mapping) of a distribution.
pub fn mappings_of(dist: &Distribution) -> Vec<Mapping> {
    let mut out = Vec::new();
    let n = NUM_CORES;
    // Choose positions for max workloads, then medium among the rest.
    let mut max_sel = vec![false; n];
    choose(n, dist.max_count, 0, &mut max_sel, &mut |max_mask| {
        let free: Vec<usize> = (0..n).filter(|&i| !max_mask[i]).collect();
        let mut med_sel = vec![false; free.len()];
        choose(
            free.len(),
            dist.medium_count,
            0,
            &mut med_sel,
            &mut |med_mask| {
                let mut m = Mapping::from_elem(WorkloadKind::Idle, NUM_CORES);
                for (i, &is_max) in max_mask.iter().enumerate() {
                    if is_max {
                        m[i] = WorkloadKind::MaxDidt;
                    }
                }
                for (k, &fi) in free.iter().enumerate() {
                    if med_mask[k] {
                        m[fi] = WorkloadKind::MediumDidt;
                    }
                }
                out.push(m);
            },
        );
    });
    out
}

fn choose(n: usize, k: usize, start: usize, sel: &mut Vec<bool>, visit: &mut impl FnMut(&[bool])) {
    let chosen = sel.iter().filter(|&&s| s).count();
    if chosen == k {
        visit(sel);
        return;
    }
    if start >= n || n - start < k - chosen {
        return;
    }
    sel[start] = true;
    choose(n, k, start + 1, sel, visit);
    sel[start] = false;
    choose(n, k, start + 1, sel, visit);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_36_minus_8_distributions() {
        // max in 0..=6, medium in 0..=(6-max): sum_{m=0..6} (7-m) = 28.
        // The paper's "36 combinations" counts workloads x cores loosely;
        // the distinct (max, medium) distributions number 28.
        assert_eq!(all_distributions().len(), 28);
    }

    #[test]
    fn delta_i_fraction_weights_medium_as_half() {
        let d = Distribution {
            max_count: 1,
            medium_count: 4,
        };
        assert!((d.delta_i_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(d.label(), "1-4");
    }

    #[test]
    fn mappings_count_matches_binomials() {
        // 2 max, 1 medium: C(6,2) * C(4,1) = 15 * 4 = 60.
        let d = Distribution {
            max_count: 2,
            medium_count: 1,
        };
        assert_eq!(mappings_of(&d).len(), 60);
    }

    #[test]
    fn mappings_have_correct_composition() {
        let d = Distribution {
            max_count: 3,
            medium_count: 2,
        };
        for m in mappings_of(&d) {
            assert_eq!(Distribution::of(&m), d);
        }
    }

    #[test]
    fn full_idle_distribution_has_single_mapping() {
        let d = Distribution {
            max_count: 0,
            medium_count: 0,
        };
        assert_eq!(mappings_of(&d).len(), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(WorkloadKind::MaxDidt.label(), "max");
        assert_eq!(WorkloadKind::Idle.label(), "idle");
    }
}
