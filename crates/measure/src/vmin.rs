//! Vmin experiments: undervolting to first failure.
//!
//! The paper's "ultimate bullet-proof method to check the available
//! voltage margin" (§III): lower the operating voltage in 0.5 % steps
//! (one step every two minutes, with a reboot after failure) until the
//! R-Unit detects the first error. This module provides the critical-path
//! timing-failure model, the R-Unit detector, and the stepping harness;
//! the caller supplies the closure that simulates a run at a given bias.

use serde::{Deserialize, Serialize};

/// Critical-path timing model: path delay grows as overdrive shrinks, and
/// a cycle fails when the instantaneous supply can no longer close timing
/// within the clock period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Path delay at nominal voltage, as a fraction of the clock period
    /// (e.g. 0.75 = 25 % timing slack at nominal).
    pub nominal_delay_fraction: f64,
    /// Effective threshold voltage of the path devices.
    pub vth: f64,
    /// Delay-vs-overdrive exponent.
    pub beta: f64,
    /// Nominal supply voltage.
    pub v_nom: f64,
}

impl Default for CriticalPath {
    fn default() -> Self {
        CriticalPath {
            nominal_delay_fraction: 0.75,
            vth: 0.60,
            beta: 1.2,
            v_nom: 1.05,
        }
    }
}

impl CriticalPath {
    /// Path delay at voltage `v`, as a fraction of the clock period.
    pub fn delay_fraction(&self, v: f64) -> f64 {
        let od = (v - self.vth).max(1e-6);
        let od_nom = self.v_nom - self.vth;
        self.nominal_delay_fraction * (od_nom / od).powf(self.beta)
    }

    /// Lowest voltage at which the path still closes timing.
    pub fn failure_voltage(&self) -> f64 {
        // delay_fraction(v) = 1  =>  od = od_nom * frac^(1/beta)
        let od_nom = self.v_nom - self.vth;
        self.vth + od_nom * self.nominal_delay_fraction.powf(1.0 / self.beta)
    }

    /// True when a supply excursion down to `v_min` violates timing.
    pub fn fails_at(&self, v_min: f64) -> bool {
        self.delay_fraction(v_min) > 1.0
    }
}

/// The recovery unit: detects timing violations and recovers the core
/// (paper §III: "errors are detected using the recovery unit (R-Unit)").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RUnit {
    recoveries: u64,
}

impl RUnit {
    /// Creates an R-Unit with a clear recovery counter.
    pub fn new() -> Self {
        RUnit::default()
    }

    /// Checks one run's minimum observed voltage against the critical
    /// path; records and reports a recovery event on violation.
    pub fn check(&mut self, path: &CriticalPath, v_min: f64) -> bool {
        let failed = path.fails_at(v_min);
        if failed {
            self.recoveries += 1;
        }
        failed
    }

    /// Number of recovery events observed so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

/// Configuration of the Vmin stepping harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VminConfig {
    /// Relative voltage step per iteration (the machine steps 0.5 %).
    pub step: f64,
    /// Lowest bias to try before giving up.
    pub floor_bias: f64,
    /// Simulated wall-clock cost per step in seconds (the paper waits two
    /// minutes per step).
    pub seconds_per_step: f64,
    /// Simulated reboot cost after the failing run, in seconds.
    pub reboot_seconds: f64,
}

impl Default for VminConfig {
    fn default() -> Self {
        VminConfig {
            step: 0.005,
            floor_bias: 0.70,
            seconds_per_step: 120.0,
            reboot_seconds: 600.0,
        }
    }
}

/// Result of a Vmin experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VminResult {
    /// Bias (fraction of nominal) at which the first failure occurred;
    /// `None` when no failure happened before the floor.
    pub failing_bias: Option<f64>,
    /// Steps executed.
    pub steps: u32,
    /// Simulated turn-around time in seconds — the cost the paper cites
    /// as the method's drawback.
    pub simulated_seconds: f64,
}

impl VminResult {
    /// Margin consumed before failure, in percent of nominal voltage
    /// (100 % − failing bias); `None` without a failure.
    pub fn margin_pct(&self) -> Option<f64> {
        self.failing_bias.map(|b| (1.0 - b) * 100.0)
    }
}

/// Runs a Vmin experiment: starting at nominal, lower the bias step by
/// step and invoke `run_at_bias` (which should simulate the workload at
/// `bias × v_nom` and return `true` on detected failure).
///
/// # Examples
///
/// ```
/// use voltnoise_measure::vmin::{run_vmin, VminConfig};
///
/// // A workload that fails below 97 % of nominal.
/// let result = run_vmin(&VminConfig::default(), |bias| bias < 0.97);
/// let fail = result.failing_bias.unwrap();
/// assert!(fail < 0.97 && fail > 0.96);
/// ```
pub fn run_vmin(cfg: &VminConfig, mut run_at_bias: impl FnMut(f64) -> bool) -> VminResult {
    let mut bias = 1.0;
    let mut steps = 0u32;
    let mut seconds = 0.0;
    loop {
        steps += 1;
        seconds += cfg.seconds_per_step;
        if run_at_bias(bias) {
            seconds += cfg.reboot_seconds;
            return VminResult {
                failing_bias: Some(bias),
                steps,
                simulated_seconds: seconds,
            };
        }
        bias -= cfg.step;
        if bias < cfg.floor_bias {
            return VminResult {
                failing_bias: None,
                steps,
                simulated_seconds: seconds,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_as_voltage_drops() {
        let p = CriticalPath::default();
        assert!(p.delay_fraction(1.00) > p.delay_fraction(1.05));
        assert!((p.delay_fraction(1.05) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn failure_voltage_is_consistent_with_fails_at() {
        let p = CriticalPath::default();
        let vf = p.failure_voltage();
        assert!(!p.fails_at(vf + 1e-6));
        assert!(p.fails_at(vf - 1e-6));
        // With 25 % slack, failure sits well below nominal.
        assert!(vf < 1.01 && vf > 0.85, "vf = {vf}");
    }

    #[test]
    fn runit_counts_recoveries() {
        let p = CriticalPath::default();
        let mut r = RUnit::new();
        assert!(!r.check(&p, 1.04));
        assert!(r.check(&p, 0.80));
        assert!(r.check(&p, 0.80));
        assert_eq!(r.recoveries(), 2);
    }

    #[test]
    fn vmin_finds_threshold_within_one_step() {
        let cfg = VminConfig::default();
        let res = run_vmin(&cfg, |b| b < 0.93);
        let fail = res.failing_bias.unwrap();
        assert!(
            fail < 0.93 && fail >= 0.93 - cfg.step - 1e-12,
            "fail = {fail}"
        );
        assert!((res.margin_pct().unwrap() - (1.0 - fail) * 100.0).abs() < 1e-12);
    }

    #[test]
    fn vmin_reports_no_failure_at_floor() {
        let res = run_vmin(&VminConfig::default(), |_| false);
        assert_eq!(res.failing_bias, None);
        assert_eq!(res.margin_pct(), None);
    }

    #[test]
    fn vmin_accumulates_turnaround_time() {
        let cfg = VminConfig::default();
        let res = run_vmin(&cfg, |b| b < 0.99);
        // 3 steps (1.0, 0.995, 0.99... fails at third when bias < 0.99 =>
        // bias 0.99 - epsilon) plus reboot.
        assert!(res.simulated_seconds >= 2.0 * cfg.seconds_per_step + cfg.reboot_seconds);
    }
}
