//! Noise-aware task scheduling over time (paper §VII-A, operationalized).
//!
//! The paper proposes "a task mapping policy with the objective of
//! minimizing the worst-case noise", so that the voltage margin can be
//! squeezed proactively. This module builds the measured noise table for
//! every subset of occupied cores, wraps it in placement policies, and
//! replays job traces through a small discrete-event scheduler to compare
//! the time-weighted margin requirement of a naive scheduler against the
//! noise-aware one.

use crate::mapping::evaluate_mapping;
use crate::noise::NoiseRunConfig;
use crate::testbed::Testbed;
use crate::workload::{Mapping, WorkloadKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;

/// Measured worst-case noise for every subset of simultaneously active
/// cores (2^6 = 64 entries), in %p2p.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseTable {
    entries: HashMap<u8, f64>,
}

fn mapping_of_mask(mask: u8) -> Mapping {
    std::array::from_fn(|i| {
        if mask & (1 << i) != 0 {
            WorkloadKind::MaxDidt
        } else {
            WorkloadKind::Idle
        }
    })
}

impl NoiseTable {
    /// Characterizes all 64 occupancy masks on the testbed (64 noise
    /// runs — the one-off calibration a real system would do at test
    /// time).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if a PDN solve fails.
    pub fn characterize(
        tb: &Testbed,
        stim_freq_hz: f64,
        run_cfg: &NoiseRunConfig,
    ) -> Result<Self, PdnError> {
        let mut entries = HashMap::with_capacity(64);
        for mask in 0u8..64 {
            let eval = evaluate_mapping(
                tb,
                &mapping_of_mask(mask),
                stim_freq_hz,
                Some(SyncSpec::paper_default()),
                run_cfg,
            )?;
            entries.insert(mask, eval.worst_pct);
        }
        Ok(NoiseTable { entries })
    }

    /// Builds a table from precomputed entries (tests, serialization).
    ///
    /// # Panics
    ///
    /// Panics unless all 64 masks are present.
    pub fn from_entries(entries: HashMap<u8, f64>) -> Self {
        assert_eq!(entries.len(), 64, "need all 64 occupancy masks");
        NoiseTable { entries }
    }

    /// Worst-case noise of an occupancy mask.
    ///
    /// # Panics
    ///
    /// Panics for masks above 63.
    pub fn noise_pct(&self, mask: u8) -> f64 {
        self.entries[&mask]
    }
}

/// A placement policy: choose a free core for an arriving job.
pub trait PlacementPolicy {
    /// Chooses one of the free cores (mask bit clear). Returns `None`
    /// when the chip is full.
    fn place(&self, occupied_mask: u8) -> Option<usize>;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// The noise-oblivious policy: lowest-numbered free core.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaivePolicy;

impl PlacementPolicy for NaivePolicy {
    fn place(&self, occupied_mask: u8) -> Option<usize> {
        (0..NUM_CORES).find(|i| occupied_mask & (1 << i) == 0)
    }
    fn name(&self) -> &'static str {
        "naive"
    }
}

/// The noise-aware policy: the free core whose addition minimizes the
/// measured worst-case noise of the resulting occupancy.
#[derive(Debug, Clone)]
pub struct NoiseAwarePolicy {
    table: NoiseTable,
}

impl NoiseAwarePolicy {
    /// Creates the policy from a measured noise table.
    pub fn new(table: NoiseTable) -> Self {
        NoiseAwarePolicy { table }
    }
}

impl PlacementPolicy for NoiseAwarePolicy {
    fn place(&self, occupied_mask: u8) -> Option<usize> {
        (0..NUM_CORES)
            .filter(|i| occupied_mask & (1 << i) == 0)
            .min_by(|&a, &b| {
                let na = self.table.noise_pct(occupied_mask | (1 << a));
                let nb = self.table.noise_pct(occupied_mask | (1 << b));
                na.total_cmp(&nb)
            })
    }
    fn name(&self) -> &'static str {
        "noise-aware"
    }
}

/// One job of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Arrival time in abstract ticks.
    pub arrival: u64,
    /// Duration in ticks.
    pub duration: u64,
}

/// Generates a deterministic job trace with roughly `mean_parallelism`
/// jobs in flight.
pub fn synthetic_trace(jobs: usize, mean_parallelism: f64) -> Vec<Job> {
    let duration = 100u64;
    let inter_arrival = (duration as f64 / mean_parallelism.max(0.1)).max(1.0) as u64;
    (0..jobs)
        .map(|k| {
            // Deterministic jitter so occupancy actually fluctuates.
            let wobble = ((k * 7919) % 23) as u64;
            Job {
                arrival: k as u64 * inter_arrival + wobble,
                duration: duration + ((k * 104729) % 41) as u64,
            }
        })
        .collect()
}

/// Outcome of replaying one trace under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Policy name.
    pub policy: String,
    /// Time-weighted mean of the required noise margin (%p2p).
    pub mean_required_pct: f64,
    /// Peak required margin over the run.
    pub peak_required_pct: f64,
    /// Jobs that found no free core on arrival (queued until one freed).
    pub queued_jobs: usize,
}

/// Replays a job trace through a policy, charging at every instant the
/// measured worst-case noise of the current occupancy.
pub fn replay(table: &NoiseTable, policy: &dyn PlacementPolicy, jobs: &[Job]) -> ScheduleOutcome {
    #[derive(Clone, Copy)]
    struct Running {
        core: usize,
        ends: u64,
    }
    let mut jobs: Vec<Job> = jobs.to_vec();
    jobs.sort_by_key(|j| j.arrival);
    let mut running: Vec<Running> = Vec::new();
    let mut queue: Vec<u64> = Vec::new(); // remaining durations of queued jobs
    let mut mask: u8 = 0;
    let mut t: u64 = 0;
    let mut weighted = 0.0f64;
    let mut peak = 0.0f64;
    let mut queued_jobs = 0usize;
    let mut idx = 0usize;

    let advance = |mask: u8, from: u64, to: u64, weighted: &mut f64, peak: &mut f64| {
        if to > from {
            let n = table.noise_pct(mask);
            *weighted += n * (to - from) as f64;
            *peak = peak.max(n);
        }
    };

    let horizon = jobs.last().map(|j| j.arrival).unwrap_or(0) + 10_000;
    while idx < jobs.len() || !running.is_empty() || !queue.is_empty() {
        // Next event: arrival or completion.
        let next_arrival = jobs.get(idx).map(|j| j.arrival).unwrap_or(u64::MAX);
        let next_done = running.iter().map(|r| r.ends).min().unwrap_or(u64::MAX);
        let next = next_arrival.min(next_done);
        if next == u64::MAX || next > horizon {
            break;
        }
        advance(mask, t, next, &mut weighted, &mut peak);
        t = next;

        // Completions first (frees cores for same-tick arrivals).
        running.retain(|r| {
            if r.ends <= t {
                mask &= !(1 << r.core);
                false
            } else {
                true
            }
        });
        // Drain the queue into freed cores.
        while let Some(&dur) = queue.first() {
            match policy.place(mask) {
                Some(core) => {
                    queue.remove(0);
                    mask |= 1 << core;
                    running.push(Running {
                        core,
                        ends: t + dur,
                    });
                }
                None => break,
            }
        }
        // Arrivals at time t.
        while idx < jobs.len() && jobs[idx].arrival <= t {
            let job = jobs[idx];
            idx += 1;
            match policy.place(mask) {
                Some(core) => {
                    mask |= 1 << core;
                    running.push(Running {
                        core,
                        ends: t + job.duration,
                    });
                }
                None => {
                    queued_jobs += 1;
                    queue.push(job.duration);
                }
            }
        }
    }
    advance(mask, t, t + 1, &mut weighted, &mut peak);

    ScheduleOutcome {
        policy: policy.name().to_string(),
        mean_required_pct: weighted / (t + 1) as f64,
        peak_required_pct: peak,
        queued_jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic table where same-row packing is penalized, mimicking
    /// the measured chip.
    fn synthetic_table() -> NoiseTable {
        let mut entries = HashMap::new();
        for mask in 0u8..64 {
            let count = mask.count_ones() as f64;
            let even: u32 = (0..3).map(|k| (mask >> (2 * k)) & 1).map(u32::from).sum();
            let odd = mask.count_ones() - even;
            // Base grows with count; same-row concentration adds penalty.
            let imbalance = (even as f64 - odd as f64).abs();
            entries.insert(mask, 5.0 + 8.0 * count + 3.0 * imbalance);
        }
        NoiseTable::from_entries(entries)
    }

    #[test]
    fn naive_policy_fills_in_order() {
        let p = NaivePolicy;
        assert_eq!(p.place(0b000000), Some(0));
        assert_eq!(p.place(0b000101), Some(1));
        assert_eq!(p.place(0b111111), None);
    }

    #[test]
    fn noise_aware_policy_balances_rows() {
        let p = NoiseAwarePolicy::new(synthetic_table());
        // Core 0 (even row) occupied: the aware policy picks an odd-row
        // core next to minimize imbalance.
        let next = p.place(0b000001).unwrap();
        assert!(next % 2 == 1, "picked core {next}");
    }

    #[test]
    fn replay_charges_lower_margin_for_aware_policy() {
        let table = synthetic_table();
        let trace = synthetic_trace(60, 2.5);
        let naive = replay(&table, &NaivePolicy, &trace);
        let aware = replay(&table, &NoiseAwarePolicy::new(table.clone()), &trace);
        assert!(
            aware.mean_required_pct <= naive.mean_required_pct,
            "aware {} vs naive {}",
            aware.mean_required_pct,
            naive.mean_required_pct
        );
        assert!(aware.peak_required_pct <= naive.peak_required_pct + 1e-9);
    }

    #[test]
    fn full_chip_queues_jobs() {
        let table = synthetic_table();
        // 12 simultaneous arrivals on 6 cores: 6 must queue.
        let trace: Vec<Job> = (0..12)
            .map(|_| Job {
                arrival: 0,
                duration: 50,
            })
            .collect();
        let out = replay(&table, &NaivePolicy, &trace);
        assert_eq!(out.queued_jobs, 6);
    }

    #[test]
    fn measured_table_smoke() {
        let tb = Testbed::fast();
        // Characterize only via the public API with a tiny window; the
        // full 64-mask characterization runs in the bench harness.
        let run_cfg = NoiseRunConfig {
            window_s: Some(20e-6),
            ..NoiseRunConfig::default()
        };
        let table = NoiseTable::characterize(tb, 2.5e6, &run_cfg).unwrap();
        assert!(table.noise_pct(0b111111) > table.noise_pct(0b000001));
        assert!(table.noise_pct(0) < 10.0);
        // The aware policy on the real table avoids pairing row-mates
        // early: starting from {0}, it avoids cores 2 and 4.
        let p = NoiseAwarePolicy::new(table);
        let next = p.place(0b000001).unwrap();
        assert!(next != 2 && next != 4, "picked same-row core {next}");
    }
}
