//! Regenerates paper Fig. 14: two mappings of three worst-case dI/dt
//! stressmarks — split across the floorplan rows vs packed into one row.

use voltnoise::analysis::run_mapping_comparison;
use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let res = run_mapping_comparison(tb, 2.5e6).expect("comparison runs");
    opts.finish(&res.render(), &res);
}
