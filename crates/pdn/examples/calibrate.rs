//! Dev tool: prints the die-level impedance profile and coupling numbers
//! used to calibrate `PdnParams`.
use voltnoise_pdn::ac::{find_peaks, log_space, AcAnalysis};
use voltnoise_pdn::topology::{ChipPdn, PdnParams};

fn main() {
    let params = PdnParams::default();
    let chip = ChipPdn::build(&params).unwrap();
    let ac = AcAnalysis::new(chip.netlist());
    let freqs = log_space(1e3, 100e6, 300).expect("valid sweep bounds");
    let prof = ac.sweep(chip.core_node(0), &freqs).unwrap();
    println!("freq_hz,z_mohm");
    for p in prof.iter().step_by(6) {
        println!("{:.4e},{:.4}", p.freq_hz, p.magnitude() * 1e3);
    }
    println!("peaks:");
    for (f, m) in find_peaks(&prof).expect("non-empty profile").iter().take(6) {
        println!("  f={:.4e} Hz |Z|={:.4} mOhm", f, m * 1e3);
    }
    for f in [40e3, 2e6] {
        let z_self = ac.impedance_at(chip.core_node(0), f).unwrap().abs();
        let z_same = ac
            .transfer_impedance(chip.core_node(0), chip.core_node(2), f)
            .unwrap()
            .abs();
        let z_far = ac
            .transfer_impedance(chip.core_node(0), chip.core_node(4), f)
            .unwrap()
            .abs();
        let z_cross = ac
            .transfer_impedance(chip.core_node(0), chip.core_node(1), f)
            .unwrap()
            .abs();
        let z_cross2 = ac
            .transfer_impedance(chip.core_node(0), chip.core_node(3), f)
            .unwrap()
            .abs();
        println!("f={:.2e}: self={:.4} same(0->2)={:.4} same(0->4)={:.4} cross(0->1)={:.4} cross(0->3)={:.4} mOhm",
            f, z_self*1e3, z_same*1e3, z_far*1e3, z_cross*1e3, z_cross2*1e3);
    }
}
