//! Time-of-day (TOD) clock facilities.
//!
//! The modeled machine exposes a global 64-bit TOD register whose
//! low-order stepping gives 62.5 ns alignment granularity; stressmarks
//! spin on mask conditions over it to exit their synchronization loops in
//! lockstep, or deliberately misaligned by a controlled number of ticks
//! (paper §IV-C, §V-C).

use serde::{Deserialize, Serialize};
use voltnoise_stressmark::TOD_TICK_SECONDS;

/// Converts a simulation time to TOD ticks (62.5 ns units).
pub fn ticks_of(t_seconds: f64) -> u64 {
    (t_seconds / TOD_TICK_SECONDS).floor() as u64
}

/// Converts TOD ticks to seconds.
pub fn seconds_of(ticks: u64) -> f64 {
    ticks as f64 * TOD_TICK_SECONDS
}

/// A synchronization condition over the TOD register: the spin loop exits
/// when `ticks % interval_ticks == offset_ticks`.
///
/// The paper's canonical setting checks "the low-order bits of the clock
/// value are zero; this happens every 4 ms" — i.e. an interval of 64 000
/// ticks with offset 0. Offsetting by one tick reproduces the 62.5 ns
/// deliberate-misalignment experiment.
///
/// # Examples
///
/// ```
/// use voltnoise_system::tod::TodSync;
///
/// let sync = TodSync::every_4ms(0);
/// assert_eq!(sync.interval_ticks, 64_000);
/// let exit = sync.next_exit_after(0.0);
/// assert!(exit >= 0.0 && exit < 4.1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TodSync {
    /// Sync period in ticks.
    pub interval_ticks: u64,
    /// Exit offset within the period, in ticks.
    pub offset_ticks: u64,
}

impl TodSync {
    /// The paper's 4 ms interval with a configurable misalignment offset.
    pub fn every_4ms(offset_ticks: u64) -> Self {
        TodSync {
            interval_ticks: 64_000,
            offset_ticks,
        }
    }

    /// Interval in seconds.
    pub fn interval_seconds(&self) -> f64 {
        seconds_of(self.interval_ticks)
    }

    /// Offset in seconds.
    pub fn offset_seconds(&self) -> f64 {
        seconds_of(self.offset_ticks % self.interval_ticks.max(1))
    }

    /// First spin-loop exit time strictly after `t` seconds.
    pub fn next_exit_after(&self, t: f64) -> f64 {
        let interval = self.interval_seconds();
        let offset = self.offset_seconds();
        let k = ((t - offset) / interval).floor() + 1.0;
        let exit = k.max(0.0) * interval + offset;
        if exit <= t {
            exit + interval
        } else {
            exit
        }
    }
}

/// Distributes `n` stressmark offsets evenly within a maximum
/// misalignment window, in ticks — the paper's Fig. 10 methodology: "for
/// a maximum allowed misalignment of 125 ns, 2 stressmarks are
/// synchronized at t = 0 ns, 2 at t = 62.5 ns and 2 at t = 125 ns".
pub fn spread_offsets(n: usize, max_misalignment_ticks: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let slots = max_misalignment_ticks + 1;
    (0..n)
        .map(|i| {
            // Round-robin over the available tick slots, filling evenly.
            (i as u64 * slots) / n as u64
        })
        .map(|t| t.min(max_misalignment_ticks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_conversions_round_trip() {
        assert_eq!(ticks_of(62.5e-9), 1);
        assert_eq!(ticks_of(4e-3), 64_000);
        assert!((seconds_of(64_000) - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn next_exit_lands_on_offset_grid() {
        let sync = TodSync::every_4ms(2);
        let exit = sync.next_exit_after(0.0);
        let expected = 2.0 * 62.5e-9;
        assert!((exit - expected).abs() < 1e-12, "exit = {exit}");
        let exit2 = sync.next_exit_after(exit);
        assert!((exit2 - (4e-3 + expected)).abs() < 1e-12);
    }

    #[test]
    fn zero_offset_exits_at_boundaries() {
        let sync = TodSync::every_4ms(0);
        let exit = sync.next_exit_after(1e-3);
        assert!((exit - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn spread_offsets_match_paper_example() {
        // 6 stressmarks over 125 ns (2 ticks): 2 at 0, 2 at 1, 2 at 2.
        let offs = spread_offsets(6, 2);
        assert_eq!(offs, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn spread_offsets_zero_window_aligns_all() {
        assert_eq!(spread_offsets(4, 0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn spread_offsets_within_bounds() {
        for n in 1..=6 {
            for w in 0..12 {
                let offs = spread_offsets(n, w);
                assert_eq!(offs.len(), n);
                assert!(offs.iter().all(|&o| o <= w));
            }
        }
    }
}
