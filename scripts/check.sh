#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q

echo "All checks passed."
