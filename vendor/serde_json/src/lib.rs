//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON over the vendored `serde` value tree. The
//! subset mirrors what this workspace uses: [`to_string`],
//! [`to_string_pretty`] (two-space indent, like serde_json) and
//! [`from_str`]. Non-finite floats print as `null`; floats always carry
//! a decimal point or exponent so integers and floats stay
//! distinguishable on re-parse.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for workspace types; the `Result` mirrors serde_json's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON with two-space indentation.
///
/// # Errors
///
/// Never fails for workspace types; the `Result` mirrors serde_json's
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.len(), indent, depth, '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(entries) => {
            write_seq(out, entries.len(), indent, depth, '{', '}', |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    // `{}` prints the shortest representation that round-trips; force a
    // trailing `.0` so the token re-parses as a float, as serde_json does.
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("z\"like\n".to_string())),
            ("count".to_string(), Value::U64(1301)),
            ("bias".to_string(), Value::F64(-0.25)),
            ("flag".to_string(), Value::Bool(true)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::F64(1.0), Value::Null, Value::I64(-3)]),
            ),
        ]);
        #[derive(Debug)]
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl serde::Deserialize for Raw {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(Raw(v.clone()))
            }
        }
        for text in [
            to_string(&Raw(v.clone())).unwrap(),
            to_string_pretty(&Raw(v.clone())).unwrap(),
        ] {
            let back: Raw = from_str(&text).unwrap();
            assert_eq!(back.0, v);
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut s = String::new();
        write_f64(&mut s, 1.0);
        assert_eq!(s, "1.0");
        let mut s = String::new();
        write_f64(&mut s, 2.5e-6);
        assert!(s.contains(['e', '.']), "{s}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<f64>("1.5 extra").is_err());
        assert!(from_str::<f64>("[1,").is_err());
    }
}
