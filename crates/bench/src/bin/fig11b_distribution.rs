//! Regenerates paper Fig. 11b: average noise grouped by workload
//! distribution (max/medium mix).
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig11b");
}
