//! Regenerates paper Table I: the first and last five instructions of
//! the 1301-instruction EPI profile.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("table1");
}
