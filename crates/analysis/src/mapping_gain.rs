//! Noise-aware workload-mapping opportunity (paper Fig. 15).
//!
//! For every number of workloads 0–6, evaluate all core assignments and
//! compare the best (lowest worst-case noise) against the worst mapping.

use crate::experiment::Experiment;
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::mapping::{MappingEvaluation, NoiseAwareMapper};
use voltnoise_system::noise::{NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;
use voltnoise_system::workload::{mappings_of, Distribution, Mapping, WorkloadKind};

/// Mapping-gain study configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingGainConfig {
    /// Stimulus frequency of the stressmarks.
    pub stim_freq_hz: f64,
    /// Workload counts to evaluate.
    pub counts: Vec<usize>,
    /// Simulation window per run.
    pub window_s: Option<f64>,
}

impl MappingGainConfig {
    /// Paper-style: 0 through 6 workloads, all mappings (64 runs).
    pub fn paper() -> Self {
        MappingGainConfig {
            stim_freq_hz: 2.5e6,
            counts: (0..=NUM_CORES).collect(),
            window_s: Some(50e-6),
        }
    }

    /// Reduced for tests.
    pub fn reduced() -> Self {
        MappingGainConfig {
            stim_freq_hz: 2.5e6,
            counts: vec![2, 3],
            window_s: Some(35e-6),
        }
    }
}

/// One workload-count row of Fig. 15.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingGainPoint {
    /// Number of scheduled workloads.
    pub workloads: usize,
    /// Worst-case noise of the best mapping.
    pub best_pct: f64,
    /// Worst-case noise of the worst mapping.
    pub worst_pct: f64,
    /// Cores of the best mapping.
    pub best_cores: Vec<usize>,
    /// Cores of the worst mapping.
    pub worst_cores: Vec<usize>,
}

impl MappingGainPoint {
    /// The noise-reduction opportunity (secondary axis of Fig. 15).
    pub fn gain_pct(&self) -> f64 {
        self.worst_pct - self.best_pct
    }
}

/// Result of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingGainResult {
    /// One point per workload count.
    pub points: Vec<MappingGainPoint>,
}

impl MappingGainResult {
    /// Renders the Fig. 15 rows.
    pub fn render(&self) -> String {
        let mut t =
            Table::new("Fig. 15: worst-case noise of best vs worst mapping per workload count");
        t.columns([
            "workloads",
            "best_pct",
            "worst_pct",
            "gain_pct",
            "best_cores",
            "worst_cores",
        ]);
        for p in &self.points {
            t.row([
                p.workloads.to_string(),
                format!("{:.1}", p.best_pct),
                format!("{:.1}", p.worst_pct),
                format!("{:.1}", p.gain_pct()),
                format!("{:?}", p.best_cores),
                format!("{:?}", p.worst_cores),
            ]);
        }
        t.finish()
    }
}

fn cores_of(m: &Mapping) -> Vec<usize> {
    m.iter()
        .enumerate()
        .filter(|(_, w)| **w != WorkloadKind::Idle)
        .map(|(i, _)| i)
        .collect()
}

/// The Fig. 15 mapping-opportunity experiment.
#[derive(Debug, Clone)]
pub struct MappingGainExperiment {
    /// The study grid.
    pub cfg: MappingGainConfig,
}

impl MappingGainExperiment {
    fn run_cfg(&self) -> NoiseRunConfig {
        NoiseRunConfig {
            window_s: self.cfg.window_s,
            record_traces: false,
            seed: 1,
            ..NoiseRunConfig::default()
        }
    }

    /// The deterministic plan: `(workload count, mapping)` in run order.
    fn plan(&self) -> Vec<(usize, Mapping)> {
        let mut out = Vec::new();
        for &k in &self.cfg.counts {
            let dist = Distribution {
                max_count: k,
                medium_count: 0,
            };
            for mapping in mappings_of(&dist) {
                out.push((k, mapping));
            }
        }
        out
    }
}

impl Experiment for MappingGainExperiment {
    type Artifact = MappingGainResult;

    fn id(&self) -> &'static str {
        "fig15"
    }

    fn title(&self) -> &'static str {
        "Fig. 15: noise-aware mapping opportunity"
    }

    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let batch = SimJob::batch(tb.chip());
        let run_cfg = self.run_cfg();
        Ok(self
            .plan()
            .iter()
            .map(|(_, mapping)| {
                batch.job(
                    tb.loads_of_mapping(
                        mapping,
                        self.cfg.stim_freq_hz,
                        Some(SyncSpec::paper_default()),
                    ),
                    run_cfg.clone(),
                )
            })
            .collect())
    }

    fn assemble(
        &self,
        _tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<MappingGainResult, PdnError> {
        let evals: Vec<MappingEvaluation> = self
            .plan()
            .iter()
            .zip(outcomes)
            .map(|((_, mapping), out)| MappingEvaluation::from_outcome(mapping, out))
            .collect();
        let mapper = NoiseAwareMapper::from_measurements(evals);
        let mut points = Vec::new();
        for &k in &self.cfg.counts {
            let (Some(best), Some(worst)) = (mapper.best_for(k), mapper.worst_for(k)) else {
                continue; // no mapping of this count was evaluated
            };
            points.push(MappingGainPoint {
                workloads: k,
                best_pct: best.worst_pct,
                worst_pct: worst.worst_pct,
                best_cores: cores_of(&best.mapping),
                worst_cores: cores_of(&worst.mapping),
            });
        }
        Ok(MappingGainResult { points })
    }

    fn render(&self, artifact: &MappingGainResult) -> String {
        artifact.render()
    }
}

/// Runs the mapping-gain study on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_mapping_gain(
    tb: &Testbed,
    cfg: &MappingGainConfig,
) -> Result<MappingGainResult, PdnError> {
    MappingGainExperiment { cfg: cfg.clone() }.run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_counts_offer_mapping_gain() {
        let tb = Testbed::fast();
        let res = run_mapping_gain(tb, &MappingGainConfig::reduced()).unwrap();
        for p in &res.points {
            assert!(p.worst_pct >= p.best_pct);
            // Paper: 2-4 workloads offer a couple of %p2p points.
            assert!(
                p.gain_pct() > 0.5,
                "k={} gain {:.2}",
                p.workloads,
                p.gain_pct()
            );
            assert_eq!(p.best_cores.len(), p.workloads);
        }
    }

    #[test]
    fn render_includes_counts() {
        let tb = Testbed::fast();
        let res = run_mapping_gain(
            tb,
            &MappingGainConfig {
                counts: vec![2],
                ..MappingGainConfig::reduced()
            },
        )
        .unwrap();
        assert!(res.render().contains("2,"));
    }
}
