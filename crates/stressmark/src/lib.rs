#![warn(missing_docs)]

//! # voltnoise-stressmark
//!
//! The **systematic dI/dt stressmark generation methodology** — the
//! primary contribution of *"Voltage Noise in Multi-core Processors"*
//! (Bertran et al., MICRO 2014), reimplemented over the `voltnoise-uarch`
//! core model.
//!
//! The pipeline mirrors the paper's Figs. 4–6:
//!
//! 1. EPI profiling (provided by [`voltnoise_uarch::epi`]);
//! 2. [`candidates`] — categorize by unit/issue class, keep the nine
//!    strongest candidates;
//! 3. [`filter`] — enumerate all 9^6 = 531 441 length-six combinations
//!    and drop the ones the microarchitecture cannot run at full dispatch;
//! 4. [`search`] — IPC-filter to the top thousand, power-evaluate,
//!    select the maximum-power sequence; derive minimum- and medium-power
//!    sequences;
//! 5. [`stressmark`] — compose high/low sequences into parameterizable
//!    dI/dt stressmarks: stimulus frequency, ΔI amount, number of
//!    consecutive events, and TOD-based synchronization/misalignment.
//!
//! # Examples
//!
//! ```no_run
//! use voltnoise_stressmark::prelude::*;
//! use voltnoise_uarch::{epi::EpiProfile, isa::Isa, pipeline::CoreConfig};
//!
//! let isa = Isa::zlike();
//! let core = CoreConfig::default();
//! let profile = EpiProfile::generate(&isa, &core);
//! let outcome = find_max_power_sequence(&isa, &core, &profile, &SearchConfig::default());
//! let min = min_power_sequence(&isa, &core, &profile);
//! let spec = StressmarkSpec {
//!     name: "max_didt_2mhz".into(),
//!     high_body: outcome.best.body.clone(),
//!     low_body: min.body.clone(),
//!     stim_freq_hz: 2e6,
//!     duty: 0.5,
//!     sync: Some(SyncSpec::paper_default()),
//! };
//! let sm = compile(&isa, &core, spec).unwrap();
//! assert!(sm.delta_i() > 0.0);
//! ```

pub mod candidates;
pub mod filter;
pub mod genetic;
pub mod search;
pub mod stressmark;

pub use candidates::{select_candidates, Candidate, Category, NUM_CANDIDATES};
pub use filter::{filter_combinations, microarch_filter, Combinations, FilterConfig, SEQ_LEN};
pub use genetic::{ga_search, GaConfig, GaOutcome};
pub use search::{
    find_max_power_sequence, find_sequence_with_power, min_power_sequence, SearchConfig,
    SearchOutcome, SequenceEval,
};
pub use stressmark::{
    compile, CompiledStressmark, StressmarkError, StressmarkSpec, SyncSpec, SYNC_INTERVAL_SECONDS,
    TOD_TICK_SECONDS,
};

/// Convenient star-import surface.
pub mod prelude {
    pub use crate::candidates::{select_candidates, Candidate};
    pub use crate::search::{
        find_max_power_sequence, find_sequence_with_power, min_power_sequence, SearchConfig,
        SearchOutcome, SequenceEval,
    };
    pub use crate::stressmark::{compile, CompiledStressmark, StressmarkSpec, SyncSpec};
}
