//! The noise experiment engine: run workloads on the chip, simulate the
//! PDN, and read the per-core skitters.
//!
//! Voltage seen by a core is modeled as two superposed components:
//!
//! 1. **Mid-frequency response** — the PDN transient solution to the
//!    stressmark current square waves (board/package/die dynamics,
//!    resonances, inter-core propagation). Simulated by
//!    [`voltnoise_pdn::transient`].
//! 2. **Cycle-microstructure ripple** — sub-nanosecond supply ripple from
//!    the per-cycle current structure of the running code, which
//!    superposes coherently across cores only under cycle-accurate TOD
//!    alignment (see [`crate::chip::HfNoiseParams`]). Computed
//!    analytically and added to the simulated extrema.

use crate::chip::{Chip, HfNoiseParams};
use crate::site::SiteVec;
use crate::telemetry::{PhaseTimes, SolverCounters};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use voltnoise_measure::power::{PowerMeter, PowerReading};
use voltnoise_measure::scope::ScopeTrace;
use voltnoise_measure::skitter::{Skitter, SkitterReading};
use voltnoise_pdn::netlist::{Netlist, NodeId};
use voltnoise_pdn::rom::{solve_step_rom, RomStepProblem};
use voltnoise_pdn::topology::{core_domain, DrawerParams, DrawerPdn, NUM_CORES};
use voltnoise_pdn::transient::{Drive, Probe, TransientConfig, TransientSolver};
use voltnoise_pdn::waveform::{CoreWaveform, MultiCoreDrive, StressWaveform, WaveMode};
use voltnoise_pdn::{PdnError, SolveSpec};
use voltnoise_stressmark::CompiledStressmark;

/// Deterministic per-core period skew (ppm) of free-running stressmarks:
/// unsynchronized copies of the same loop drift slowly relative to each
/// other on real machines.
const CORE_SKEW_PPM: [f64; NUM_CORES] = [35.0, -28.0, 55.0, -48.0, 18.0, -12.0];

/// Rise/fall time of a core's current transition: roughly the pipeline
/// fill/drain time.
const EDGE_RISE_S: f64 = 2e-9;

/// Cycle-alignment tolerance for coherent superposition: one core clock
/// cycle at 5.5 GHz.
const COHERENCE_WINDOW_S: f64 = 0.2e-9;

/// Pipeline power-state transition time: the serializing low-power
/// sequence needs the pipeline to drain and refill (~tens of cycles).
/// Stimulus phases shorter than this cannot develop the full ΔI —
/// "the stimulus frequency is too high to generate ΔI events" (paper
/// Fig. 12 at 100 MHz).
const TRANSITION_TIME_S: f64 = 10e-9;

/// ΔI attenuation for ultra-fast stimulus: ≈1 below ~15 MHz, rolling off
/// as the phase duration approaches the pipeline transition time.
fn transition_attenuation(sm: &CompiledStressmark) -> f64 {
    let period = 1.0 / sm.spec.stim_freq_hz;
    let half = period * sm.spec.duty.min(1.0 - sm.spec.duty);
    half * half / (half * half + TRANSITION_TIME_S * TRANSITION_TIME_S)
}

/// True when a nominally synchronized stressmark is *effectively*
/// unaligned: when one ΔI event takes longer than the synchronization
/// interval, the copies exit their spin loops at different interval
/// boundaries (paper footnote 6 on the 1 Hz point of Fig. 12).
fn sync_is_effective(sm: &CompiledStressmark) -> bool {
    match &sm.spec.sync {
        Some(sync) => 1.0 / sm.spec.stim_freq_hz < sync.interval_s,
        None => false,
    }
}

/// The workload running on one core.
#[derive(Debug, Clone)]
pub enum CoreLoad {
    /// Core idles at its static current.
    Idle,
    /// Core runs a compiled dI/dt stressmark (synchronized when its spec
    /// carries a [`voltnoise_stressmark::SyncSpec`], free-running
    /// otherwise).
    Stressmark(CompiledStressmark),
}

impl CoreLoad {
    /// ΔI of the load, amperes (zero when idle).
    pub fn delta_i(&self) -> f64 {
        match self {
            CoreLoad::Idle => 0.0,
            CoreLoad::Stressmark(sm) => sm.delta_i(),
        }
    }
}

/// Per-run options of the noise engine.
#[derive(Debug, Clone)]
pub struct NoiseRunConfig {
    /// Simulated window; `None` sizes it from the stimulus periods.
    pub window_s: Option<f64>,
    /// Record per-core oscilloscope traces.
    pub record_traces: bool,
    /// Seed of the random free-run phases.
    pub seed: u64,
    /// Per-job step budget: the transient solve fails with
    /// [`PdnError::BudgetExceeded`] when it would need more than this
    /// many accepted steps. Part of the job's content key — a budgeted
    /// job and an unbudgeted one are different experiments. `None`
    /// (default) disables the budget.
    pub max_steps: Option<usize>,
    /// Cooperative cancellation token polled by the solver between
    /// accepted steps. *Not* part of the content key: an un-cancelled
    /// token never changes results, and a cancelled run produces no
    /// result at all.
    pub cancel: Option<voltnoise_pdn::CancelToken>,
    /// Solve-backend specification. The `backend` field selects the
    /// transient factorization backend; the chip-scale path ignores any
    /// `rom` request (the reduced-order macromodel is a drawer-scale
    /// tool — see [`DrawerStepConfig::solve`]) but the field is still
    /// part of the job's content key, so a spec change never aliases a
    /// cached result.
    pub solve: SolveSpec,
}

impl Default for NoiseRunConfig {
    fn default() -> Self {
        NoiseRunConfig {
            window_s: None,
            record_traces: false,
            seed: 1,
            max_steps: None,
            cancel: None,
            solve: SolveSpec::full(),
        }
    }
}

/// Outcome of one noise run.
///
/// Serializable so that determinism can be checked end to end: the
/// engine's parallel-equals-serial invariant compares JSON renderings of
/// whole outcomes.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NoiseOutcome {
    /// Per-site sticky skitter readings (one per site, ordinal order).
    pub readings: SiteVec<SkitterReading>,
    /// Per-site %p2p noise (the paper's headline metric).
    pub pct_p2p: SiteVec<f64>,
    /// Per-site minimum effective supply voltage over the run.
    pub v_min: SiteVec<f64>,
    /// Per-site maximum effective supply voltage over the run.
    pub v_max: SiteVec<f64>,
    /// Input-rail power reading of the whole scenario (chip or rack).
    pub chip_power: PowerReading,
    /// Per-site voltage traces when requested.
    pub traces: Option<Vec<ScopeTrace>>,
    /// Transient solver steps taken (cost accounting).
    pub steps: usize,
}

impl NoiseOutcome {
    /// First non-finite numeric field, as `(index, value)`: indices
    /// `0..num_sites` report the site whose `pct_p2p`/`v_min`/`v_max`
    /// went bad, `num_sites` reports the rail power reading. Returns
    /// `None` for a healthy outcome.
    ///
    /// The engine uses this as its last line of defense: an outcome
    /// failing the check is converted into [`PdnError::Diverged`] and is
    /// never cached, so one bad solve cannot contaminate memoized
    /// campaigns.
    pub fn first_non_finite(&self) -> Option<(usize, f64)> {
        for i in 0..self.pct_p2p.len() {
            for v in [self.pct_p2p[i], self.v_min[i], self.v_max[i]] {
                if !v.is_finite() {
                    return Some((i, v));
                }
            }
        }
        if !self.chip_power.watts().is_finite() {
            return Some((self.pct_p2p.len(), self.chip_power.watts()));
        }
        None
    }

    /// Number of sites this outcome covers ([`NUM_CORES`] for chip-scale
    /// runs).
    pub fn num_sites(&self) -> usize {
        self.pct_p2p.len()
    }

    /// Highest per-site noise and the site ordinal that saw it.
    ///
    /// # Panics
    ///
    /// Panics on an outcome with zero sites (never produced by the
    /// kernel, which rejects empty load sets).
    pub fn worst(&self) -> (usize, f64) {
        // Manual fold (ties keep the later site, like `max_by` did).
        let mut worst = (0, self.pct_p2p[0]);
        for (i, &p) in self.pct_p2p.iter().enumerate().skip(1) {
            if p.total_cmp(&worst.1).is_ge() {
                worst = (i, p);
            }
        }
        worst
    }

    /// Maximum %p2p across sites.
    pub fn max_pct_p2p(&self) -> f64 {
        self.worst().1
    }
}

fn waveform_of(
    load: &CoreLoad,
    skew_ppm: f64,
    idle_current: f64,
    rng: &mut SmallRng,
) -> CoreWaveform {
    match load {
        CoreLoad::Idle => CoreWaveform::Constant(idle_current),
        CoreLoad::Stressmark(sm) => {
            let period = 1.0 / sm.spec.stim_freq_hz;
            let mode = match &sm.spec.sync {
                Some(sync) if sync_is_effective(sm) => WaveMode::Synced {
                    interval: sync.interval_s,
                    offset: sync.offset_seconds(),
                    events: sync.events,
                },
                // Sync whose event period exceeds the interval degenerates
                // to misaligned free-running copies (paper footnote 6).
                _ => WaveMode::FreeRun {
                    phase: rng.gen::<f64>() * period,
                    period_skew_ppm: skew_ppm,
                },
            };
            // Phases too short for the pipeline to change power state
            // pinch the realized ΔI toward the mean.
            let a = transition_attenuation(sm);
            let mid = (sm.i_high_a + sm.i_low_a) / 2.0;
            let half_swing = (sm.i_high_a - sm.i_low_a) / 2.0 * a;
            CoreWaveform::Stress(StressWaveform {
                i_low: mid - half_swing,
                i_high: mid + half_swing,
                i_idle: sm.i_idle_a,
                stim_period: period,
                duty: sm.spec.duty,
                rise_time: EDGE_RISE_S,
                mode,
            })
        }
    }
}

/// Cycle-coherence key of a load: two cores superpose coherently when
/// both run TOD-synchronized stressmarks with the same stimulus frequency
/// and offsets equal to within a core cycle.
fn coherence_key(load: &CoreLoad) -> Option<(u64, u64)> {
    match load {
        CoreLoad::Stressmark(sm) if sync_is_effective(sm) => sm.spec.sync.as_ref().map(|sync| {
            let slot = (sync.offset_seconds() / COHERENCE_WINDOW_S).round() as u64;
            let freq_key = sm.spec.stim_freq_hz.to_bits();
            (slot, freq_key)
        }),
        _ => None,
    }
}

/// Per-site cycle-microstructure ripple amplitude (volts).
///
/// The coupled impedances (`z_local`/`z_shared`, the domain weights) are
/// properties of one chip's on-die network, so coupling is chip-local:
/// sites on different chips of a rack never exchange HF ripple (the
/// shared board path is far too inductive at cycle frequencies). For a
/// single chip (`cores_per_chip == loads.len()`) this reduces to exactly
/// the original all-pairs loop, preserving chip figures bit for bit.
fn hf_amplitudes(hf: &HfNoiseParams, cores_per_chip: usize, loads: &[CoreLoad]) -> SiteVec<f64> {
    let ripple: Vec<f64> = loads
        .iter()
        .map(|l| {
            let atten = match l {
                CoreLoad::Stressmark(sm) => transition_attenuation(sm),
                CoreLoad::Idle => 1.0,
            };
            hf.ripple_fraction * l.delta_i() * atten
        })
        .collect();
    let keys: Vec<Option<(u64, u64)>> = loads.iter().map(coherence_key).collect();
    SiteVec::from_fn(loads.len(), |i| {
        let chip_base = (i / cores_per_chip) * cores_per_chip;
        let mut coherent = 0.0f64;
        let mut incoherent_sq = 0.0f64;
        for j in chip_base..(chip_base + cores_per_chip).min(loads.len()) {
            if j == i || ripple[j] == 0.0 {
                continue;
            }
            let w = if core_domain(i - chip_base) == core_domain(j - chip_base) {
                hf.same_domain_coupling
            } else {
                hf.cross_domain_coupling
            };
            let contribution = w * ripple[j];
            let aligned = match (&keys[i], &keys[j]) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            if aligned {
                coherent += contribution;
            } else {
                incoherent_sq += contribution * contribution;
            }
        }
        hf.z_local_ohm * ripple[i] + hf.z_shared_ohm * (coherent + incoherent_sq.sqrt())
    })
}

/// Sizes the transient window and steps from the active stimulus periods.
fn transient_config(loads: &[CoreLoad], cfg: &NoiseRunConfig) -> TransientConfig {
    let periods: Vec<f64> = loads
        .iter()
        .filter_map(|l| match l {
            CoreLoad::Stressmark(sm) => Some(1.0 / sm.spec.stim_freq_hz),
            CoreLoad::Idle => None,
        })
        .collect();
    let t_max = periods.iter().copied().fold(0.0f64, f64::max);
    let t_min = periods.iter().copied().fold(f64::INFINITY, f64::min);
    let window = cfg
        .window_s
        .unwrap_or_else(|| (6.0 * t_max).clamp(80e-6, 4e-3));
    let any_synced = loads
        .iter()
        .any(|l| matches!(l, CoreLoad::Stressmark(sm) if sm.spec.sync.is_some()));
    let mut tc = TransientConfig::new(window);
    tc.h_coarse = if t_min.is_finite() {
        (t_min / 200.0).clamp(4e-9, 40e-9)
    } else {
        40e-9
    };
    tc.h_fine = 0.5e-9;
    tc.refine_pre = 2e-9;
    tc.refine_post = 25e-9;
    // Synchronized bursts fire right after t = 0; the burst and its first
    // droop are the measurement, so nothing may be skipped. Free-running
    // workloads start from a mid-pattern DC point instead, where a short
    // settle hides the artificial initial condition.
    tc.settle = if any_synced {
        0.0
    } else {
        (2.0 * t_max).min(window * 0.25)
    };
    tc.record_decimation = cfg
        .record_traces
        .then(|| 1.max((window / tc.h_coarse) as usize / 4000));
    tc.max_steps = cfg.max_steps;
    tc.cancel = cfg.cancel.clone();
    tc
}

/// Solver telemetry of one noise run: exact work counters (always) plus
/// wall-clock phase times (only when tracing is enabled — all zeros
/// otherwise).
///
/// Deliberately a separate value from [`NoiseOutcome`]: outcomes are
/// content (cached, stored, compared bitwise), telemetry is observation.
/// Keeping them apart is what lets a cached result stay byte-identical
/// whether or not anyone measured the solve that produced it.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveTelemetry {
    /// Deterministic solver work counters.
    pub counters: SolverCounters,
    /// Wall-clock per-phase times (traced runs only).
    pub phase: PhaseTimes,
}

/// A scenario's electrical view, as the noise kernel consumes it: the
/// netlist to solve, one probe node and one skitter per site, the HF
/// ripple parameters and the rail voltage. Built from a [`Chip`] (the
/// 1×1×[`NUM_CORES`] case) or from a [`crate::rack::RackScenario`]; the
/// kernel itself is topology-blind.
pub(crate) struct ScenarioView<'a> {
    /// Netlist of the whole scenario.
    pub netlist: &'a Netlist,
    /// Per-site core supply node, site-ordinal order (matching the
    /// netlist's drive-slot order).
    pub core_nodes: Vec<NodeId>,
    /// Per-site skitter, site-ordinal order.
    pub skitters: Vec<&'a Skitter>,
    /// Cycle-microstructure ripple parameters (chip-local coupling).
    pub hf: &'a HfNoiseParams,
    /// Nominal rail voltage (power accounting).
    pub v_nom: f64,
    /// Static current of an idle core, amperes.
    pub idle_current: f64,
    /// Cores per chip (the HF coupling block size).
    pub cores_per_chip: usize,
}

impl<'a> ScenarioView<'a> {
    /// The chip-scale view: every pre-rack experiment reduces to this.
    pub fn of_chip(chip: &'a Chip) -> ScenarioView<'a> {
        ScenarioView {
            netlist: chip.pdn().netlist(),
            core_nodes: (0..NUM_CORES).map(|i| chip.pdn().core_node(i)).collect(),
            skitters: (0..NUM_CORES).map(|i| chip.skitter(i)).collect(),
            hf: &chip.config().hf,
            v_nom: chip.v_nom(),
            idle_current: chip.config().core.static_power_w / chip.config().core.v_nom,
            cores_per_chip: NUM_CORES,
        }
    }
}

/// Runs one noise experiment: simulate the PDN under the given per-core
/// loads and return skitter readings, extrema, chip power and optional
/// traces. `loads` must carry exactly [`NUM_CORES`] entries (the chip's
/// site count).
///
/// # Errors
///
/// Returns [`PdnError`] when the PDN solve fails (should not happen for
/// chips built by [`Chip::new`]) or [`PdnError::DimensionMismatch`] when
/// the load count does not match the chip's site count.
pub fn run_noise(
    chip: &Chip,
    loads: &[CoreLoad],
    cfg: &NoiseRunConfig,
) -> Result<NoiseOutcome, PdnError> {
    run_noise_instrumented(chip, loads, cfg).map(|(outcome, _)| outcome)
}

/// [`run_noise`] plus the solve's telemetry.
///
/// Counters are collected unconditionally (they are integer tallies the
/// solver maintains anyway); phase wall-clock timing is enabled only
/// when tracing is on ([`crate::telemetry::trace_enabled`]). The outcome
/// is identical to what [`run_noise`] returns — telemetry rides
/// alongside, never inside.
///
/// # Errors
///
/// Returns [`PdnError`] when the PDN solve fails.
pub fn run_noise_instrumented(
    chip: &Chip,
    loads: &[CoreLoad],
    cfg: &NoiseRunConfig,
) -> Result<(NoiseOutcome, SolveTelemetry), PdnError> {
    run_view_noise_instrumented(&ScenarioView::of_chip(chip), loads, cfg)
}

/// The topology-blind noise kernel: one transient solve of `view`'s
/// netlist under per-site `loads`, HF ripple superposed per chip block,
/// one skitter reading per site.
///
/// Everything byte-identity-critical lives here once, for every
/// topology: the RNG is consumed in site-ordinal order, probes are the
/// site core nodes followed by the rail source current, and the per-site
/// arithmetic is performed in ordinal order — so chip-scale runs through
/// this kernel are bit-for-bit the runs the pre-rack code produced.
pub(crate) fn run_view_noise_instrumented(
    view: &ScenarioView<'_>,
    loads: &[CoreLoad],
    cfg: &NoiseRunConfig,
) -> Result<(NoiseOutcome, SolveTelemetry), PdnError> {
    let n = view.core_nodes.len();
    if loads.len() != n {
        return Err(PdnError::DimensionMismatch {
            expected: n,
            actual: loads.len(),
        });
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let waves: Vec<CoreWaveform> = loads
        .iter()
        .enumerate()
        .map(|(i, l)| {
            // Free-run period skew repeats per chip: a site's drift is a
            // property of its in-chip core slot.
            let skew = CORE_SKEW_PPM[i % view.cores_per_chip % NUM_CORES];
            waveform_of(l, skew, view.idle_current, &mut rng)
        })
        .collect();
    let drive = MultiCoreDrive::new(waves);

    let mut tc = transient_config(loads, cfg);
    tc.collect_phase_times = crate::telemetry::trace_enabled();
    let mut solver = TransientSolver::with_backend(view.netlist, cfg.solve.backend)?;
    let mut probes: Vec<Probe> = view
        .core_nodes
        .iter()
        .map(|&node| Probe::NodeVoltage(node))
        .collect();
    probes.push(Probe::SourceCurrent(0));
    let result = solver.run(&drive, &probes, &tc)?;

    let hf = hf_amplitudes(view.hf, view.cores_per_chip, loads);
    let mut readings = SiteVec::from_elem(
        SkitterReading {
            min_tap: 0,
            max_tap: 0,
            taps: 129,
            samples: 0,
        },
        n,
    );
    let mut pct = SiteVec::from_elem(0.0, n);
    let mut v_min = SiteVec::from_elem(0.0, n);
    let mut v_max = SiteVec::from_elem(0.0, n);
    let asym = view.hf.droop_asymmetry;
    for i in 0..n {
        let st = &result.stats[i];
        v_min[i] = st.min - hf[i] * asym;
        v_max[i] = st.max + hf[i] * (1.0 - asym);
        readings[i] = view.skitters[i].measure_extremes(v_min[i], v_max[i]);
        pct[i] = readings[i].pct_p2p();
    }

    let rail_current = result.stats[n].mean.abs();
    let chip_power = PowerMeter::new().read(view.v_nom, rail_current);

    let traces = if cfg.record_traces {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            // The solver records strictly increasing times, so this only
            // fails on a solver bug — surfaced as a typed error rather
            // than a panic so a campaign records it like any other fault.
            out.push(
                ScopeTrace::new(result.times.clone(), result.traces[i].clone()).map_err(|e| {
                    PdnError::InvalidTimebase {
                        reason: format!("recorded trace rejected: {e}"),
                    }
                })?,
            );
        }
        Some(out)
    } else {
        None
    };

    let outcome = NoiseOutcome {
        readings,
        pct_p2p: pct,
        v_min,
        v_max,
        chip_power,
        traces,
        steps: result.steps,
    };
    // Finite-output guard: the transient solver already aborts on
    // divergence, but the analytic HF ripple model and the skitter
    // arithmetic run outside it. Nothing non-finite may escape the
    // kernel — downstream statistics silently absorb NaN otherwise.
    if let Some((node, value)) = outcome.first_non_finite() {
        return Err(PdnError::Diverged {
            t: tc.t_end,
            node,
            value,
        });
    }
    let telemetry = SolveTelemetry {
        counters: result.counters,
        phase: result.phase_times,
    };
    Ok((outcome, telemetry))
}

/// Content-keyed configuration of one drawer-scale step experiment: a ΔI
/// step on one core of one chip of a multi-chip drawer, with every other
/// core idling.
///
/// Every field is part of the experiment's content — the engine's drawer
/// memo keys on the canonical JSON rendering of this struct, so two
/// configs that serialize identically share one solve.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DrawerStepConfig {
    /// Drawer topology parameters.
    pub drawer: DrawerParams,
    /// Chip receiving the step.
    pub source_chip: usize,
    /// Core (on `source_chip`) receiving the step.
    pub source_core: usize,
    /// Step amplitude, amperes.
    pub step_amps: f64,
    /// Static current every core idles at, amperes.
    pub idle_amps: f64,
    /// Step time, seconds after the window start.
    pub t0_s: f64,
    /// Simulated window, seconds.
    pub window_s: f64,
    /// Solve-backend specification. `rom: Some(..)` routes the solve
    /// through the reduced-order macromodel
    /// ([`voltnoise_pdn::rom::solve_step_rom`]) with the given error
    /// budget; the default full-order spec is the byte-identity
    /// baseline.
    pub solve: SolveSpec,
}

/// Hand-written deserialization so `solve` defaults when absent —
/// drawer configurations serialized before the solve spec existed must
/// keep parsing (the vendored serde derive has no `#[serde(default)]`).
impl serde::Deserialize for DrawerStepConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for DrawerStepConfig"))?;
        let solve = match obj.iter().find(|(k, _)| k == "solve") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => SolveSpec::full(),
        };
        Ok(DrawerStepConfig {
            drawer: serde::field(obj, "drawer")?,
            source_chip: serde::field(obj, "source_chip")?,
            source_core: serde::field(obj, "source_core")?,
            step_amps: serde::field(obj, "step_amps")?,
            idle_amps: serde::field(obj, "idle_amps")?,
            t0_s: serde::field(obj, "t0_s")?,
            window_s: serde::field(obj, "window_s")?,
            solve,
        })
    }
}

impl Default for DrawerStepConfig {
    fn default() -> Self {
        DrawerStepConfig {
            drawer: DrawerParams::default(),
            source_chip: 0,
            source_core: 0,
            step_amps: 12.0,
            idle_amps: 2.0,
            t0_s: 0.5e-6,
            window_s: 4e-6,
            solve: SolveSpec::full(),
        }
    }
}

/// Outcome of one drawer step experiment: how a ΔI event on one chip
/// propagates to every chip sharing the board PDN.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DrawerStepOutcome {
    /// Chip that received the step.
    pub source_chip: usize,
    /// Per-chip package-node droop depth, volts below the pre-step level.
    pub droop_depth_v: Vec<f64>,
    /// Per-chip time (seconds after the step) at which the package node
    /// first crossed 25 % of its final droop — the disturbance's arrival.
    pub arrival_s: Vec<f64>,
    /// Droop depth at the stepped core itself.
    pub source_core_droop_v: f64,
    /// MNA unknowns of the drawer system (records the problem scale).
    pub system_size: usize,
    /// Accepted transient steps (cost accounting).
    pub steps: usize,
    /// Reduced-order states the solve used (zero on the full-order
    /// path).
    pub rom_states: usize,
    /// Calibrated worst-case ROM probe error, volts (zero on the
    /// full-order path).
    pub rom_max_error_v: f64,
}

/// Hand-written deserialization so the ROM fields default when absent —
/// outcomes serialized before the reduced-order path existed must keep
/// parsing (the vendored serde derive has no `#[serde(default)]`).
impl serde::Deserialize for DrawerStepOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for DrawerStepOutcome"))?;
        let rom_states = match obj.iter().find(|(k, _)| k == "rom_states") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => 0,
        };
        let rom_max_error_v = match obj.iter().find(|(k, _)| k == "rom_max_error_v") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => 0.0,
        };
        Ok(DrawerStepOutcome {
            source_chip: serde::field(obj, "source_chip")?,
            droop_depth_v: serde::field(obj, "droop_depth_v")?,
            arrival_s: serde::field(obj, "arrival_s")?,
            source_core_droop_v: serde::field(obj, "source_core_droop_v")?,
            system_size: serde::field(obj, "system_size")?,
            steps: serde::field(obj, "steps")?,
            rom_states,
            rom_max_error_v,
        })
    }
}

/// Step drive over a drawer's flat drive slots: slot `s` steps by
/// `amps` at `t0`, every slot carries `idle` before and besides.
struct DrawerStepDrive {
    slot: usize,
    t0: f64,
    amps: f64,
    idle: f64,
}

impl Drive for DrawerStepDrive {
    fn currents(&self, t: f64, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.idle
                + if i == self.slot && t >= self.t0 {
                    self.amps
                } else {
                    0.0
                };
        }
    }
    fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
        if self.t0 >= t0 && self.t0 < t1 {
            out.push(self.t0);
        }
    }
}

/// Runs one drawer step experiment and returns the outcome plus solver
/// telemetry. A default-sized drawer (6 chips, 200+ unknowns) sits past
/// [`voltnoise_pdn::SPARSE_THRESHOLD`], so this is the workspace's
/// standing exercise of the sparse solver path.
///
/// # Errors
///
/// Returns [`PdnError`] on invalid parameters (chip/core out of range,
/// non-positive window, bad electrical values) or a failed solve.
pub fn run_drawer_step_instrumented(
    cfg: &DrawerStepConfig,
) -> Result<(DrawerStepOutcome, SolveTelemetry), PdnError> {
    if cfg.source_chip >= cfg.drawer.chips {
        return Err(PdnError::UnknownNode {
            node: cfg.source_chip,
        });
    }
    if cfg.source_core >= NUM_CORES {
        return Err(PdnError::UnknownNode {
            node: cfg.source_core,
        });
    }
    let drawer = DrawerPdn::build(&cfg.drawer)?;
    let drive = DrawerStepDrive {
        slot: cfg.source_chip * NUM_CORES + cfg.source_core,
        t0: cfg.t0_s,
        amps: cfg.step_amps,
        idle: cfg.idle_amps,
    };
    // Probes: each chip's package node, then the stepped core.
    let mut probes: Vec<Probe> = (0..drawer.num_chips())
        .map(|c| Probe::NodeVoltage(drawer.package_node(c)))
        .collect();
    probes.push(Probe::NodeVoltage(
        drawer.core_node(cfg.source_chip, cfg.source_core),
    ));
    // One solve, two routes: the full-order transient (the byte-identity
    // baseline) or the reduced-order macromodel when the spec carries a
    // ROM request with an error budget.
    let (times, traces, steps, rom_states, rom_max_error_v, telemetry) = match cfg.solve.rom {
        Some(rom_spec) => {
            let problem = RomStepProblem {
                netlist: drawer.netlist(),
                slot: drive.slot,
                idle_amps: cfg.idle_amps,
                delta_amps: cfg.step_amps,
                t0_s: cfg.t0_s,
                window_s: cfg.window_s,
                probes: &probes,
                h_coarse: 2e-9,
                h_fine: 0.5e-9,
            };
            let out = solve_step_rom(&problem, &rom_spec)?;
            let telemetry = SolveTelemetry {
                counters: out.counters,
                phase: PhaseTimes::default(),
            };
            (
                out.times,
                out.traces,
                out.steps,
                out.states,
                out.max_error_v,
                telemetry,
            )
        }
        None => {
            let mut tc = TransientConfig::new(cfg.window_s);
            tc.h_coarse = 2e-9;
            tc.h_fine = 0.5e-9;
            tc.settle = 0.0;
            tc.record_decimation = Some(1);
            tc.collect_phase_times = crate::telemetry::trace_enabled();
            let mut solver = TransientSolver::with_backend(drawer.netlist(), cfg.solve.backend)?;
            let res = solver.run(&drive, &probes, &tc)?;
            let telemetry = SolveTelemetry {
                counters: res.counters,
                phase: res.phase_times,
            };
            (res.times, res.traces, res.steps, 0, 0.0, telemetry)
        }
    };

    let droop_of = |trace: &[f64]| -> (f64, f64) {
        let pre_idx = times.partition_point(|&t| t < cfg.t0_s).saturating_sub(1);
        let v_pre = trace[pre_idx];
        let mut depth = 0.0f64;
        for (t, v) in times.iter().zip(trace) {
            if *t >= cfg.t0_s {
                depth = depth.max(v_pre - v);
            }
        }
        let threshold = v_pre - 0.25 * depth;
        let arrival = times
            .iter()
            .zip(trace)
            .find(|(t, v)| **t >= cfg.t0_s && **v <= threshold)
            .map(|(t, _)| t - cfg.t0_s)
            .unwrap_or(f64::INFINITY);
        (depth, arrival)
    };
    let mut droop_depth_v = Vec::with_capacity(drawer.num_chips());
    let mut arrival_s = Vec::with_capacity(drawer.num_chips());
    for trace in traces.iter().take(drawer.num_chips()) {
        let (d, a) = droop_of(trace);
        droop_depth_v.push(d);
        arrival_s.push(a);
    }
    let (source_core_droop_v, _) = droop_of(&traces[drawer.num_chips()]);

    let outcome = DrawerStepOutcome {
        source_chip: cfg.source_chip,
        droop_depth_v,
        arrival_s,
        source_core_droop_v,
        system_size: drawer.netlist().system_size(),
        steps,
        rom_states,
        rom_max_error_v,
    };
    Ok((outcome, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;

    fn loads_all(load: &CoreLoad) -> [CoreLoad; NUM_CORES] {
        std::array::from_fn(|_| load.clone())
    }

    #[test]
    fn idle_chip_reads_baseline_noise() {
        let tb = Testbed::fast();
        let out = run_noise(
            tb.chip(),
            &loads_all(&CoreLoad::Idle),
            &NoiseRunConfig {
                window_s: Some(30e-6),
                ..NoiseRunConfig::default()
            },
        )
        .unwrap();
        for p in out.pct_p2p {
            assert!(p < 6.0, "idle noise {p} too high");
        }
        // Idle chip draws roughly 6 cores of static power.
        let expected = 6.0 * tb.chip().config().core.static_power_w;
        assert!((out.chip_power.watts() - expected).abs() / expected < 0.15);
    }

    #[test]
    fn synced_stressmarks_beat_unsynced() {
        let tb = Testbed::fast();
        let unsync = loads_all(&CoreLoad::Stressmark(tb.max_stressmark(2.5e6, None)));
        let synced = loads_all(&CoreLoad::Stressmark(
            tb.max_stressmark(2.5e6, Some(voltnoise_stressmark::SyncSpec::paper_default())),
        ));
        let cfg = NoiseRunConfig {
            window_s: Some(60e-6),
            ..NoiseRunConfig::default()
        };
        let n_unsync = run_noise(tb.chip(), &unsync, &cfg).unwrap();
        let n_sync = run_noise(tb.chip(), &synced, &cfg).unwrap();
        assert!(
            n_sync.max_pct_p2p() > n_unsync.max_pct_p2p() + 8.0,
            "sync {} vs unsync {}",
            n_sync.max_pct_p2p(),
            n_unsync.max_pct_p2p()
        );
    }

    #[test]
    fn more_active_cores_more_noise() {
        let tb = Testbed::fast();
        let sm = tb.max_stressmark(2.5e6, Some(voltnoise_stressmark::SyncSpec::paper_default()));
        let cfg = NoiseRunConfig {
            window_s: Some(40e-6),
            ..NoiseRunConfig::default()
        };
        let mut one = loads_all(&CoreLoad::Idle);
        one[0] = CoreLoad::Stressmark(sm.clone());
        let all = loads_all(&CoreLoad::Stressmark(sm));
        let n1 = run_noise(tb.chip(), &one, &cfg).unwrap();
        let n6 = run_noise(tb.chip(), &all, &cfg).unwrap();
        assert!(n6.max_pct_p2p() > n1.max_pct_p2p() + 10.0);
    }

    #[test]
    fn traces_are_recorded_on_request() {
        let tb = Testbed::fast();
        let loads = loads_all(&CoreLoad::Stressmark(tb.max_stressmark(2.5e6, None)));
        let out = run_noise(
            tb.chip(),
            &loads,
            &NoiseRunConfig {
                window_s: Some(30e-6),
                record_traces: true,
                seed: 1,
                ..NoiseRunConfig::default()
            },
        )
        .unwrap();
        let traces = out.traces.unwrap();
        assert_eq!(traces.len(), NUM_CORES);
        assert!(traces[0].len() > 100);
        assert!(traces[0].peak_to_peak() > 0.0);
    }

    #[test]
    fn drawer_step_propagates_down_the_spine() {
        let cfg = DrawerStepConfig {
            window_s: 2e-6,
            ..DrawerStepConfig::default()
        };
        let (out, tel) = run_drawer_step_instrumented(&cfg).unwrap();
        assert_eq!(out.droop_depth_v.len(), cfg.drawer.chips);
        assert!(out.system_size > voltnoise_pdn::SPARSE_THRESHOLD);
        // The drawer exercises the sparse backend and reuses its
        // elimination order across refactorizations.
        assert!(tel.counters.sparse_solves > 0, "{:?}", tel.counters);
        assert!(tel.counters.pattern_reuses > 0, "{:?}", tel.counters);
        // The stepped core droops deeper than any package node, and the
        // source chip's package droops deepest of the packages.
        assert!(out.source_core_droop_v > out.droop_depth_v[0]);
        for c in 1..cfg.drawer.chips {
            assert!(
                out.droop_depth_v[0] > out.droop_depth_v[c],
                "chip {c}: source {:.6} vs remote {:.6}",
                out.droop_depth_v[0],
                out.droop_depth_v[c]
            );
            assert!(out.droop_depth_v[c] > 0.0, "chip {c} must see the event");
        }
        // The disturbance reaches farther chips no earlier.
        assert!(out.arrival_s[cfg.drawer.chips - 1] >= out.arrival_s[0]);
    }

    #[test]
    fn drawer_step_rom_tracks_full_solver_cheaply() {
        let full_cfg = DrawerStepConfig::default();
        let rom_cfg = DrawerStepConfig {
            solve: voltnoise_pdn::SolveSpec::reduced(voltnoise_pdn::RomSpec::default()),
            ..full_cfg.clone()
        };
        let (full, _) = run_drawer_step_instrumented(&full_cfg).unwrap();
        let (rom, rom_tel) = run_drawer_step_instrumented(&rom_cfg).unwrap();
        // The reduced path reports its order and calibrated error; the
        // full path reports zeros.
        assert_eq!(full.rom_states, 0);
        assert_eq!(full.rom_max_error_v, 0.0);
        assert!(rom.rom_states >= 1);
        assert!(rom.rom_max_error_v <= 1e-3, "{}", rom.rom_max_error_v);
        assert!(rom_tel.counters.rom_solves > 0);
        // Figures of merit agree within a few budgets (droop depth is a
        // difference of two probe samples, each within the budget over
        // the calibration window).
        assert!(
            (rom.source_core_droop_v - full.source_core_droop_v).abs() <= 3e-3,
            "rom {} vs full {}",
            rom.source_core_droop_v,
            full.source_core_droop_v
        );
        for c in 0..full_cfg.drawer.chips {
            assert!(
                (rom.droop_depth_v[c] - full.droop_depth_v[c]).abs() <= 3e-3,
                "chip {c}: rom {} vs full {}",
                rom.droop_depth_v[c],
                full.droop_depth_v[c]
            );
        }
        // And it is cheaper: far fewer time steps than the full run.
        assert!(
            rom.steps * 2 < full.steps,
            "rom {} vs full {} steps",
            rom.steps,
            full.steps
        );
    }

    #[test]
    fn drawer_config_without_solve_field_still_parses() {
        // A pre-solve-spec serialized config (no "solve" key) must keep
        // deserializing with the full-order default.
        let legacy = serde_json::to_string(&DrawerStepConfig::default())
            .unwrap()
            .replace(",\"solve\":{\"backend\":\"Auto\",\"rom\":null}", "");
        assert!(!legacy.contains("solve"), "{legacy}");
        let parsed: DrawerStepConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed, DrawerStepConfig::default());
    }

    #[test]
    fn drawer_step_rejects_out_of_range_sources() {
        let bad_chip = DrawerStepConfig {
            source_chip: 6,
            ..DrawerStepConfig::default()
        };
        assert!(run_drawer_step_instrumented(&bad_chip).is_err());
        let bad_core = DrawerStepConfig {
            source_core: NUM_CORES,
            ..DrawerStepConfig::default()
        };
        assert!(run_drawer_step_instrumented(&bad_core).is_err());
    }

    #[test]
    fn misaligned_offsets_lose_coherence() {
        let tb = Testbed::fast();
        let mut sm0 =
            tb.max_stressmark(2.5e6, Some(voltnoise_stressmark::SyncSpec::paper_default()));
        let aligned = loads_all(&CoreLoad::Stressmark(sm0.clone()));
        // Give each core a distinct 62.5 ns offset slot.
        let mut misaligned = loads_all(&CoreLoad::Idle);
        for (i, slot) in misaligned.iter_mut().enumerate() {
            let mut sm = sm0.clone();
            if let Some(sync) = &mut sm.spec.sync {
                sync.offset_ticks = i as u32;
            }
            *slot = CoreLoad::Stressmark(sm);
        }
        let hf_aligned = hf_amplitudes(&tb.chip().config().hf, NUM_CORES, &aligned);
        let hf_mis = hf_amplitudes(&tb.chip().config().hf, NUM_CORES, &misaligned);
        for i in 0..NUM_CORES {
            assert!(
                hf_aligned[i] > hf_mis[i] * 1.3,
                "core {i}: aligned {} vs misaligned {}",
                hf_aligned[i],
                hf_mis[i]
            );
        }
        // Keep clippy quiet about the unused mutable original.
        if let Some(sync) = &mut sm0.spec.sync {
            sync.offset_ticks = 0;
        }
    }
}
