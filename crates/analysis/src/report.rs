//! Full-evaluation report: walks the experiment registry at a chosen
//! scale on one shared [`Engine`] and assembles one text document with
//! all the paper's tables and figures.
//!
//! Because every entry runs through the same engine, overlapping
//! campaigns deduplicate: Figs. 11a, 11b and 13a share one ΔI job set,
//! and any mapping jobs repeated across Figs. 14, 15 and the §VII-B
//! study solve once.

use crate::experiment::registry;
use voltnoise_pdn::PdnError;
use voltnoise_system::engine::Engine;
use voltnoise_system::testbed::Testbed;

/// Scale at which the report is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportScale {
    /// Paper-scale configurations (minutes).
    Paper,
    /// Reduced configurations (tens of seconds).
    Reduced,
}

/// Generates the full evaluation report on a dedicated engine.
///
/// # Errors
///
/// Returns [`PdnError`] if any experiment's PDN solve fails.
pub fn full_report(tb: &Testbed, scale: ReportScale) -> Result<String, PdnError> {
    full_report_on(tb, &Engine::new(), scale)
}

/// Generates the full evaluation report on a caller-provided engine
/// (e.g. [`Engine::shared`], or a single-worker engine for determinism
/// checks).
///
/// # Errors
///
/// Returns [`PdnError`] if any experiment's PDN solve fails.
pub fn full_report_on(
    tb: &Testbed,
    engine: &Engine,
    scale: ReportScale,
) -> Result<String, PdnError> {
    let reduced = scale == ReportScale::Reduced;
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("# voltnoise — full evaluation report\n\n");
    for entry in registry().iter().filter(|e| e.in_report) {
        out.push_str(&entry.run(tb, engine, reduced)?.rendered);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_report_covers_every_artifact() {
        let tb = Testbed::fast();
        let report = full_report(tb, ReportScale::Reduced).unwrap();
        for marker in [
            "Table I", "Fig. 5", "Fig. 7a", "Fig. 7b", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11a",
            "Fig. 11b", "Fig. 12", "Fig. 13a", "Fig. 13b", "Fig. 14", "Fig. 15", "§VII-B",
        ] {
            assert!(report.contains(marker), "report missing {marker}");
        }
        assert!(report.len() > 4_000, "report suspiciously short");
    }
}
