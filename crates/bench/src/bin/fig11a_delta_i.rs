//! Regenerates paper Fig. 11a: maximum noise vs percentage of the maximum
//! possible dI, over workload-to-core mappings of idle/medium/max
//! stressmarks.

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { DeltaIConfig::reduced() } else { DeltaIConfig::paper() };
    let data = run_delta_i(tb, &cfg).expect("campaign runs");
    opts.finish(&data.render_fig11a(), &data);
}
