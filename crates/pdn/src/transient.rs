//! Transient (time-domain) analysis via modified nodal analysis with
//! trapezoidal companion models.
//!
//! The solver uses a two-rate adaptive timestep: a coarse step sized to
//! the stimulus period, refined to a fine step inside windows around the
//! abrupt dI/dt edges reported by the [`Drive`]. Because only two step
//! sizes occur (plus an end-of-run clamp), only a couple of LU
//! factorizations are ever computed, and every simulation step is a
//! back-substitution.
//!
//! Assembly routes through the shared [`crate::mna`] core. Small
//! systems (a single chip, a few dozen unknowns) use the dense
//! [`Matrix`] fast path exactly as before; at or above
//! [`crate::mna::SPARSE_THRESHOLD`] unknowns a [`SolverBackend::Auto`]
//! solver switches to CSR sparse LU with the symbolic pattern computed
//! once and elimination orders reused across same-pattern
//! refactorizations (see [`crate::sparse`]).

use crate::backend::Factorization;
use crate::cancel::CancelToken;
use crate::error::PdnError;
use crate::linalg::Matrix;
use crate::mna::{MnaSystem, SolverBackend, SystemPattern};
use crate::netlist::{Netlist, NodeId};
use crate::sparse::{CsrMatrix, EliminationOrder, SparseLu};
use crate::telemetry::{PhaseTimes, SolverCounters};
use std::sync::Arc;
use std::time::Instant;

/// Time-varying load currents driving the simulation.
///
/// Implementors describe, for each current source in the netlist, the
/// instantaneous current draw and the set of times at which that draw
/// changes abruptly (used for timestep refinement).
pub trait Drive {
    /// Fills `out[source.index()]` with the current (amperes) drawn by each
    /// source at time `t` (seconds).
    fn currents(&self, t: f64, out: &mut [f64]);

    /// Appends to `out` every time in `[t0, t1)` at which some source
    /// current transitions abruptly. Order and duplicates are tolerated.
    fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>);
}

/// A constant drive: every source draws a fixed current.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::transient::{ConstantDrive, Drive};
/// let d = ConstantDrive::new(vec![2.0, 3.0]);
/// let mut out = vec![0.0; 2];
/// d.currents(1.0, &mut out);
/// assert_eq!(out, vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ConstantDrive {
    levels: Vec<f64>,
}

impl ConstantDrive {
    /// Creates a drive with one fixed current per source.
    pub fn new(levels: Vec<f64>) -> Self {
        ConstantDrive { levels }
    }
}

impl Drive for ConstantDrive {
    fn currents(&self, _t: f64, out: &mut [f64]) {
        out.copy_from_slice(&self.levels);
    }
    fn edges(&self, _t0: f64, _t1: f64, _out: &mut Vec<f64>) {}
}

/// What a probe observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Voltage at a node relative to ground.
    NodeVoltage(NodeId),
    /// Branch current through the `k`-th voltage source (chip input rail).
    SourceCurrent(usize),
}

/// Summary statistics of one probe over the settled portion of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeStats {
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Time-weighted mean value.
    pub mean: f64,
}

impl ProbeStats {
    /// Peak-to-peak swing, `max - min`.
    pub fn peak_to_peak(&self) -> f64 {
        self.max - self.min
    }
}

/// Configuration of a transient run.
#[derive(Debug, Clone)]
pub struct TransientConfig {
    /// End time of the simulation (starts at 0).
    pub t_end: f64,
    /// Coarse step used away from dI/dt edges.
    pub h_coarse: f64,
    /// Fine step used inside edge-refinement windows.
    pub h_fine: f64,
    /// Refinement window extent before each edge.
    pub refine_pre: f64,
    /// Refinement window extent after each edge.
    pub refine_post: f64,
    /// Statistics ignore `t < settle` so startup transients do not
    /// contaminate steady-state peak-to-peak readings.
    pub settle: f64,
    /// When `Some(d)`, record every `d`-th accepted step into traces.
    pub record_decimation: Option<usize>,
    /// Divergence guard: any MNA unknown (node voltage or branch
    /// current) whose magnitude exceeds this bound — or goes non-finite —
    /// aborts the solve with [`PdnError::Diverged`]. Physical PDN
    /// solutions live within a few volts and a few hundred amperes, so
    /// the default of `1e6` only trips on genuine numerical blow-up.
    /// Set to `f64::INFINITY` to disable the magnitude check (the
    /// non-finite check always applies).
    pub divergence_limit: f64,
    /// Step budget: when `Some(n)`, the run fails with
    /// [`PdnError::BudgetExceeded`] as soon as it would need more than
    /// `n` accepted steps to reach `t_end`. A run finishing in exactly
    /// `n` steps succeeds. Deterministic (unlike a wall-clock timeout):
    /// the same netlist and configuration always hit the budget at the
    /// same step, so one pathological netlist cannot hang a campaign
    /// while well-behaved jobs are unaffected. `None` disables the
    /// budget.
    pub max_steps: Option<usize>,
    /// Cooperative cancellation: when set, the token is polled between
    /// accepted steps and a cancelled run aborts with
    /// [`PdnError::Cancelled`]. An un-cancelled token never changes
    /// results.
    pub cancel: Option<CancelToken>,
    /// When true, the run additionally records wall-clock time spent in
    /// each solver phase into [`TransientResult::phase_times`].
    /// Wall-clock readings are nondeterministic, so this is diagnostics
    /// only — it never changes any solved value — and it defaults to
    /// off, where its cost is two branch checks per accepted step.
    /// Deterministic work counters ([`TransientResult::counters`]) are
    /// always collected regardless of this flag.
    pub collect_phase_times: bool,
}

impl TransientConfig {
    /// A configuration with sensible defaults for a run of length `t_end`:
    /// 1 ns fine steps, `t_end/2000` coarse steps (clamped to
    /// `[2 ns, 50 ns]`), 20 % settle time, no trace recording.
    pub fn new(t_end: f64) -> Self {
        let h_coarse = (t_end / 2000.0).clamp(2e-9, 50e-9);
        TransientConfig {
            t_end,
            h_coarse,
            h_fine: 1e-9,
            refine_pre: 2e-9,
            refine_post: 10e-9,
            settle: t_end * 0.2,
            record_decimation: None,
            divergence_limit: 1e6,
            max_steps: None,
            cancel: None,
            collect_phase_times: false,
        }
    }

    fn validate(&self) -> Result<(), PdnError> {
        let bad = |reason: &str| {
            Err(PdnError::InvalidTimebase {
                reason: reason.to_string(),
            })
        };
        if !(self.t_end.is_finite() && self.t_end > 0.0) {
            return bad("t_end must be positive and finite");
        }
        let steps_ok = self.h_fine.is_finite()
            && self.h_fine > 0.0
            && self.h_coarse.is_finite()
            && self.h_coarse > 0.0;
        if !steps_ok {
            return bad("steps must be positive");
        }
        if self.h_fine > self.h_coarse {
            return bad("h_fine must not exceed h_coarse");
        }
        if self.settle >= self.t_end {
            return bad("settle must be smaller than t_end");
        }
        if self.divergence_limit.is_nan() || self.divergence_limit <= 0.0 {
            return bad("divergence_limit must be positive");
        }
        Ok(())
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Recorded sample times (empty unless recording was enabled).
    pub times: Vec<f64>,
    /// One recorded trace per probe, aligned with `times`.
    pub traces: Vec<Vec<f64>>,
    /// Per-probe statistics over `t >= settle`.
    pub stats: Vec<ProbeStats>,
    /// Number of accepted integration steps.
    pub steps: usize,
    /// Exact work counters of this run (always collected; deterministic
    /// for a given netlist, drive and configuration).
    pub counters: SolverCounters,
    /// Per-phase wall-clock time; all zeros unless
    /// [`TransientConfig::collect_phase_times`] was set.
    pub phase_times: PhaseTimes,
}

/// Trapezoidal companion history of one capacitor or inductor, kept in
/// vectors parallel to the immutable element views in [`MnaSystem`].
#[derive(Debug, Clone, Copy, Default)]
struct CompanionState {
    v_prev: f64,
    i_prev: f64,
}

/// Transient simulator for one netlist.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::netlist::{Netlist, NodeId};
/// use voltnoise_pdn::transient::{ConstantDrive, Probe, TransientConfig, TransientSolver};
///
/// # fn main() -> Result<(), voltnoise_pdn::PdnError> {
/// let mut nl = Netlist::new();
/// let vdd = nl.add_node("vdd");
/// nl.add_voltage_source(vdd, NodeId::GROUND, 1.0)?;
/// let die = nl.add_node("die");
/// nl.add_resistor(vdd, die, 0.01)?;
/// let load = nl.add_current_source(die, NodeId::GROUND)?;
/// let _ = load;
///
/// let mut solver = TransientSolver::new(&nl)?;
/// let cfg = TransientConfig::new(1e-6);
/// let result = solver.run(&ConstantDrive::new(vec![5.0]), &[Probe::NodeVoltage(die)], &cfg)?;
/// assert!((result.stats[0].mean - 0.95).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub struct TransientSolver {
    n: usize,
    sys: MnaSystem,
    backend: SolverBackend,
    cap_state: Vec<CompanionState>,
    ind_state: Vec<CompanionState>,
    /// LRU factor cache keyed by step-size bits; entries come from the
    /// shared [`Factorization`] type in [`crate::backend`].
    factor_cache: Vec<(u64, Factorization<f64>)>,
    /// Symbolic pattern of the coupled system, computed lazily on the
    /// first sparse factorization and shared by every later one.
    pattern: Option<Arc<SystemPattern>>,
    /// Symbolic pattern of the DC system (inductor branch rows added).
    dc_pattern: Option<Arc<SystemPattern>>,
    /// Pivot order of the last fresh coupled-system factorization,
    /// replayed by later same-pattern refactorizations.
    elim: Option<EliminationOrder>,
    dc_elim: Option<EliminationOrder>,
    counters: SolverCounters,
    rhs: Vec<f64>,
    x: Vec<f64>,
    drive_buf: Vec<f64>,
}

impl TransientSolver {
    /// Builds a solver for the given netlist with automatic dense/sparse
    /// backend selection (see [`SolverBackend::Auto`]).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if the netlist's DC system is singular (checked
    /// lazily at run time rather than here).
    pub fn new(netlist: &Netlist) -> Result<Self, PdnError> {
        Self::with_backend(netlist, SolverBackend::Auto)
    }

    /// Builds a solver with an explicit backend choice. `Auto` is right
    /// for almost everything; forcing `Dense` or `Sparse` exists for
    /// equivalence tests and benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if the netlist's DC system is singular (checked
    /// lazily at run time rather than here).
    pub fn with_backend(netlist: &Netlist, backend: SolverBackend) -> Result<Self, PdnError> {
        let sys = MnaSystem::new(netlist);
        let n = sys.size();
        Ok(TransientSolver {
            n,
            cap_state: vec![CompanionState::default(); sys.caps.len()],
            ind_state: vec![CompanionState::default(); sys.inductors.len()],
            factor_cache: Vec::new(),
            pattern: None,
            dc_pattern: None,
            elim: None,
            dc_elim: None,
            counters: SolverCounters::default(),
            rhs: vec![0.0; n],
            x: vec![0.0; n],
            drive_buf: vec![0.0; sys.drive_len()],
            backend,
            sys,
        })
    }

    /// Whether this solver's coupled system runs on the sparse path.
    pub fn uses_sparse(&self) -> bool {
        self.backend.is_sparse(self.n)
    }

    /// Factors a sparse system, replaying the cached elimination order
    /// when one exists for this system kind (coupled or DC) and falling
    /// back to a fresh Markowitz factorization when the reuse fails a
    /// numeric pivot check. Counts `pattern_reuses` and nnz-aware
    /// `est_flops`; the caller counts `lu_factorizations`.
    fn sparse_factor(&mut self, m: &CsrMatrix<f64>, dc: bool) -> Result<SparseLu<f64>, PdnError> {
        let existing = if dc {
            self.dc_elim.as_ref()
        } else {
            self.elim.as_ref()
        };
        let refactored = existing.and_then(|o| SparseLu::refactor(m, o).ok());
        match refactored {
            Some(lu) => {
                self.counters.pattern_reuses += 1;
                self.counters.est_flops += lu.factor_flops();
                Ok(lu)
            }
            None => {
                let lu = SparseLu::factor(m)?;
                self.counters.est_flops += lu.factor_flops();
                let order = lu.order();
                if dc {
                    self.dc_elim = Some(order);
                } else {
                    self.elim = Some(order);
                }
                Ok(lu)
            }
        }
    }

    /// Returns the cache index of the factorization for step size `h`,
    /// computing it on a miss. The cache is LRU: the front is the most
    /// recently used entry and evictions take the back, so a step size
    /// in active rotation is never evicted by a burst of one-off sizes
    /// (e.g. end-of-run clamps).
    fn factors_for(&mut self, h: f64) -> Result<usize, PdnError> {
        let key = h.to_bits();
        if let Some(pos) = self.factor_cache.iter().position(|(k, _)| *k == key) {
            self.counters.factor_cache_hits += 1;
            // Move-to-front on hit keeps the recency order explicit in
            // the Vec itself; with at most 8 entries the shuffle is a
            // few pointer moves.
            let entry = self.factor_cache.remove(pos);
            self.factor_cache.insert(0, entry);
            return Ok(0);
        }
        let lu = if self.backend.is_sparse(self.n) {
            let pattern = match &self.pattern {
                Some(p) => p.clone(),
                None => {
                    let p = Arc::new(SystemPattern::coupled(&self.sys));
                    self.pattern = Some(p.clone());
                    p
                }
            };
            let mut m = CsrMatrix::zeros(pattern);
            self.sys.stamp_transient(&mut m, h);
            let lu = self.sparse_factor(&m, false)?;
            self.counters.lu_factorizations += 1;
            Factorization::Sparse(lu)
        } else {
            let mut g = Matrix::zeros(self.n, self.n);
            self.sys.stamp_transient(&mut g, h);
            self.counters.est_flops += g.lu_flops();
            let lu = g.lu()?;
            self.counters.lu_factorizations += 1;
            Factorization::Dense(lu)
        };
        if self.factor_cache.len() >= 8 {
            self.factor_cache.pop();
        }
        self.factor_cache.insert(0, (key, lu));
        Ok(0)
    }

    /// Solves the DC operating point (capacitors open, inductors shorted)
    /// with source currents evaluated at `t = 0`, and loads it as the
    /// initial state.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::SingularMatrix`] when the DC system is singular.
    pub fn solve_dc(&mut self, drive: &dyn Drive) -> Result<Vec<f64>, PdnError> {
        // DC system: nodes + vsource branches + inductor branches (shorts).
        let n = self.sys.dc_size();
        let mut rhs = vec![0.0; n];
        for v in &self.sys.vsources {
            rhs[v.row] = v.volts;
        }
        self.drive_buf.fill(0.0);
        drive.currents(0.0, &mut self.drive_buf);
        for s in &self.sys.isources {
            let j = self.drive_buf[s.source];
            if let Some(ifrom) = s.from {
                rhs[ifrom] -= j;
            }
            if let Some(ito) = s.to {
                rhs[ito] += j;
            }
        }
        self.counters.dc_solves += 1;
        // Backend choice keys on the *coupled* size so one solver stays
        // on one path for its whole run.
        let sol = if self.backend.is_sparse(self.n) {
            let pattern = match &self.dc_pattern {
                Some(p) => p.clone(),
                None => {
                    let p = Arc::new(SystemPattern::dc(&self.sys));
                    self.dc_pattern = Some(p.clone());
                    p
                }
            };
            let mut m = CsrMatrix::zeros(pattern);
            self.sys.stamp_dc(&mut m);
            let factors = self.sparse_factor(&m, true)?;
            self.counters.lu_factorizations += 1;
            self.counters.solve_calls += 1;
            self.counters.est_flops += factors.solve_flops();
            self.counters.sparse_solves += 1;
            factors.solve(&rhs)?
        } else {
            let mut g = Matrix::zeros(n, n);
            self.sys.stamp_dc(&mut g);
            self.counters.est_flops += g.lu_flops();
            let factors = g.lu()?;
            self.counters.lu_factorizations += 1;
            self.counters.solve_calls += 1;
            self.counters.est_flops += factors.solve_flops();
            factors.solve(&rhs)?
        };
        // A singular-but-not-detected system can still yield non-finite
        // values; catch them before they seed the element states.
        for (node, &v) in sol.iter().enumerate() {
            if !v.is_finite() {
                return Err(PdnError::Diverged {
                    t: 0.0,
                    node,
                    value: v,
                });
            }
        }

        // Load element states from the DC solution.
        let volt = |idx: Option<usize>| idx.map(|i| sol[i]).unwrap_or(0.0);
        for (c, st) in self.sys.caps.iter().zip(self.cap_state.iter_mut()) {
            st.v_prev = volt(c.a) - volt(c.b);
            st.i_prev = 0.0;
        }
        for (k, st) in self.ind_state.iter_mut().enumerate() {
            st.i_prev = sol[self.n + k];
            st.v_prev = 0.0;
        }
        Ok(sol[..self.n].to_vec())
    }

    /// Runs a transient simulation from a freshly solved DC operating
    /// point.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] on invalid configuration or a singular system.
    pub fn run(
        &mut self,
        drive: &dyn Drive,
        probes: &[Probe],
        cfg: &TransientConfig,
    ) -> Result<TransientResult, PdnError> {
        cfg.validate()?;
        self.factor_cache.clear();
        self.counters = SolverCounters::default();
        let timing = cfg.collect_phase_times;
        let mut phase = PhaseTimes::default();
        let dc = self.solve_dc(drive)?;

        // Build merged refinement windows from the drive's edge times.
        let mut edge_times = Vec::new();
        drive.edges(0.0, cfg.t_end, &mut edge_times);
        edge_times.retain(|t| t.is_finite());
        edge_times.sort_by(|a, b| a.total_cmp(b));
        let mut windows: Vec<(f64, f64)> = Vec::new();
        for &e in &edge_times {
            let (w0, w1) = (e - cfg.refine_pre, e + cfg.refine_post);
            match windows.last_mut() {
                Some(last) if w0 <= last.1 => last.1 = last.1.max(w1),
                _ => windows.push((w0, w1)),
            }
        }

        let read_probe =
            |x: &[f64], p: &Probe, n_nodes: usize, vsources: &[crate::mna::BranchStamp]| -> f64 {
                match p {
                    Probe::NodeVoltage(node) => node.unknown_index().map(|i| x[i]).unwrap_or(0.0),
                    Probe::SourceCurrent(k) => {
                        let _ = n_nodes;
                        vsources.get(*k).map(|v| x[v.row]).unwrap_or(0.0)
                    }
                }
            };

        let n_nodes = self.n - self.sys.vsources.len();
        let mut stats: Vec<(f64, f64, f64)> =
            vec![(f64::INFINITY, f64::NEG_INFINITY, 0.0); probes.len()];
        let mut stat_time = 0.0f64;
        let mut times = Vec::new();
        let mut traces: Vec<Vec<f64>> = vec![Vec::new(); probes.len()];

        // Record the DC point as the first sample if recording.
        if cfg.record_decimation.is_some() {
            times.push(0.0);
            for (trace, p) in traces.iter_mut().zip(probes) {
                trace.push(read_probe(&dc, p, n_nodes, &self.sys.vsources));
            }
        }

        let mut t = 0.0f64;
        let mut steps = 0usize;
        let mut widx = 0usize;
        let mut rec_counter = 0usize;
        let eps = cfg.h_fine * 1e-6;

        while t < cfg.t_end - eps {
            // Cooperative interruption, polled once per accepted step:
            // the budget bounds how much work a runaway netlist may
            // consume, the token lets a controller drain a campaign.
            // Both abort at a step boundary, so no torn state escapes.
            if let Some(budget) = cfg.max_steps {
                if steps >= budget {
                    return Err(PdnError::BudgetExceeded { steps, t });
                }
            }
            if let Some(token) = &cfg.cancel {
                if let Some(abort) = token.abort_error(t) {
                    return Err(abort);
                }
            }
            while widx < windows.len() && t >= windows[widx].1 {
                widx += 1;
            }
            let in_window =
                widx < windows.len() && t + cfg.h_coarse > windows[widx].0 && t < windows[widx].1;
            let mut h = if in_window { cfg.h_fine } else { cfg.h_coarse };
            if t + h > cfg.t_end {
                h = cfg.t_end - t;
            }

            let t0 = timing.then(Instant::now);
            let fidx = self.factors_for(h)?;
            if let Some(t0) = t0 {
                phase.factor_ns += t0.elapsed().as_nanos() as u64;
            }
            let t_next = t + h;

            // Assemble the RHS: sources at t_next plus companion history.
            let t0 = timing.then(Instant::now);
            self.rhs.fill(0.0);
            drive.currents(t_next, &mut self.drive_buf);
            for s in &self.sys.isources {
                let j = self.drive_buf[s.source];
                if let Some(ifrom) = s.from {
                    self.rhs[ifrom] -= j;
                }
                if let Some(ito) = s.to {
                    self.rhs[ito] += j;
                }
            }
            for (c, st) in self.sys.caps.iter().zip(&self.cap_state) {
                let ieq = (2.0 * c.value / h) * st.v_prev + st.i_prev;
                if let Some(ia) = c.a {
                    self.rhs[ia] += ieq;
                }
                if let Some(ib) = c.b {
                    self.rhs[ib] -= ieq;
                }
            }
            for (l, st) in self.sys.inductors.iter().zip(&self.ind_state) {
                let ieq = st.i_prev + (h / (2.0 * l.value)) * st.v_prev;
                if let Some(ia) = l.a {
                    self.rhs[ia] -= ieq;
                }
                if let Some(ib) = l.b {
                    self.rhs[ib] += ieq;
                }
            }
            for v in &self.sys.vsources {
                self.rhs[v.row] = v.volts;
            }
            if let Some(t0) = t0 {
                phase.assemble_ns += t0.elapsed().as_nanos() as u64;
            }

            let t0 = timing.then(Instant::now);
            self.factor_cache[fidx]
                .1
                .solve_into(&self.rhs, &mut self.x)?;
            self.counters.solve_calls += 1;
            self.counters.est_flops += self.factor_cache[fidx].1.solve_flops();
            if self.factor_cache[fidx].1.is_sparse() {
                self.counters.sparse_solves += 1;
            }
            if let Some(t0) = t0 {
                phase.step_ns += t0.elapsed().as_nanos() as u64;
            }

            let t0 = timing.then(Instant::now);
            // Divergence guard: an unstable network (or an unstable
            // integration of one) grows exponentially instead of
            // settling. Abort at the first non-finite or runaway unknown
            // so NaN never reaches the probe statistics.
            for (node, &v) in self.x.iter().enumerate() {
                if !v.is_finite() || v.abs() > cfg.divergence_limit {
                    return Err(PdnError::Diverged {
                        t: t_next,
                        node,
                        value: v,
                    });
                }
            }

            // Advance element states.
            let x = &self.x;
            let volt = |idx: Option<usize>| idx.map(|i| x[i]).unwrap_or(0.0);
            for (c, st) in self.sys.caps.iter().zip(self.cap_state.iter_mut()) {
                let v_new = volt(c.a) - volt(c.b);
                st.i_prev = (2.0 * c.value / h) * (v_new - st.v_prev) - st.i_prev;
                st.v_prev = v_new;
            }
            for (l, st) in self.sys.inductors.iter().zip(self.ind_state.iter_mut()) {
                let v_new = volt(l.a) - volt(l.b);
                st.i_prev += (h / (2.0 * l.value)) * (v_new + st.v_prev);
                st.v_prev = v_new;
            }
            if let Some(t0) = t0 {
                phase.validate_ns += t0.elapsed().as_nanos() as u64;
            }

            t = t_next;
            steps += 1;

            if t >= cfg.settle {
                for (st, p) in stats.iter_mut().zip(probes) {
                    let v = read_probe(&self.x, p, n_nodes, &self.sys.vsources);
                    st.0 = st.0.min(v);
                    st.1 = st.1.max(v);
                    st.2 += v * h;
                }
                stat_time += h;
            }
            if let Some(dec) = cfg.record_decimation {
                rec_counter += 1;
                if rec_counter >= dec {
                    rec_counter = 0;
                    times.push(t);
                    for (trace, p) in traces.iter_mut().zip(probes) {
                        trace.push(read_probe(&self.x, p, n_nodes, &self.sys.vsources));
                    }
                }
            }
        }

        let stats = stats
            .into_iter()
            .map(|(min, max, integral)| ProbeStats {
                min,
                max,
                mean: if stat_time > 0.0 {
                    integral / stat_time
                } else {
                    0.0
                },
            })
            .collect();
        self.counters.steps = steps as u64;
        Ok(TransientResult {
            times,
            traces,
            stats,
            steps,
            counters: self.counters,
            phase_times: phase,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Netlist, NodeId};

    fn simple_rc() -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_resistor(vdd, die, 0.1).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, 1e-6).unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();
        (nl, die)
    }

    #[test]
    fn dc_point_matches_ohms_law() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let sol = solver.solve_dc(&ConstantDrive::new(vec![2.0])).unwrap();
        // v(die) = 1.0 - 2.0 A * 0.1 ohm = 0.8 V
        let v_die = sol[die.unknown_index().unwrap()];
        assert!((v_die - 0.8).abs() < 1e-9, "v_die = {v_die}");
    }

    #[test]
    fn constant_drive_stays_at_dc() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let cfg = TransientConfig::new(50e-6);
        let res = solver
            .run(
                &ConstantDrive::new(vec![2.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap();
        let st = &res.stats[0];
        assert!((st.mean - 0.8).abs() < 1e-6);
        assert!(st.peak_to_peak() < 1e-9, "p2p = {}", st.peak_to_peak());
    }

    /// A step drive: 0 A before `t0`, `amps` after.
    struct StepDrive {
        t0: f64,
        amps: f64,
    }
    impl Drive for StepDrive {
        fn currents(&self, t: f64, out: &mut [f64]) {
            out[0] = if t >= self.t0 { self.amps } else { 0.0 };
        }
        fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
            if self.t0 >= t0 && self.t0 < t1 {
                out.push(self.t0);
            }
        }
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        // R = 1 ohm, C = 1 uF, tau = 1 us. Step of 0.5 A at t = 10 us.
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_resistor(vdd, die, 1.0).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, 1e-6).unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();

        let mut solver = TransientSolver::new(&nl).unwrap();
        let mut cfg = TransientConfig::new(20e-6);
        cfg.h_coarse = 5e-9;
        cfg.h_fine = 1e-9;
        cfg.settle = 0.0;
        cfg.record_decimation = Some(1);
        let res = solver
            .run(
                &StepDrive {
                    t0: 10e-6,
                    amps: 0.5,
                },
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap();

        // Compare simulated trace against v(t) = 1 - 0.5*(1 - exp(-(t-t0)/tau)).
        let mut max_err = 0.0f64;
        for (t, v) in res.times.iter().zip(&res.traces[0]) {
            let expected = if *t < 10e-6 {
                1.0
            } else {
                1.0 - 0.5 * (1.0 - (-(*t - 10e-6) / 1e-6).exp())
            };
            max_err = max_err.max((v - expected).abs());
        }
        assert!(max_err < 2e-3, "max_err = {max_err}");
        // Final value approaches 1 - 0.5*1.0 = 0.5.
        let last = *res.traces[0].last().unwrap();
        assert!((last - 0.5).abs() < 1e-3, "last = {last}");
    }

    #[test]
    fn rlc_ringing_frequency_matches_analytic() {
        // Series L from source, C at die: resonance f = 1/(2*pi*sqrt(LC)).
        let l: f64 = 1e-9;
        let c: f64 = 1e-6;
        let f_expected = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt()); // ~5.03 MHz
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_series_rl(vdd, die, 1e-3, l).unwrap(); // light damping
        nl.add_capacitor(die, NodeId::GROUND, c).unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();

        let mut solver = TransientSolver::new(&nl).unwrap();
        let mut cfg = TransientConfig::new(3e-6);
        cfg.h_coarse = 1e-9;
        cfg.h_fine = 1e-9;
        cfg.settle = 0.0;
        cfg.record_decimation = Some(1);
        let res = solver
            .run(
                &StepDrive {
                    t0: 0.2e-6,
                    amps: 10.0,
                },
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap();

        // Measure the ringing period from successive minima after the step.
        let trace = &res.traces[0];
        let times = &res.times;
        let mut minima = Vec::new();
        for i in 1..trace.len() - 1 {
            if times[i] > 0.25e-6 && trace[i] < trace[i - 1] && trace[i] <= trace[i + 1] {
                minima.push(times[i]);
            }
        }
        assert!(
            minima.len() >= 3,
            "expected ringing, got {} minima",
            minima.len()
        );
        let period = (minima[2] - minima[0]) / 2.0;
        let f_measured = 1.0 / period;
        let rel = (f_measured - f_expected).abs() / f_expected;
        assert!(
            rel < 0.05,
            "f_measured {f_measured:.3e} vs expected {f_expected:.3e}"
        );
    }

    #[test]
    fn source_current_probe_reads_chip_current() {
        let (nl, _) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let cfg = TransientConfig::new(50e-6);
        let res = solver
            .run(
                &ConstantDrive::new(vec![2.0]),
                &[Probe::SourceCurrent(0)],
                &cfg,
            )
            .unwrap();
        // Magnitude of the rail current equals the 2 A load at DC.
        assert!((res.stats[0].mean.abs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let mut cfg = TransientConfig::new(1e-6);
        cfg.h_fine = 2.0 * cfg.h_coarse;
        let err = solver
            .run(
                &ConstantDrive::new(vec![0.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap_err();
        assert!(matches!(err, PdnError::InvalidTimebase { .. }));
    }

    #[test]
    fn floating_node_is_singular() {
        let mut nl = Netlist::new();
        let a = nl.add_node("floating");
        let b = nl.add_node("b");
        nl.add_resistor(a, b, 1.0).unwrap(); // no path to ground
        let mut solver = TransientSolver::new(&nl).unwrap();
        assert!(solver.solve_dc(&ConstantDrive::new(vec![])).is_err());
    }

    /// An RC node whose net conductance to ground is negative: the die
    /// voltage grows exponentially after any perturbation. The solver
    /// must abort with `Diverged`, never return NaN/Inf statistics.
    fn unstable_netlist() -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_resistor(vdd, die, 0.1).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, 1e-6).unwrap();
        // -0.05 ohm to ground: net conductance at die = 10 - 20 < 0.
        nl.add_negative_resistor(die, NodeId::GROUND, -0.05)
            .unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();
        (nl, die)
    }

    #[test]
    fn unstable_netlist_diverges_not_nan() {
        let (nl, die) = unstable_netlist();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let cfg = TransientConfig::new(50e-6);
        let err = solver
            .run(
                &StepDrive {
                    t0: 1e-6,
                    amps: 1.0,
                },
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap_err();
        match err {
            PdnError::Diverged { t, value, .. } => {
                assert!(t > 0.0 && t <= 50e-6, "t = {t}");
                assert!(
                    !value.is_finite() || value.abs() > cfg.divergence_limit,
                    "value = {value}"
                );
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn divergence_limit_is_validated() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let mut cfg = TransientConfig::new(1e-6);
        cfg.divergence_limit = -1.0;
        let err = solver
            .run(
                &ConstantDrive::new(vec![0.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap_err();
        assert!(matches!(err, PdnError::InvalidTimebase { .. }));
    }

    #[test]
    fn refinement_reduces_step_count_vs_uniform_fine() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let mut cfg = TransientConfig::new(100e-6);
        cfg.h_coarse = 50e-9;
        cfg.h_fine = 1e-9;
        let res = solver
            .run(
                &StepDrive {
                    t0: 50e-6,
                    amps: 1.0,
                },
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap();
        let uniform_fine_steps = (100e-6 / 1e-9) as usize;
        assert!(res.steps * 10 < uniform_fine_steps, "steps = {}", res.steps);
    }

    /// Regression test for the factor-cache eviction policy. The old
    /// policy evicted with `Vec::pop()` — the most recently *inserted*
    /// factorization — so a hot step size introduced after the cache
    /// filled was thrown out on every following miss and refactored on
    /// every following use. True LRU keeps it: once the cache is full
    /// (8 cold sizes), alternating one hot size against a stream of
    /// fresh one-off sizes must refactor only the one-offs.
    #[test]
    fn factor_cache_keeps_hot_entry_under_lru() {
        let (nl, _) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let h_of = |i: usize| (i as f64 + 1.0) * 1e-9;
        // Fill the cache with 8 cold step sizes.
        for i in 0..8 {
            solver.factors_for(h_of(i)).unwrap();
        }
        assert_eq!(solver.counters.lu_factorizations, 8);
        assert_eq!(solver.counters.factor_cache_hits, 0);
        // Alternate a hot size against 8 more fresh sizes (9 sizes in
        // rotation against a capacity of 8).
        let hot = 0.5e-9;
        for i in 8..16 {
            solver.factors_for(hot).unwrap();
            solver.factors_for(h_of(i)).unwrap();
        }
        // The hot size factored exactly once (its first use); every
        // later use was a cache hit despite the eviction pressure.
        assert_eq!(solver.counters.lu_factorizations, 8 + 1 + 8);
        assert_eq!(solver.counters.factor_cache_hits, 7);
        // And a hit reports the move-to-front index.
        assert_eq!(solver.factors_for(hot).unwrap(), 0);
        assert_eq!(solver.counters.factor_cache_hits, 8);
    }

    /// Counters are exact on a hand-built RC netlist whose timebase is
    /// chosen so every accepted step uses the same power-of-two step
    /// size: `t += h` stays exact in floating point, no end-of-run
    /// clamp fires, and the counts are knowable in closed form.
    #[test]
    fn counters_are_exact_on_known_run() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let h = (2.0f64).powi(-27); // ~7.45 ns, exactly representable
        let n_steps = 128u64;
        let mut cfg = TransientConfig::new(h * n_steps as f64);
        cfg.h_coarse = h;
        cfg.h_fine = h;
        cfg.settle = 0.0;
        let res = solver
            .run(
                &ConstantDrive::new(vec![1.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap();
        assert_eq!(res.steps as u64, n_steps);
        let c = res.counters;
        assert_eq!(c.steps, n_steps);
        assert_eq!(c.dc_solves, 1);
        // One transient factorization (single step size) plus the DC one.
        assert_eq!(c.lu_factorizations, 2);
        assert_eq!(c.factor_cache_hits, n_steps - 1);
        // One back-substitution per step plus the DC solve.
        assert_eq!(c.solve_calls, n_steps + 1);
        assert!(c.est_flops > 0);
        // Phase timing stayed off: no wall-clock was recorded.
        assert_eq!(res.phase_times.total_ns(), 0);
    }

    #[test]
    fn phase_times_are_recorded_when_enabled() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let mut cfg = TransientConfig::new(20e-6);
        cfg.collect_phase_times = true;
        let timed = solver
            .run(
                &ConstantDrive::new(vec![1.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap();
        assert!(timed.phase_times.total_ns() > 0, "no phase time recorded");
        // Timing collection must not change the solved values.
        cfg.collect_phase_times = false;
        let plain = solver
            .run(
                &ConstantDrive::new(vec![1.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap();
        assert_eq!(plain.steps, timed.steps);
        assert_eq!(plain.counters, timed.counters);
        assert_eq!(plain.stats[0].min.to_bits(), timed.stats[0].min.to_bits());
        assert_eq!(plain.stats[0].max.to_bits(), timed.stats[0].max.to_bits());
        assert_eq!(plain.stats[0].mean.to_bits(), timed.stats[0].mean.to_bits());
    }

    #[test]
    fn step_budget_fails_deterministically() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let mut cfg = TransientConfig::new(100e-6);
        cfg.max_steps = Some(10);
        let err = solver
            .run(
                &ConstantDrive::new(vec![1.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap_err();
        let PdnError::BudgetExceeded { steps, t } = err else {
            panic!("expected BudgetExceeded, got {err:?}");
        };
        assert_eq!(steps, 10);
        assert!(t > 0.0 && t < 100e-6, "t = {t}");
        // The same budget fails at the same step every time.
        let err2 = solver
            .run(
                &ConstantDrive::new(vec![1.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn exact_step_budget_succeeds_and_matches_unbudgeted_run() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let cfg = TransientConfig::new(20e-6);
        let drive = ConstantDrive::new(vec![1.0]);
        let probes = [Probe::NodeVoltage(die)];
        let free = solver.run(&drive, &probes, &cfg).unwrap();
        // Granting exactly the needed number of steps changes nothing.
        let mut exact = cfg.clone();
        exact.max_steps = Some(free.steps);
        let budgeted = solver.run(&drive, &probes, &exact).unwrap();
        assert_eq!(budgeted.steps, free.steps);
        assert_eq!(budgeted.stats[0].min.to_bits(), free.stats[0].min.to_bits());
        assert_eq!(budgeted.stats[0].max.to_bits(), free.stats[0].max.to_bits());
        assert_eq!(
            budgeted.stats[0].mean.to_bits(),
            free.stats[0].mean.to_bits()
        );
        // One step fewer fails.
        let mut short = cfg;
        short.max_steps = Some(free.steps - 1);
        assert!(matches!(
            solver.run(&drive, &probes, &short),
            Err(PdnError::BudgetExceeded { .. })
        ));
    }

    /// A drive that cancels its token once the simulation passes a set
    /// time — a deterministic stand-in for an external controller.
    struct CancellingDrive {
        token: CancelToken,
        after: f64,
        amps: f64,
    }

    impl Drive for CancellingDrive {
        fn currents(&self, t: f64, out: &mut [f64]) {
            if t > self.after {
                self.token.cancel();
            }
            out.fill(self.amps);
        }
        fn edges(&self, _t0: f64, _t1: f64, _out: &mut Vec<f64>) {}
    }

    #[test]
    fn cancellation_aborts_between_steps() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let token = CancelToken::new();
        let mut cfg = TransientConfig::new(100e-6);
        cfg.cancel = Some(token.clone());
        let drive = CancellingDrive {
            token,
            after: 40e-6,
            amps: 1.0,
        };
        let err = solver
            .run(&drive, &[Probe::NodeVoltage(die)], &cfg)
            .unwrap_err();
        let PdnError::Cancelled { t } = err else {
            panic!("expected Cancelled, got {err:?}");
        };
        assert!((40e-6..100e-6).contains(&t), "t = {t}");
    }

    #[test]
    fn pre_cancelled_token_aborts_immediately() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let mut cfg = TransientConfig::new(100e-6);
        cfg.cancel = Some(token);
        let err = solver
            .run(
                &ConstantDrive::new(vec![1.0]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap_err();
        assert!(
            matches!(err, PdnError::Cancelled { t } if t == 0.0),
            "{err:?}"
        );
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let (nl, die) = simple_rc();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let drive = StepDrive {
            t0: 50e-6,
            amps: 1.0,
        };
        let probes = [Probe::NodeVoltage(die)];
        let plain = solver
            .run(&drive, &probes, &TransientConfig::new(100e-6))
            .unwrap();
        let mut cfg = TransientConfig::new(100e-6);
        cfg.cancel = Some(CancelToken::new());
        let watched = solver.run(&drive, &probes, &cfg).unwrap();
        assert_eq!(plain.steps, watched.steps);
        assert_eq!(plain.stats[0].min.to_bits(), watched.stats[0].min.to_bits());
        assert_eq!(plain.stats[0].max.to_bits(), watched.stats[0].max.to_bits());
    }
}
