//! The wire format and its validating decoder: the daemon's
//! malformed-input boundary.
//!
//! A batch request is JSON of the shape
//!
//! ```json
//! {
//!   "jobs": [
//!     {"mapping": ["max","idle","idle","idle","idle","idle"],
//!      "stim_freq_hz": 2.5e6, "sync": true,
//!      "window_s": 25e-6, "seed": 1,
//!      "record_traces": false, "max_steps": 200000}
//!   ],
//!   "deadline_ms": 30000
//! }
//! ```
//!
//! Jobs are *testbed-relative*: a mapping of workload classes onto the
//! six cores plus the electrical knobs, exactly the vocabulary of
//! [`voltnoise_system::testbed::Testbed::loads_of_mapping`]. The server
//! compiles them against its testbed, so a wire job resolves to the
//! same content key as the equivalent locally-built
//! [`voltnoise_system::engine::SimJob`] — which is what makes
//! cross-client dedup and store resume exact.
//!
//! Decoding is *strict where silence would lie*: the vendored JSON
//! layer happily parses duplicate object keys (keeping both) and maps
//! non-finite floats through `null`, so this module re-walks the value
//! tree and rejects duplicate keys, unknown fields, `null`-encoded
//! NaNs, non-finite or non-positive numbers, wrong shapes and empty or
//! oversized batches — each with a machine-readable [`WireError`]
//! naming the offending job index. It never panics on any input.

use serde::Value;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_system::telemetry::SignalTelemetry;
use voltnoise_system::workload::WorkloadKind;

/// Hard cap on jobs per batch: above this, admission arithmetic and
/// response streaming still work but a single request monopolizes the
/// engine, so the decoder refuses outright.
pub const MAX_JOBS_PER_BATCH: usize = 4096;

/// Wrapper giving the vendored [`Value`] a `Deserialize` impl, so a
/// request body can be parsed to a raw tree before validation.
struct RawValue(Value);

impl serde::Deserialize for RawValue {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(RawValue(v.clone()))
    }
}

/// One wire job: a testbed-relative simulation spec.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Workload class per core.
    pub mapping: [WorkloadKind; NUM_CORES],
    /// Stressmark stimulus frequency, Hz.
    pub stim_freq_hz: f64,
    /// TOD-synchronize the stressmark bursts (paper default sync spec).
    pub sync: bool,
    /// Simulated window, seconds (`None`: sized from stimulus periods).
    pub window_s: Option<f64>,
    /// Random seed of the free-run phases.
    pub seed: u64,
    /// Record per-core oscilloscope traces.
    pub record_traces: bool,
    /// Per-job accepted-step budget.
    pub max_steps: Option<usize>,
}

impl JobSpec {
    /// Estimated accepted transient steps this job will cost — the
    /// admission-control currency. An explicit budget is its own
    /// estimate; otherwise the estimate scales with the simulated
    /// window at the solver's coarse rate (a deliberate overcount:
    /// admission errs toward shedding, not overload).
    pub fn estimated_steps(&self) -> u64 {
        if let Some(budget) = self.max_steps {
            return budget as u64;
        }
        // The two-rate solver accepts on the order of 4e8 steps per
        // simulated second on this topology; windows default to ~50 µs
        // when unspecified.
        let window = self.window_s.unwrap_or(50e-6);
        (window * 4e8).max(1.0) as u64
    }

    /// Serializes this spec back to its wire value — the inverse of the
    /// strict decoder, used by the fleet router to re-emit routed
    /// sub-batches. Round-trips through [`parse_batch`] to an equal
    /// spec; optional fields absent in the spec stay absent on the
    /// wire, so two routers building the same spec emit the same bytes.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            (
                "mapping".to_string(),
                Value::Array(
                    self.mapping
                        .iter()
                        .map(|k| Value::Str(k.label().to_string()))
                        .collect(),
                ),
            ),
            ("stim_freq_hz".to_string(), Value::F64(self.stim_freq_hz)),
            ("sync".to_string(), Value::Bool(self.sync)),
            ("seed".to_string(), Value::U64(self.seed)),
            ("record_traces".to_string(), Value::Bool(self.record_traces)),
        ];
        if let Some(window_s) = self.window_s {
            fields.push(("window_s".to_string(), Value::F64(window_s)));
        }
        if let Some(max_steps) = self.max_steps {
            fields.push(("max_steps".to_string(), Value::U64(max_steps as u64)));
        }
        Value::Object(fields)
    }
}

/// A decoded batch request.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The jobs, in request order.
    pub jobs: Vec<JobSpec>,
    /// Wall-clock deadline for the whole batch, milliseconds (`None`:
    /// the server default applies).
    pub deadline_ms: Option<u64>,
}

impl BatchRequest {
    /// Total estimated step cost of the batch.
    pub fn estimated_steps(&self) -> u64 {
        self.jobs.iter().map(JobSpec::estimated_steps).sum()
    }

    /// Serializes the batch to a request body [`parse_batch`] accepts
    /// and decodes back to an equal value.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Value)> = vec![(
            "jobs".to_string(),
            Value::Array(self.jobs.iter().map(JobSpec::to_value).collect()),
        )];
        if let Some(deadline_ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::U64(deadline_ms)));
        }
        serde_json::to_string(&Value::Object(fields)).unwrap_or_else(|_| "{}".to_string())
    }
}

/// A typed decode failure: stable machine-readable `code`, human
/// `detail`, and the offending job index when one is identifiable.
/// Serialized as the body of every `400` response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Stable error code (`invalid-json`, `duplicate-key`,
    /// `unknown-field`, `missing-field`, `bad-type`, `non-finite`,
    /// `bad-value`, `empty-batch`, `batch-too-large`).
    pub code: &'static str,
    /// Human-readable description.
    pub detail: String,
    /// Index of the offending job within `jobs`, when identifiable.
    pub job: Option<usize>,
}

impl WireError {
    fn new(code: &'static str, detail: impl Into<String>) -> WireError {
        WireError {
            code,
            detail: detail.into(),
            job: None,
        }
    }

    fn at_job(mut self, index: usize) -> WireError {
        self.job = Some(index);
        self
    }

    /// The machine-readable JSON body of the `400` response.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            (
                "error".to_string(),
                Value::Str("invalid-request".to_string()),
            ),
            ("code".to_string(), Value::Str(self.code.to_string())),
            ("detail".to_string(), Value::Str(self.detail.clone())),
        ];
        if let Some(job) = self.job {
            fields.push(("job".to_string(), Value::U64(job as u64)));
        }
        render(&Value::Object(fields))
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.job {
            Some(job) => write!(f, "{} (job {job}): {}", self.code, self.detail),
            None => write!(f, "{}: {}", self.code, self.detail),
        }
    }
}

impl std::error::Error for WireError {}

/// Renders a raw value tree as compact JSON (the writer is total).
fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "{}".to_string())
}

/// A validated object view: duplicate keys and unknown fields rejected
/// up front, fields consumed by name afterwards.
struct StrictObject<'a> {
    entries: &'a [(String, Value)],
}

impl<'a> StrictObject<'a> {
    fn of(v: &'a Value, what: &str, allowed: &[&str]) -> Result<StrictObject<'a>, WireError> {
        let entries = v
            .as_object()
            .ok_or_else(|| WireError::new("bad-type", format!("{what} must be a JSON object")))?;
        for (i, (key, _)) in entries.iter().enumerate() {
            if entries[..i].iter().any(|(k, _)| k == key) {
                // The vendored parser keeps both entries and `field()`
                // silently serves the first — a wire request relying on
                // that would mean different things to different
                // decoders, so refuse it outright.
                return Err(WireError::new(
                    "duplicate-key",
                    format!("{what} has duplicate key {key:?}"),
                ));
            }
            if !allowed.contains(&key.as_str()) {
                return Err(WireError::new(
                    "unknown-field",
                    format!("{what} has unknown field {key:?} (allowed: {allowed:?})"),
                ));
            }
        }
        Ok(StrictObject { entries })
    }

    fn get(&self, name: &str) -> Option<&'a Value> {
        self.entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// A required, finite, strictly positive float field. `null` is called
/// out specifically: it is how NaN/Inf arrive over this wire.
fn finite_positive_f64(v: &Value, what: &str) -> Result<f64, WireError> {
    let x = match v {
        Value::F64(x) => *x,
        Value::U64(n) => *n as f64,
        Value::I64(n) => *n as f64,
        Value::Null => {
            return Err(WireError::new(
                "non-finite",
                format!("{what} is null — NaN and infinities encode as null and are rejected"),
            ))
        }
        other => {
            return Err(WireError::new(
                "bad-type",
                format!("{what} must be a number, got {}", render(other)),
            ))
        }
    };
    if !x.is_finite() {
        return Err(WireError::new(
            "non-finite",
            format!("{what} must be finite, got {x}"),
        ));
    }
    if x <= 0.0 {
        return Err(WireError::new(
            "bad-value",
            format!("{what} must be positive, got {x}"),
        ));
    }
    Ok(x)
}

fn u64_field(v: &Value, what: &str) -> Result<u64, WireError> {
    match v {
        Value::U64(n) => Ok(*n),
        other => Err(WireError::new(
            "bad-type",
            format!(
                "{what} must be a non-negative integer, got {}",
                render(other)
            ),
        )),
    }
}

fn bool_field(v: &Value, what: &str) -> Result<bool, WireError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(WireError::new(
            "bad-type",
            format!("{what} must be a boolean, got {}", render(other)),
        )),
    }
}

fn workload_of(v: &Value, what: &str) -> Result<WorkloadKind, WireError> {
    let label = match v {
        Value::Str(s) => s.as_str(),
        other => {
            return Err(WireError::new(
                "bad-type",
                format!(
                    "{what} must be a workload label string, got {}",
                    render(other)
                ),
            ))
        }
    };
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            WireError::new(
                "bad-value",
                format!("{what} must be one of \"idle\", \"med\", \"max\"; got {label:?}"),
            )
        })
}

/// The `"signal"` section of the `/stats` body: the engine's
/// spectral-signature telemetry reduced to counts plus bucket-floor
/// quantiles (exact to within a factor of two, like every
/// [`voltnoise_system::telemetry::LogHistogram`] reading). Quantile
/// fields are *absent* — not `null` — while no trace has been
/// analyzed, so the encoding round-trips exactly through
/// [`parse_signal_stats`] and never emits the `null` that strict
/// decoders reject as a smuggled NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalStats {
    /// Scope traces analyzed (one per core per traced solve).
    pub traces: u64,
    /// Traces whose signature computation failed.
    pub rejected: u64,
    /// Median Welch-peak frequency bucket floor, Hz.
    pub peak_freq_hz_p50: Option<u64>,
    /// 95th-percentile Welch-peak frequency bucket floor, Hz.
    pub peak_freq_hz_p95: Option<u64>,
    /// Median die-band power bucket floor, 1e-15 V² units.
    pub band_power_femto_p50: Option<u64>,
    /// Median assessed min-entropy bucket floor, milli-bits/sample.
    pub min_entropy_millibits_p50: Option<u64>,
}

impl SignalStats {
    /// Reduces a telemetry aggregate to its wire summary.
    pub fn of(sig: &SignalTelemetry) -> SignalStats {
        SignalStats {
            traces: sig.traces,
            rejected: sig.rejected,
            peak_freq_hz_p50: sig.peak_freq_hz.median(),
            peak_freq_hz_p95: sig.peak_freq_hz.p95(),
            band_power_femto_p50: sig.band_power_femto.median(),
            min_entropy_millibits_p50: sig.min_entropy_millibits.median(),
        }
    }

    /// Serializes the summary to its wire value — the inverse of
    /// [`parse_signal_stats`]; absent quantiles stay absent on the
    /// wire, so two servers with equal telemetry emit the same bytes.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("traces".to_string(), Value::U64(self.traces)),
            ("rejected".to_string(), Value::U64(self.rejected)),
        ];
        let optional = [
            ("peak_freq_hz_p50", self.peak_freq_hz_p50),
            ("peak_freq_hz_p95", self.peak_freq_hz_p95),
            ("band_power_femto_p50", self.band_power_femto_p50),
            ("min_entropy_millibits_p50", self.min_entropy_millibits_p50),
        ];
        for (name, value) in optional {
            if let Some(v) = value {
                fields.push((name.to_string(), Value::U64(v)));
            }
        }
        Value::Object(fields)
    }

    /// Compact JSON rendering of [`SignalStats::to_value`].
    pub fn to_json(&self) -> String {
        render(&self.to_value())
    }
}

/// Decodes and validates one `/stats` `"signal"` section.
///
/// # Errors
///
/// Returns a typed [`WireError`] — never panics — for malformed JSON,
/// duplicate keys, unknown or missing fields and wrong shapes; the
/// same contract as [`parse_batch`].
pub fn parse_signal_stats(body: &str) -> Result<SignalStats, WireError> {
    let RawValue(root) = serde_json::from_str::<RawValue>(body)
        .map_err(|e| WireError::new("invalid-json", e.to_string()))?;
    signal_stats_of(&root, "signal")
}

/// Decodes a `"signal"` section already parsed to a value tree (the
/// nested form inside a full `/stats` body).
///
/// # Errors
///
/// Returns a typed [`WireError`] on duplicate keys, unknown or missing
/// fields and wrong shapes.
pub fn signal_stats_of(v: &Value, what: &str) -> Result<SignalStats, WireError> {
    let obj = StrictObject::of(
        v,
        what,
        &[
            "traces",
            "rejected",
            "peak_freq_hz_p50",
            "peak_freq_hz_p95",
            "band_power_femto_p50",
            "min_entropy_millibits_p50",
        ],
    )?;
    let required = |name: &str| -> Result<u64, WireError> {
        let v = obj.get(name).ok_or_else(|| {
            WireError::new("missing-field", format!("{what} is missing {name:?}"))
        })?;
        u64_field(v, &format!("{what}.{name}"))
    };
    let optional = |name: &str| -> Result<Option<u64>, WireError> {
        obj.get(name)
            .map(|v| u64_field(v, &format!("{what}.{name}")))
            .transpose()
    };
    Ok(SignalStats {
        traces: required("traces")?,
        rejected: required("rejected")?,
        peak_freq_hz_p50: optional("peak_freq_hz_p50")?,
        peak_freq_hz_p95: optional("peak_freq_hz_p95")?,
        band_power_femto_p50: optional("band_power_femto_p50")?,
        min_entropy_millibits_p50: optional("min_entropy_millibits_p50")?,
    })
}

fn job_of(v: &Value, index: usize) -> Result<JobSpec, WireError> {
    let what = format!("jobs[{index}]");
    let obj = StrictObject::of(
        v,
        &what,
        &[
            "mapping",
            "stim_freq_hz",
            "sync",
            "window_s",
            "seed",
            "record_traces",
            "max_steps",
        ],
    )?;
    let mapping_v = obj
        .get("mapping")
        .ok_or_else(|| WireError::new("missing-field", format!("{what} is missing \"mapping\"")))?;
    let entries = mapping_v.as_array().ok_or_else(|| {
        WireError::new(
            "bad-type",
            format!("{what}.mapping must be an array of {NUM_CORES} workload labels"),
        )
    })?;
    if entries.len() != NUM_CORES {
        return Err(WireError::new(
            "bad-value",
            format!(
                "{what}.mapping must name all {NUM_CORES} cores, got {}",
                entries.len()
            ),
        ));
    }
    let mut mapping = [WorkloadKind::Idle; NUM_CORES];
    for (core, entry) in entries.iter().enumerate() {
        mapping[core] = workload_of(entry, &format!("{what}.mapping[{core}]"))?;
    }
    let stim_v = obj.get("stim_freq_hz").ok_or_else(|| {
        WireError::new(
            "missing-field",
            format!("{what} is missing \"stim_freq_hz\""),
        )
    })?;
    let stim_freq_hz = finite_positive_f64(stim_v, &format!("{what}.stim_freq_hz"))?;
    let sync = obj
        .get("sync")
        .map(|v| bool_field(v, &format!("{what}.sync")))
        .transpose()?
        .unwrap_or(false);
    let window_s = obj
        .get("window_s")
        .map(|v| finite_positive_f64(v, &format!("{what}.window_s")))
        .transpose()?;
    let seed = obj
        .get("seed")
        .map(|v| u64_field(v, &format!("{what}.seed")))
        .transpose()?
        .unwrap_or(1);
    let record_traces = obj
        .get("record_traces")
        .map(|v| bool_field(v, &format!("{what}.record_traces")))
        .transpose()?
        .unwrap_or(false);
    let max_steps = obj
        .get("max_steps")
        .map(|v| {
            let n = u64_field(v, &format!("{what}.max_steps"))?;
            if n == 0 {
                return Err(WireError::new(
                    "bad-value",
                    format!("{what}.max_steps must be at least 1"),
                ));
            }
            usize::try_from(n).map_err(|_| {
                WireError::new("bad-value", format!("{what}.max_steps does not fit usize"))
            })
        })
        .transpose()?;
    Ok(JobSpec {
        mapping,
        stim_freq_hz,
        sync,
        window_s,
        seed,
        record_traces,
        max_steps,
    })
}

/// Decodes and validates one batch request body.
///
/// # Errors
///
/// Returns a typed [`WireError`] — never panics, never drops a job —
/// for malformed JSON, duplicate keys, unknown or missing fields,
/// `null`-encoded non-finite numbers, shape mismatches, empty batches
/// and batches beyond [`MAX_JOBS_PER_BATCH`].
pub fn parse_batch(body: &str) -> Result<BatchRequest, WireError> {
    let RawValue(root) = serde_json::from_str::<RawValue>(body)
        .map_err(|e| WireError::new("invalid-json", e.to_string()))?;
    let obj = StrictObject::of(&root, "batch", &["jobs", "deadline_ms"])?;
    let jobs_v = obj
        .get("jobs")
        .ok_or_else(|| WireError::new("missing-field", "batch is missing \"jobs\""))?;
    let entries = jobs_v
        .as_array()
        .ok_or_else(|| WireError::new("bad-type", "\"jobs\" must be an array"))?;
    if entries.is_empty() {
        return Err(WireError::new("empty-batch", "\"jobs\" must not be empty"));
    }
    if entries.len() > MAX_JOBS_PER_BATCH {
        return Err(WireError::new(
            "batch-too-large",
            format!(
                "batch of {} jobs exceeds the {MAX_JOBS_PER_BATCH}-job cap",
                entries.len()
            ),
        ));
    }
    let mut jobs = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        jobs.push(job_of(entry, i).map_err(|e| e.at_job(i))?);
    }
    let deadline_ms = obj
        .get("deadline_ms")
        .map(|v| {
            let ms = u64_field(v, "deadline_ms")?;
            if ms == 0 {
                return Err(WireError::new(
                    "bad-value",
                    "deadline_ms must be at least 1",
                ));
            }
            Ok(ms)
        })
        .transpose()?;
    Ok(BatchRequest { jobs, deadline_ms })
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = r#"{"jobs":[{"mapping":["max","idle","idle","idle","idle","idle"],"stim_freq_hz":2.5e6,"sync":true,"window_s":2.5e-5,"seed":7,"record_traces":false,"max_steps":50000}],"deadline_ms":30000}"#;

    #[test]
    fn valid_batch_decodes_fully() {
        let batch = parse_batch(VALID).unwrap();
        assert_eq!(batch.jobs.len(), 1);
        let job = &batch.jobs[0];
        assert_eq!(job.mapping[0], WorkloadKind::MaxDidt);
        assert_eq!(job.mapping[5], WorkloadKind::Idle);
        assert_eq!(job.stim_freq_hz, 2.5e6);
        assert!(job.sync);
        assert_eq!(job.window_s, Some(2.5e-5));
        assert_eq!(job.seed, 7);
        assert_eq!(job.max_steps, Some(50000));
        assert_eq!(batch.deadline_ms, Some(30000));
        assert_eq!(batch.estimated_steps(), 50000);
    }

    #[test]
    fn batch_to_json_round_trips_through_the_strict_decoder() {
        let batch = parse_batch(VALID).unwrap();
        let redecoded = parse_batch(&batch.to_json()).unwrap();
        assert_eq!(batch, redecoded);
        // A spec with all optionals absent must also round-trip (the
        // serializer must not invent defaulted fields).
        let sparse = parse_batch(
            r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1000.0}]}"#,
        )
        .unwrap();
        assert_eq!(sparse, parse_batch(&sparse.to_json()).unwrap());
        // Same batch, same bytes: routers on different hosts agree.
        assert_eq!(
            batch.to_json(),
            parse_batch(&batch.to_json()).unwrap().to_json()
        );
    }

    #[test]
    fn optional_fields_default() {
        let batch = parse_batch(
            r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1000.0}]}"#,
        )
        .unwrap();
        let job = &batch.jobs[0];
        assert!(!job.sync);
        assert_eq!(job.window_s, None);
        assert_eq!(job.seed, 1);
        assert!(!job.record_traces);
        assert_eq!(job.max_steps, None);
        assert_eq!(batch.deadline_ms, None);
        // The unbudgeted estimate is the window heuristic, never zero.
        assert!(job.estimated_steps() > 0);
    }

    /// Fuzz-style sweep: every proper prefix of a valid body must fail
    /// with a typed error, not a panic or a silent partial decode.
    #[test]
    fn truncated_payloads_all_fail_typed() {
        for cut in 0..VALID.len() {
            let truncated = &VALID[..cut];
            let err = parse_batch(truncated)
                .expect_err(&format!("prefix of {cut} bytes must not decode"));
            assert!(!err.code.is_empty());
            assert!(!err.to_json().is_empty());
        }
    }

    #[test]
    fn nan_arrives_as_null_and_is_rejected_as_non_finite() {
        // serde_json (vendored and real) prints NaN/Inf as null; a
        // decoder that "tolerantly" read NaN here would poison the
        // content key downstream.
        let body = r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":null}]}"#;
        let err = parse_batch(body).unwrap_err();
        assert_eq!(err.code, "non-finite");
        assert_eq!(err.job, Some(0));
        assert!(err.to_json().contains("\"job\":0"), "{}", err.to_json());
    }

    #[test]
    fn duplicate_keys_are_rejected_not_first_wins() {
        let body = r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1.0,"stim_freq_hz":2.0}]}"#;
        let err = parse_batch(body).unwrap_err();
        assert_eq!(err.code, "duplicate-key");
        assert_eq!(err.job, Some(0));
        let outer = r#"{"jobs":[],"jobs":[]}"#;
        assert_eq!(parse_batch(outer).unwrap_err().code, "duplicate-key");
    }

    #[test]
    fn unknown_fields_and_wrong_shapes_are_typed() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1.0,"bogus":1}]}"#,
                "unknown-field",
            ),
            (r#"{"jobs":[{"stim_freq_hz":1.0}]}"#, "missing-field"),
            (
                r#"{"jobs":[{"mapping":"max","stim_freq_hz":1.0}]}"#,
                "bad-type",
            ),
            (
                r#"{"jobs":[{"mapping":["max","idle"],"stim_freq_hz":1.0}]}"#,
                "bad-value",
            ),
            (
                r#"{"jobs":[{"mapping":["max","idle","idle","idle","idle","turbo"],"stim_freq_hz":1.0}]}"#,
                "bad-value",
            ),
            (
                r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":-5.0}]}"#,
                "bad-value",
            ),
            (
                r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1.0,"seed":-3}]}"#,
                "bad-type",
            ),
            (
                r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1.0,"max_steps":0}]}"#,
                "bad-value",
            ),
            (r#"{"jobs":[]}"#, "empty-batch"),
            (r#"{"jobs":[1]}"#, "bad-type"),
            (r#"{"deadline_ms":5}"#, "missing-field"),
            (
                r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1.0}],"deadline_ms":0}"#,
                "bad-value",
            ),
            (
                r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1.0}],"surprise":true}"#,
                "unknown-field",
            ),
            ("[]", "bad-type"),
            ("not json at all", "invalid-json"),
            ("", "invalid-json"),
        ];
        for (body, code) in cases {
            let err = parse_batch(body).unwrap_err();
            assert_eq!(err.code, *code, "body {body:?} gave {err}");
        }
    }

    #[test]
    fn wire_error_json_is_machine_readable() {
        let err = parse_batch(r#"{"jobs":[{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":null}]}"#)
            .unwrap_err();
        let json = err.to_json();
        assert!(json.contains("\"error\":\"invalid-request\""), "{json}");
        assert!(json.contains("\"code\":\"non-finite\""), "{json}");
        assert!(json.contains("\"detail\":"), "{json}");
    }

    const VALID_SIGNAL: &str = r#"{"traces":12,"rejected":1,"peak_freq_hz_p50":2097152,"peak_freq_hz_p95":2097152,"band_power_femto_p50":64,"min_entropy_millibits_p50":1024}"#;

    #[test]
    fn signal_stats_round_trip_through_the_strict_decoder() {
        let stats = parse_signal_stats(VALID_SIGNAL).unwrap();
        assert_eq!(stats.traces, 12);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_freq_hz_p50, Some(1 << 21));
        assert_eq!(stats, parse_signal_stats(&stats.to_json()).unwrap());
        // Same summary, same bytes.
        assert_eq!(
            stats.to_json(),
            parse_signal_stats(&stats.to_json()).unwrap().to_json()
        );
    }

    #[test]
    fn empty_telemetry_omits_quantiles_and_round_trips() {
        let stats = SignalStats::of(&SignalTelemetry::default());
        assert_eq!(stats.traces, 0);
        assert_eq!(stats.peak_freq_hz_p50, None);
        // Absent, not null: the strict decoder would reject null.
        assert_eq!(stats.to_json(), r#"{"traces":0,"rejected":0}"#);
        assert_eq!(stats, parse_signal_stats(&stats.to_json()).unwrap());
    }

    #[test]
    fn populated_telemetry_summarizes_bucket_floors() {
        let mut tel = SignalTelemetry::default();
        tel.record_signature(&voltnoise_pdn::signal::TraceSignature {
            peak_freq_hz: 2.5e6,
            peak_psd: 1e-9,
            band_power: 3e-7,
            min_entropy_bits: 1.5,
        });
        tel.record_rejected();
        let stats = SignalStats::of(&tel);
        assert_eq!(stats.traces, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_freq_hz_p50, Some(1 << 21)); // floor(2.5 MHz)
        assert_eq!(stats.min_entropy_millibits_p50, Some(1 << 10)); // 1500 mb
        assert_eq!(stats, parse_signal_stats(&stats.to_json()).unwrap());
    }

    /// Fuzz-style sweep mirroring [`truncated_payloads_all_fail_typed`]:
    /// every proper prefix of a valid signal section must fail with a
    /// typed error, not a panic or a silent partial decode.
    #[test]
    fn truncated_signal_stats_all_fail_typed() {
        for cut in 0..VALID_SIGNAL.len() {
            let truncated = &VALID_SIGNAL[..cut];
            let err = parse_signal_stats(truncated)
                .expect_err(&format!("prefix of {cut} bytes must not decode"));
            assert!(!err.code.is_empty());
            assert!(!err.to_json().is_empty());
        }
    }

    #[test]
    fn garbage_signal_stats_are_typed() {
        let cases: &[(&str, &str)] = &[
            (r#"{"traces":1,"rejected":0,"bogus":1}"#, "unknown-field"),
            (r#"{"traces":1}"#, "missing-field"),
            (r#"{"rejected":0}"#, "missing-field"),
            (r#"{"traces":-1,"rejected":0}"#, "bad-type"),
            (r#"{"traces":1.5,"rejected":0}"#, "bad-type"),
            (
                r#"{"traces":1,"rejected":0,"peak_freq_hz_p50":null}"#,
                "bad-type",
            ),
            (r#"{"traces":1,"rejected":0,"traces":2}"#, "duplicate-key"),
            (r#"[]"#, "bad-type"),
            (r#""signal""#, "bad-type"),
            ("not json at all", "invalid-json"),
            ("", "invalid-json"),
        ];
        for (body, code) in cases {
            let err = parse_signal_stats(body).unwrap_err();
            assert_eq!(err.code, *code, "body {body:?} gave {err}");
        }
    }

    #[test]
    fn batch_size_cap_is_enforced() {
        let one = r#"{"mapping":["idle","idle","idle","idle","idle","idle"],"stim_freq_hz":1.0}"#;
        let body = format!(
            r#"{{"jobs":[{}]}}"#,
            vec![one; MAX_JOBS_PER_BATCH + 1].join(",")
        );
        assert_eq!(parse_batch(&body).unwrap_err().code, "batch-too-large");
    }
}
