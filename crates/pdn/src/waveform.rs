//! Load-current waveforms for dI/dt stressmarks.
//!
//! A stressmark alternates a high-power and a low-power instruction
//! sequence (paper Fig. 6); electrically that is a trapezoidal square wave
//! of core current. The waveform can free-run (no synchronization, as in
//! Fig. 7a) or emit TOD-synchronized bursts of a configurable number of
//! ΔI events (Figs. 9, 10, 12).

use crate::transient::Drive;
use serde::{Deserialize, Serialize};

/// Synchronization behaviour of a [`StressWaveform`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WaveMode {
    /// Free-running square wave with a fixed initial `phase` (seconds) and
    /// a relative period skew in parts-per-million. The skew models the
    /// slow relative drift of unsynchronized cores, so a sticky-mode
    /// measurement samples many alignment states over a long run.
    FreeRun {
        /// Initial phase offset in seconds.
        phase: f64,
        /// Relative period error in ppm (positive runs slow).
        period_skew_ppm: f64,
    },
    /// TOD-synchronized bursts: at every multiple of `interval`, wait
    /// `offset` seconds (spinning at the idle current in the sync loop),
    /// run `events` ΔI events, then spin until the next boundary.
    Synced {
        /// Synchronization interval (the paper uses 4 ms).
        interval: f64,
        /// Exit offset after the boundary, in seconds (62.5 ns granularity
        /// on the modeled machine, but any value is accepted here).
        offset: f64,
        /// Number of consecutive ΔI events per burst.
        events: u32,
    },
}

/// Trapezoidal square-wave current of one core running a dI/dt stressmark.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::waveform::{StressWaveform, WaveMode};
///
/// let w = StressWaveform {
///     i_low: 5.0,
///     i_high: 25.0,
///     i_idle: 3.0,
///     stim_period: 500e-9, // 2 MHz
///     duty: 0.5,
///     rise_time: 1e-9,
///     mode: WaveMode::FreeRun { phase: 0.0, period_skew_ppm: 0.0 },
/// };
/// // Mid-way through the high half of the first period:
/// assert_eq!(w.value(125e-9), 25.0);
/// // Mid-way through the low half:
/// assert_eq!(w.value(375e-9), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressWaveform {
    /// Current while executing the low-power sequence (amperes).
    pub i_low: f64,
    /// Current while executing the high-power sequence (amperes).
    pub i_high: f64,
    /// Current while idling in the synchronization spin loop.
    pub i_idle: f64,
    /// Stimulus period: time between consecutive ΔI event pairs.
    pub stim_period: f64,
    /// Fraction of the period spent at `i_high`, in `(0, 1)`.
    pub duty: f64,
    /// Ramp time of each transition (seconds).
    pub rise_time: f64,
    /// Synchronization mode.
    pub mode: WaveMode,
}

impl StressWaveform {
    /// The ΔI of one event: `i_high - i_low`.
    pub fn delta_i(&self) -> f64 {
        self.i_high - self.i_low
    }

    /// Effective period after skew (free-run) or the nominal period
    /// (synced).
    pub fn effective_period(&self) -> f64 {
        match self.mode {
            WaveMode::FreeRun {
                period_skew_ppm, ..
            } => self.stim_period * (1.0 + period_skew_ppm * 1e-6),
            WaveMode::Synced { .. } => self.stim_period,
        }
    }

    /// Current value of the raw square pattern at phase `tau` within one
    /// period of length `t_period`.
    fn pattern(&self, tau: f64, t_period: f64) -> f64 {
        let rise = self.rise_time.min(t_period * 0.25);
        let t_high = self.duty * t_period;
        if tau < rise {
            // Rising edge.
            self.i_low + (self.i_high - self.i_low) * (tau / rise)
        } else if tau < t_high {
            self.i_high
        } else if tau < t_high + rise {
            // Falling edge.
            self.i_high + (self.i_low - self.i_high) * ((tau - t_high) / rise)
        } else {
            self.i_low
        }
    }

    /// Instantaneous current at absolute time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match self.mode {
            WaveMode::FreeRun { phase, .. } => {
                let t_period = self.effective_period();
                let tau = (t + phase).rem_euclid(t_period);
                self.pattern(tau, t_period)
            }
            WaveMode::Synced {
                interval,
                offset,
                events,
            } => {
                let t_in = t.rem_euclid(interval) - offset;
                let burst = (events as f64 * self.stim_period).min(interval - offset);
                if t_in < 0.0 || t_in >= burst {
                    self.i_idle
                } else {
                    self.pattern(t_in.rem_euclid(self.stim_period), self.stim_period)
                }
            }
        }
    }

    /// Appends the transition start times in `[t0, t1)` to `out`.
    pub fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
        match self.mode {
            WaveMode::FreeRun { phase, .. } => {
                let t_period = self.effective_period();
                let t_high = self.duty * t_period;
                // First period index whose start is >= t0 - period.
                let k0 = ((t0 + phase) / t_period).floor() as i64 - 1;
                let mut k = k0;
                loop {
                    let start = k as f64 * t_period - phase;
                    if start >= t1 {
                        break;
                    }
                    for e in [start, start + t_high] {
                        if e >= t0 && e < t1 {
                            out.push(e);
                        }
                    }
                    k += 1;
                }
            }
            WaveMode::Synced {
                interval,
                offset,
                events,
            } => {
                let burst = (events as f64 * self.stim_period).min(interval - offset);
                let n_events = (burst / self.stim_period).ceil() as u32;
                let k0 = (t0 / interval).floor() as i64 - 1;
                let mut k = k0.max(0);
                loop {
                    let base = k as f64 * interval + offset;
                    if base >= t1 {
                        break;
                    }
                    for e in 0..n_events {
                        let rise = base + e as f64 * self.stim_period;
                        let fall = rise + self.duty * self.stim_period;
                        for edge in [rise, fall] {
                            if edge >= t0 && edge < t1 && edge < base + burst {
                                out.push(edge);
                            }
                        }
                    }
                    k += 1;
                }
            }
        }
    }
}

/// Per-core waveform of a multi-core drive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoreWaveform {
    /// A fixed current (idle core or steady workload).
    Constant(f64),
    /// A dI/dt stressmark square wave.
    Stress(StressWaveform),
}

impl CoreWaveform {
    /// Instantaneous current at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            CoreWaveform::Constant(i) => *i,
            CoreWaveform::Stress(w) => w.value(t),
        }
    }

    /// ΔI of this waveform (zero for constants).
    pub fn delta_i(&self) -> f64 {
        match self {
            CoreWaveform::Constant(_) => 0.0,
            CoreWaveform::Stress(w) => w.delta_i(),
        }
    }
}

/// A [`Drive`] mapping one [`CoreWaveform`] to each current source, in
/// source order.
#[derive(Debug, Clone)]
pub struct MultiCoreDrive {
    waves: Vec<CoreWaveform>,
}

impl MultiCoreDrive {
    /// Creates the drive; `waves[k]` feeds source `k`.
    pub fn new(waves: Vec<CoreWaveform>) -> Self {
        MultiCoreDrive { waves }
    }

    /// The per-core waveforms.
    pub fn waves(&self) -> &[CoreWaveform] {
        &self.waves
    }
}

impl Drive for MultiCoreDrive {
    fn currents(&self, t: f64, out: &mut [f64]) {
        for (o, w) in out.iter_mut().zip(&self.waves) {
            *o = w.value(t);
        }
    }

    fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
        for w in &self.waves {
            if let CoreWaveform::Stress(s) = w {
                s.edges(t0, t1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(mode: WaveMode) -> StressWaveform {
        StressWaveform {
            i_low: 4.0,
            i_high: 20.0,
            i_idle: 2.0,
            stim_period: 500e-9,
            duty: 0.5,
            rise_time: 1e-9,
            mode,
        }
    }

    #[test]
    fn freerun_levels_and_ramp() {
        let w = wave(WaveMode::FreeRun {
            phase: 0.0,
            period_skew_ppm: 0.0,
        });
        assert_eq!(w.value(0.0), 4.0); // ramp start
        assert_eq!(w.value(0.5e-9), 12.0); // mid-ramp
        assert_eq!(w.value(100e-9), 20.0);
        assert_eq!(w.value(400e-9), 4.0);
        // Periodicity.
        assert!((w.value(100e-9) - w.value(100e-9 + 500e-9)).abs() < 1e-12);
    }

    #[test]
    fn phase_shifts_waveform() {
        let w0 = wave(WaveMode::FreeRun {
            phase: 0.0,
            period_skew_ppm: 0.0,
        });
        let w1 = wave(WaveMode::FreeRun {
            phase: 250e-9,
            period_skew_ppm: 0.0,
        });
        assert!((w1.value(0.0) - w0.value(250e-9)).abs() < 1e-12);
    }

    #[test]
    fn skew_changes_effective_period() {
        let w = wave(WaveMode::FreeRun {
            phase: 0.0,
            period_skew_ppm: 1000.0,
        });
        assert!((w.effective_period() - 500.5e-9).abs() < 1e-15);
    }

    #[test]
    fn synced_idles_outside_burst() {
        let w = wave(WaveMode::Synced {
            interval: 4e-3,
            offset: 0.0,
            events: 4,
        });
        // Burst covers 4 * 500 ns = 2 us; idle afterwards.
        assert_eq!(w.value(100e-9), 20.0);
        assert_eq!(w.value(3e-6), 2.0);
        // Next interval restarts the burst.
        assert_eq!(w.value(4e-3 + 100e-9), 20.0);
    }

    #[test]
    fn synced_offset_delays_burst() {
        let w = wave(WaveMode::Synced {
            interval: 4e-3,
            offset: 62.5e-9,
            events: 4,
        });
        assert_eq!(w.value(10e-9), 2.0); // still spinning
        assert_eq!(w.value(62.5e-9 + 100e-9), 20.0);
    }

    #[test]
    fn freerun_edges_cover_all_transitions() {
        let w = wave(WaveMode::FreeRun {
            phase: 0.0,
            period_skew_ppm: 0.0,
        });
        let mut edges = Vec::new();
        w.edges(0.0, 2e-6, &mut edges);
        // 4 periods * 2 edges.
        assert_eq!(edges.len(), 8);
        assert!(edges.iter().all(|&e| (0.0..2e-6).contains(&e)));
    }

    #[test]
    fn synced_edges_limited_to_burst() {
        let w = wave(WaveMode::Synced {
            interval: 4e-3,
            offset: 0.0,
            events: 3,
        });
        let mut edges = Vec::new();
        w.edges(0.0, 4e-3, &mut edges);
        assert_eq!(edges.len(), 6);
    }

    #[test]
    fn edge_times_match_value_discontinuity_regions() {
        let w = wave(WaveMode::FreeRun {
            phase: 130e-9,
            period_skew_ppm: 0.0,
        });
        let mut edges = Vec::new();
        w.edges(0.0, 1e-6, &mut edges);
        for &e in &edges {
            let before = w.value(e - 0.1e-9);
            let after = w.value(e + w.rise_time + 0.1e-9);
            assert!(
                (before - after).abs() > 1.0,
                "edge at {e} does not separate levels ({before} vs {after})"
            );
        }
    }

    #[test]
    fn multicore_drive_maps_sources() {
        let d = MultiCoreDrive::new(vec![
            CoreWaveform::Constant(1.5),
            CoreWaveform::Stress(wave(WaveMode::FreeRun {
                phase: 0.0,
                period_skew_ppm: 0.0,
            })),
        ]);
        let mut out = vec![0.0; 2];
        d.currents(100e-9, &mut out);
        assert_eq!(out, vec![1.5, 20.0]);
        let mut edges = Vec::new();
        d.edges(0.0, 1e-6, &mut edges);
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn delta_i_reported() {
        assert_eq!(
            wave(WaveMode::FreeRun {
                phase: 0.0,
                period_skew_ppm: 0.0
            })
            .delta_i(),
            16.0
        );
        assert_eq!(CoreWaveform::Constant(3.0).delta_i(), 0.0);
    }
}

/// Plays a sampled per-core current trace (e.g. a cycle-accurate trace
/// from a core simulator) through the PDN, looping it to fill the
/// simulated window.
///
/// This is the high-fidelity alternative to [`StressWaveform`]'s
/// piecewise abstraction: the workspace uses it to validate that the
/// square-wave model of a stressmark produces the same droop envelope as
/// the instruction-level current trace it abstracts.
#[derive(Debug, Clone)]
pub struct TracePlayback {
    traces: Vec<Vec<f64>>,
    dt: f64,
    edge_threshold: f64,
}

impl TracePlayback {
    /// Creates a playback drive: `traces[k]` feeds source `k`, each
    /// sampled every `dt` seconds and looped. `edge_threshold` (amperes)
    /// sets how large a sample-to-sample step must be to count as a
    /// dI/dt edge for timestep refinement.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive or any trace is empty.
    pub fn new(traces: Vec<Vec<f64>>, dt: f64, edge_threshold: f64) -> Self {
        assert!(dt > 0.0, "sample period must be positive");
        assert!(
            traces.iter().all(|t| !t.is_empty()),
            "traces must be non-empty"
        );
        TracePlayback {
            traces,
            dt,
            edge_threshold,
        }
    }

    /// Duration of one loop of trace `k`.
    pub fn loop_duration(&self, k: usize) -> f64 {
        self.traces[k].len() as f64 * self.dt
    }
}

impl Drive for TracePlayback {
    fn currents(&self, t: f64, out: &mut [f64]) {
        for (o, trace) in out.iter_mut().zip(&self.traces) {
            let idx = ((t / self.dt) as usize) % trace.len();
            *o = trace[idx];
        }
    }

    fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
        for trace in &self.traces {
            let period = trace.len() as f64 * self.dt;
            // Edge offsets within one loop.
            let mut offsets = Vec::new();
            for i in 1..trace.len() {
                if (trace[i] - trace[i - 1]).abs() >= self.edge_threshold {
                    offsets.push(i as f64 * self.dt);
                }
            }
            if offsets.is_empty() {
                continue;
            }
            let k0 = (t0 / period).floor().max(0.0) as u64;
            let mut k = k0;
            loop {
                let base = k as f64 * period;
                if base >= t1 {
                    break;
                }
                for &off in &offsets {
                    let e = base + off;
                    if e >= t0 && e < t1 {
                        out.push(e);
                    }
                }
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    fn playback() -> TracePlayback {
        // 10 samples: low for 5, high for 5, 1 ns sampling.
        let trace = vec![5.0, 5.0, 5.0, 5.0, 5.0, 20.0, 20.0, 20.0, 20.0, 20.0];
        TracePlayback::new(vec![trace], 1e-9, 5.0)
    }

    #[test]
    fn playback_loops_samples() {
        let p = playback();
        let mut out = [0.0];
        p.currents(0.0, &mut out);
        assert_eq!(out[0], 5.0);
        p.currents(5.5e-9, &mut out);
        assert_eq!(out[0], 20.0);
        // One full loop later, same value.
        p.currents(15.5e-9, &mut out);
        assert_eq!(out[0], 20.0);
        assert!((p.loop_duration(0) - 10e-9).abs() < 1e-18);
    }

    #[test]
    fn playback_reports_edges_per_loop() {
        let p = playback();
        let mut edges = Vec::new();
        p.edges(0.0, 30e-9, &mut edges);
        // One rising edge per 10 ns loop (the wrap-around fall is at the
        // loop boundary sample 0, whose predecessor is sample 9 — not
        // scanned), so 3 loops -> 3 edges.
        assert_eq!(edges.len(), 3);
        assert!((edges[0] - 5e-9).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "sample period must be positive")]
    fn rejects_bad_dt() {
        let _ = TracePlayback::new(vec![vec![1.0]], 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "traces must be non-empty")]
    fn rejects_empty_trace() {
        let _ = TracePlayback::new(vec![vec![]], 1e-9, 1.0);
    }
}
