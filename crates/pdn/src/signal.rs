//! Streaming spectral and entropy analysis of voltage-noise traces.
//!
//! This module turns transient scope traces into *signals*: an
//! iterative radix-2 FFT, streaming Welch power-spectral-density
//! estimation with an associative merge (so partial periodograms
//! compose the same way [`voltnoise_system`-style] telemetry
//! histograms do), windowed autocorrelation, and an
//! NIST-SP800-90B-style entropy estimator battery (most-common-value
//! and Markov min-entropy, repetition-count and adaptive-proportion
//! health checks) over quantized samples.
//!
//! # Determinism and the streaming merge contract
//!
//! Welch accumulation is performed in **fixed-point**: each segment's
//! periodogram bin is converted to an integer count of `2^-60` units
//! and accumulated into a `u128` per bin. Integer addition is exact,
//! so merging partial periodograms is associative, commutative, and
//! bitwise reproducible — any segmentation of a trace into streaming
//! chunks, and any merge tree over partial accumulators, yields the
//! identical final PSD bits. The float result is only materialized at
//! read time ([`WelchPsd::psd`]). The `2^-60` quantum is ~8.7e-19,
//! far below the `f64` noise floor of any periodogram this crate
//! produces, so the quantization is invisible at the precision the
//! analytic ground-truth tests demand.
//!
//! Non-finite samples are the caller's responsibility (the engine
//! validates traces before they reach this module); a NaN periodogram
//! value saturates to zero counts rather than poisoning the
//! accumulator.

use crate::error::PdnError;
use serde::{Deserialize, Serialize};

/// Fixed-point scale for Welch accumulation: one count is `2^-60`.
const PSD_SCALE: f64 = 1152921504606846976.0; // 2^60

/// False-positive rate exponent for the SP800-90B health checks:
/// `alpha = 2^-20`, the value the spec recommends for continuous
/// monitoring.
const HEALTH_ALPHA_EXP: f64 = 20.0;

/// Window length of the adaptive-proportion health check (SP800-90B
/// §4.4.2, non-binary cutoff table's window).
pub const ADAPTIVE_WINDOW: usize = 512;

fn signal_err(reason: impl Into<String>) -> PdnError {
    PdnError::Signal {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// FFT
// ---------------------------------------------------------------------------

/// Shared radix-2 Cooley–Tukey kernel. `sign` is `-1.0` for the
/// forward transform and `+1.0` for the inverse (no scaling here).
fn transform(re: &mut [f64], im: &mut [f64], sign: f64) -> Result<(), PdnError> {
    let n = re.len();
    if n != im.len() {
        return Err(signal_err(format!(
            "fft real/imag length mismatch: {} vs {}",
            n,
            im.len()
        )));
    }
    if n == 0 || !n.is_power_of_two() {
        return Err(signal_err(format!("fft length {n} is not a power of two")));
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Iterative butterflies. Twiddles are computed directly from the
    // angle (not by recurrence) so round-off does not accumulate with
    // transform size; the Parseval property tests hold to 1e-9
    // relative because of this.
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let ang_step = sign * std::f64::consts::TAU / len as f64;
        let mut i = 0usize;
        while i < n {
            for k in 0..half {
                let ang = ang_step * k as f64;
                let (wi, wr) = ang.sin_cos();
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + half] * wr - im[i + k + half] * wi,
                    re[i + k + half] * wi + im[i + k + half] * wr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + half] = ur - vr;
                im[i + k + half] = ui - vi;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// In-place forward FFT of a complex sequence held as parallel
/// real/imaginary slices. Length must be a power of two.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] if the slices differ in length or the
/// length is not a power of two.
pub fn fft_in_place(re: &mut [f64], im: &mut [f64]) -> Result<(), PdnError> {
    transform(re, im, -1.0)
}

/// In-place inverse FFT (including the `1/n` scaling), the exact
/// round-trip partner of [`fft_in_place`].
///
/// # Errors
///
/// Returns [`PdnError::Signal`] under the same conditions as
/// [`fft_in_place`].
pub fn ifft_in_place(re: &mut [f64], im: &mut [f64]) -> Result<(), PdnError> {
    transform(re, im, 1.0)?;
    let inv = 1.0 / re.len() as f64;
    for v in re.iter_mut() {
        *v *= inv;
    }
    for v in im.iter_mut() {
        *v *= inv;
    }
    Ok(())
}

/// Forward FFT of a real signal: returns `(re, im)` spectra of the
/// same (power-of-two) length as the input.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] if the length is not a power of two.
pub fn rfft(samples: &[f64]) -> Result<(Vec<f64>, Vec<f64>), PdnError> {
    let mut re = samples.to_vec();
    let mut im = vec![0.0; samples.len()];
    fft_in_place(&mut re, &mut im)?;
    Ok((re, im))
}

// ---------------------------------------------------------------------------
// Windows
// ---------------------------------------------------------------------------

/// The periodic Hann window of length `n`:
/// `w[i] = 0.5 * (1 - cos(2 pi i / n))`.
///
/// The periodic (DFT-even) form is the right one for spectral
/// averaging; its DC gain `sum(w)/n` is exactly `1/2` and its power
/// gain `sum(w^2)/n` exactly `3/8` in exact arithmetic — the window
/// normalization property tests pin both.
pub fn hann_window(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.5 * (1.0 - (std::f64::consts::TAU * i as f64 / n as f64).cos()))
        .collect()
}

/// The DC (coherent) gain of a window: `sum(w) / len`.
pub fn window_dc_gain(w: &[f64]) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    w.iter().sum::<f64>() / w.len() as f64
}

/// The power (incoherent) gain of a window: `sum(w^2) / len`. Welch
/// periodograms divide by this so a window never biases total power.
pub fn window_power_gain(w: &[f64]) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    w.iter().map(|v| v * v).sum::<f64>() / w.len() as f64
}

// ---------------------------------------------------------------------------
// Welch PSD
// ---------------------------------------------------------------------------

/// Welch estimator configuration. Two accumulators merge only if
/// their configurations are identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelchConfig {
    /// Samples per segment; must be a power of two ≥ 4.
    pub segment_len: usize,
    /// Samples shared between consecutive segments (`< segment_len`).
    pub overlap: usize,
    /// Sample rate of the (uniformly sampled) input, in Hz.
    pub sample_rate_hz: f64,
}

impl WelchConfig {
    /// A config with the conventional 50% overlap.
    pub fn half_overlap(segment_len: usize, sample_rate_hz: f64) -> WelchConfig {
        WelchConfig {
            segment_len,
            overlap: segment_len / 2,
            sample_rate_hz,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Signal`] for a non-power-of-two or
    /// too-short segment, an overlap ≥ the segment, or a non-finite /
    /// non-positive sample rate.
    pub fn validate(&self) -> Result<(), PdnError> {
        if self.segment_len < 4 || !self.segment_len.is_power_of_two() {
            return Err(signal_err(format!(
                "segment length {} is not a power of two >= 4",
                self.segment_len
            )));
        }
        if self.overlap >= self.segment_len {
            return Err(signal_err(format!(
                "overlap {} must be smaller than segment length {}",
                self.overlap, self.segment_len
            )));
        }
        if !(self.sample_rate_hz.is_finite() && self.sample_rate_hz > 0.0) {
            return Err(signal_err(format!(
                "sample rate {} must be finite and positive",
                self.sample_rate_hz
            )));
        }
        Ok(())
    }

    /// Samples the stream advances between segments.
    pub fn step(&self) -> usize {
        self.segment_len - self.overlap
    }

    /// Number of one-sided PSD bins (`segment_len / 2 + 1`).
    pub fn bins(&self) -> usize {
        self.segment_len / 2 + 1
    }

    /// Width of one PSD bin in Hz.
    pub fn bin_hz(&self) -> f64 {
        self.sample_rate_hz / self.segment_len as f64
    }
}

/// A merged partial Welch periodogram: fixed-point one-sided PSD sums
/// plus the segment count. This is the *mergeable* object — see the
/// module docs for the exactness contract.
#[derive(Debug, Clone, PartialEq)]
pub struct WelchPsd {
    cfg: WelchConfig,
    /// Per-bin sums of one-sided periodogram values, in `2^-60` units.
    bins: Vec<u128>,
    segments: u64,
}

impl WelchPsd {
    /// An empty accumulator for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Signal`] if `cfg` is invalid.
    pub fn new(cfg: WelchConfig) -> Result<WelchPsd, PdnError> {
        cfg.validate()?;
        Ok(WelchPsd {
            cfg,
            bins: vec![0u128; cfg.bins()],
            segments: 0,
        })
    }

    /// The configuration this accumulator was built with.
    pub fn config(&self) -> &WelchConfig {
        &self.cfg
    }

    /// Segments averaged so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Raw fixed-point bin sums (exact; for bitwise comparisons).
    pub fn fixed_bins(&self) -> &[u128] {
        &self.bins
    }

    /// Merges another partial periodogram into this one. Element-wise
    /// saturating integer addition: associative, commutative, and
    /// segment-count-preserving (saturation is unreachable for any
    /// physical trace; it would take ~10^18 full-scale segments).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Signal`] when the configurations differ —
    /// periodograms from different segmentations are not comparable.
    pub fn merge(&mut self, other: &WelchPsd) -> Result<(), PdnError> {
        if self.cfg != other.cfg {
            return Err(signal_err(
                "cannot merge Welch accumulators with different configs",
            ));
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a = a.saturating_add(*b);
        }
        self.segments = self.segments.saturating_add(other.segments);
        Ok(())
    }

    /// The averaged one-sided PSD in V²/Hz (empty if no segment has
    /// completed). `sum(psd) * bin_hz` estimates the windowed signal's
    /// mean power.
    pub fn psd(&self) -> Vec<f64> {
        if self.segments == 0 {
            return vec![0.0; self.bins.len()];
        }
        let inv = 1.0 / (PSD_SCALE * self.segments as f64);
        self.bins.iter().map(|&b| b as f64 * inv).collect()
    }

    /// The strongest non-DC bin as `(freq_hz, psd_value)`, or `None`
    /// when no segment has completed.
    pub fn peak(&self) -> Option<(f64, f64)> {
        if self.segments == 0 {
            return None;
        }
        let psd = self.psd();
        let df = self.cfg.bin_hz();
        psd.iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, &v)| (k as f64 * df, v))
    }

    /// The strongest bin whose center frequency lies in
    /// `[f_lo_hz, f_hi_hz]` (DC excluded), as `(freq_hz, psd_value)`.
    /// Traces that include a turn-on transient carry large drift
    /// energy in the first bins, so resonance hunting restricts the
    /// search to the band of interest.
    pub fn peak_in_band(&self, f_lo_hz: f64, f_hi_hz: f64) -> Option<(f64, f64)> {
        if self.segments == 0 {
            return None;
        }
        let df = self.cfg.bin_hz();
        let psd = self.psd();
        psd.iter()
            .enumerate()
            .skip(1)
            .filter(|(k, _)| {
                let f = *k as f64 * df;
                f >= f_lo_hz && f <= f_hi_hz
            })
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, &v)| (k as f64 * df, v))
    }

    /// Total power in the band `[f_lo_hz, f_hi_hz]` (inclusive of bins
    /// whose center frequency falls in the band), in V².
    pub fn band_power(&self, f_lo_hz: f64, f_hi_hz: f64) -> f64 {
        let df = self.cfg.bin_hz();
        self.psd()
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = *k as f64 * df;
                f >= f_lo_hz && f <= f_hi_hz
            })
            .map(|(_, &v)| v * df)
            .sum()
    }

    /// Half-power quality factor of the strongest peak: the peak
    /// frequency divided by the width of the interval where the PSD
    /// stays above half the peak value (linearly interpolated at the
    /// crossings). `None` when there is no usable peak or the peak
    /// never falls to half power inside the spectrum.
    pub fn q_factor(&self) -> Option<f64> {
        let psd = self.psd();
        let df = self.cfg.bin_hz();
        let (k_peak, &v_peak) = psd
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        if v_peak <= 0.0 {
            return None;
        }
        let half = v_peak / 2.0;
        // Walk left and right until the PSD drops below half power,
        // interpolating the crossing between bins.
        let crossing = |mut k: usize, step: isize| -> Option<f64> {
            loop {
                let next = k as isize + step;
                if next < 0 || next as usize >= psd.len() {
                    return None;
                }
                let nk = next as usize;
                if psd[nk] <= half {
                    let frac = (psd[k] - half) / (psd[k] - psd[nk]);
                    return Some((k as f64 + frac * step as f64) * df);
                }
                k = nk;
            }
        };
        let f_lo = crossing(k_peak, -1)?;
        let f_hi = crossing(k_peak, 1)?;
        let width = f_hi - f_lo;
        if width > 0.0 {
            Some(k_peak as f64 * df / width)
        } else {
            None
        }
    }
}

/// Streaming Welch front-end over one contiguous sample stream. Feed
/// chunks of any size with [`WelchStream::push`]; complete segments
/// are periodogrammed as they fill, so any chunking of the same
/// stream produces the identical accumulator bits.
#[derive(Debug, Clone)]
pub struct WelchStream {
    psd: WelchPsd,
    window: Vec<f64>,
    /// Per-bin periodogram scale: `(1 or 2) / (fs * sum(w^2))`.
    scale: Vec<f64>,
    buf: Vec<f64>,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl WelchStream {
    /// An empty stream for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Signal`] if `cfg` is invalid.
    pub fn new(cfg: WelchConfig) -> Result<WelchStream, PdnError> {
        let psd = WelchPsd::new(cfg)?;
        let window = hann_window(cfg.segment_len);
        let wpow: f64 = window.iter().map(|v| v * v).sum();
        let base = 1.0 / (cfg.sample_rate_hz * wpow);
        let bins = cfg.bins();
        let scale = (0..bins)
            .map(|k| {
                // One-sided folding doubles interior bins; DC and
                // Nyquist appear once.
                if k == 0 || k == bins - 1 {
                    base
                } else {
                    2.0 * base
                }
            })
            .collect();
        Ok(WelchStream {
            psd,
            window,
            scale,
            buf: Vec::new(),
            re: vec![0.0; cfg.segment_len],
            im: vec![0.0; cfg.segment_len],
        })
    }

    /// Appends samples, folding every segment that completes into the
    /// accumulator.
    pub fn push(&mut self, samples: &[f64]) {
        self.buf.extend_from_slice(samples);
        let seg = self.psd.cfg.segment_len;
        let step = self.psd.cfg.step();
        while self.buf.len() >= seg {
            // self.buf[..seg] is a full segment by the loop guard; the
            // helper never fails because lengths were fixed at new().
            Self::accumulate_segment(
                &mut self.psd,
                &self.window,
                &self.scale,
                &mut self.re,
                &mut self.im,
                &self.buf[..seg],
            );
            self.buf.drain(..step);
        }
    }

    /// Samples currently buffered waiting for a full segment.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Finishes the stream, discarding any partial trailing segment
    /// (Welch averages whole segments only), and returns the
    /// mergeable accumulator.
    pub fn finish(self) -> WelchPsd {
        self.psd
    }

    fn accumulate_segment(
        psd: &mut WelchPsd,
        window: &[f64],
        scale: &[f64],
        re: &mut [f64],
        im: &mut [f64],
        segment: &[f64],
    ) {
        for ((r, s), w) in re.iter_mut().zip(segment).zip(window) {
            *r = s * w;
        }
        for v in im.iter_mut() {
            *v = 0.0;
        }
        // Infallible: lengths are powers of two fixed at construction.
        if transform(re, im, -1.0).is_err() {
            return;
        }
        for (k, (b, sc)) in psd.bins.iter_mut().zip(scale).enumerate() {
            let p = (re[k] * re[k] + im[k] * im[k]) * sc;
            // NaN and negatives saturate to 0; huge values clamp.
            *b = b.saturating_add((p * PSD_SCALE) as u128);
        }
        psd.segments = psd.segments.saturating_add(1);
    }
}

/// Batch Welch PSD of a full in-memory signal. Arithmetic, segment
/// order, and accumulation are identical to [`WelchStream`], so the
/// result is bitwise equal to streaming the same samples in any
/// chunking — the batch path merely avoids the stream's buffering.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] if `cfg` is invalid.
pub fn welch_psd(samples: &[f64], cfg: WelchConfig) -> Result<WelchPsd, PdnError> {
    let mut stream = WelchStream::new(cfg)?;
    let seg = cfg.segment_len;
    let step = cfg.step();
    let mut start = 0usize;
    while start + seg <= samples.len() {
        WelchStream::accumulate_segment(
            &mut stream.psd,
            &stream.window,
            &stream.scale,
            &mut stream.re,
            &mut stream.im,
            &samples[start..start + seg],
        );
        start += step;
    }
    Ok(stream.psd)
}

// ---------------------------------------------------------------------------
// Autocorrelation
// ---------------------------------------------------------------------------

/// Biased, normalized autocorrelation of a (mean-removed) window:
/// `r[k] = sum(d[i] d[i+k]) / sum(d[i]^2)` for `k` in `0..=max_lag`,
/// so `r[0] == 1`.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] for an empty input, `max_lag >= len`,
/// or a zero-variance (constant) window, whose autocorrelation is
/// undefined.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Result<Vec<f64>, PdnError> {
    if x.is_empty() {
        return Err(signal_err("autocorrelation of an empty window"));
    }
    if max_lag >= x.len() {
        return Err(signal_err(format!(
            "max lag {} must be smaller than window length {}",
            max_lag,
            x.len()
        )));
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    let d: Vec<f64> = x.iter().map(|v| v - mean).collect();
    let r0: f64 = d.iter().map(|v| v * v).sum();
    if !r0.is_finite() || r0 <= 0.0 {
        return Err(signal_err(
            "autocorrelation of a constant (zero-variance) window is undefined",
        ));
    }
    Ok((0..=max_lag)
        .map(|k| d.iter().zip(&d[k..]).map(|(a, b)| a * b).sum::<f64>() / r0)
        .collect())
}

// ---------------------------------------------------------------------------
// Resampling and band filtering
// ---------------------------------------------------------------------------

/// Linearly resamples a (strictly-increasing, possibly non-uniform)
/// `(times, values)` trace onto a uniform `n`-point grid spanning the
/// same interval. Returns `(sample_rate_hz, samples)`. The adaptive
/// transient solver emits two-rate timestamps, so every spectral path
/// resamples before transforming.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] for mismatched or too-short inputs,
/// `n < 2`, non-finite times, or non-increasing times.
pub fn resample_uniform(
    times: &[f64],
    values: &[f64],
    n: usize,
) -> Result<(f64, Vec<f64>), PdnError> {
    if times.len() != values.len() {
        return Err(signal_err(format!(
            "times/values length mismatch: {} vs {}",
            times.len(),
            values.len()
        )));
    }
    if times.len() < 2 {
        return Err(signal_err("resampling needs at least two samples"));
    }
    if n < 2 {
        return Err(signal_err("resampling needs at least two output points"));
    }
    for w in times.windows(2) {
        if !w[0].is_finite() || !w[1].is_finite() || w[1] <= w[0] {
            return Err(signal_err(
                "trace times must be finite and strictly increasing",
            ));
        }
    }
    let t0 = times[0];
    let t1 = times[times.len() - 1];
    let dt = (t1 - t0) / (n - 1) as f64;
    let mut out = Vec::with_capacity(n);
    let mut j = 0usize;
    for i in 0..n {
        let t = if i == n - 1 { t1 } else { t0 + dt * i as f64 };
        while j + 2 < times.len() && times[j + 1] < t {
            j += 1;
        }
        let (ta, tb) = (times[j], times[j + 1]);
        let frac = ((t - ta) / (tb - ta)).clamp(0.0, 1.0);
        out.push(values[j] + frac * (values[j + 1] - values[j]));
    }
    Ok((1.0 / dt, out))
}

/// Zero-phase brick-wall band-pass: FFT (zero-padded to the next
/// power of two), zero every bin whose frequency lies outside
/// `[f_lo_hz, f_hi_hz]`, inverse FFT, truncate to the input length.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] for an empty input or a non-positive
/// sample rate.
pub fn band_filter(
    samples: &[f64],
    sample_rate_hz: f64,
    f_lo_hz: f64,
    f_hi_hz: f64,
) -> Result<Vec<f64>, PdnError> {
    if samples.is_empty() {
        return Err(signal_err("band filter of an empty signal"));
    }
    if !(sample_rate_hz.is_finite() && sample_rate_hz > 0.0) {
        return Err(signal_err("band filter needs a positive sample rate"));
    }
    let m = samples.len().next_power_of_two();
    let mut re = samples.to_vec();
    re.resize(m, 0.0);
    let mut im = vec![0.0; m];
    fft_in_place(&mut re, &mut im)?;
    let df = sample_rate_hz / m as f64;
    for k in 0..m {
        let f = if k <= m / 2 { k } else { m - k } as f64 * df;
        if f < f_lo_hz || f > f_hi_hz {
            re[k] = 0.0;
            im[k] = 0.0;
        }
    }
    ifft_in_place(&mut re, &mut im)?;
    re.truncate(samples.len());
    Ok(re)
}

// ---------------------------------------------------------------------------
// Quantization and SP800-90B-style entropy estimators
// ---------------------------------------------------------------------------

/// Quantizes samples into `2^bits` uniform levels spanning the
/// sample min–max range (`bits` in `1..=8`). A constant signal maps
/// to all zeros.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] for an empty input, `bits` outside
/// `1..=8`, or non-finite samples.
pub fn quantize(x: &[f64], bits: u32) -> Result<Vec<u8>, PdnError> {
    if x.is_empty() {
        return Err(signal_err("quantizing an empty signal"));
    }
    if bits == 0 || bits > 8 {
        return Err(signal_err(format!("quantizer width {bits} must be 1..=8")));
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in x {
        if !v.is_finite() {
            return Err(signal_err("quantizing a non-finite sample"));
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let levels = 1u32 << bits;
    if hi <= lo {
        return Ok(vec![0u8; x.len()]);
    }
    let scale = levels as f64 / (hi - lo);
    Ok(x.iter()
        .map(|&v| (((v - lo) * scale) as u32).min(levels - 1) as u8)
        .collect())
}

/// SP800-90B §6.3.1 most-common-value min-entropy estimate, in
/// bits/sample: `-log2(p_u)` where `p_u` is the 99% upper confidence
/// bound on the most common symbol's probability.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] for fewer than two symbols.
pub fn mcv_min_entropy(sym: &[u8]) -> Result<f64, PdnError> {
    if sym.len() < 2 {
        return Err(signal_err("MCV estimator needs at least two symbols"));
    }
    let mut counts = [0u64; 256];
    for &s in sym {
        counts[s as usize] += 1;
    }
    let n = sym.len() as f64;
    let c_max = counts.iter().copied().max().unwrap_or(0) as f64;
    let p_hat = c_max / n;
    let p_u = (p_hat + 2.576 * (p_hat * (1.0 - p_hat) / (n - 1.0)).sqrt()).min(1.0);
    Ok((-p_u.log2()).max(0.0))
}

/// SP800-90B §6.3.3-style Markov min-entropy estimate generalized to
/// the observed alphabet: the min-entropy per sample implied by the
/// most probable length-128 path through the empirical first-order
/// Markov chain, capped at `log2(alphabet)` bits.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] for fewer than two symbols.
pub fn markov_min_entropy(sym: &[u8]) -> Result<f64, PdnError> {
    const PATH_LEN: usize = 128;
    if sym.len() < 2 {
        return Err(signal_err("Markov estimator needs at least two symbols"));
    }
    // Dense re-indexing of the observed alphabet.
    let mut index = [usize::MAX; 256];
    let mut k = 0usize;
    for &s in sym {
        if index[s as usize] == usize::MAX {
            index[s as usize] = k;
            k += 1;
        }
    }
    if k == 1 {
        return Ok(0.0);
    }
    let mut initial = vec![0u64; k];
    let mut trans = vec![0u64; k * k];
    for &s in sym {
        initial[index[s as usize]] += 1;
    }
    for w in sym.windows(2) {
        trans[index[w[0] as usize] * k + index[w[1] as usize]] += 1;
    }
    let n = sym.len() as f64;
    // log2 probabilities; empty transition rows stay -inf.
    let log_init: Vec<f64> = initial.iter().map(|&c| (c as f64 / n).log2()).collect();
    let log_trans: Vec<f64> = (0..k * k)
        .map(|ij| {
            let row: u64 = trans[ij / k * k..ij / k * k + k].iter().sum();
            if row == 0 {
                f64::NEG_INFINITY
            } else {
                (trans[ij] as f64 / row as f64).log2()
            }
        })
        .collect();
    // Most probable length-PATH_LEN path, by dynamic programming.
    let mut best = log_init;
    for _ in 1..PATH_LEN {
        let mut next = vec![f64::NEG_INFINITY; k];
        for (j, nj) in next.iter_mut().enumerate() {
            for i in 0..k {
                let cand = best[i] + log_trans[i * k + j];
                if cand > *nj {
                    *nj = cand;
                }
            }
        }
        best = next;
    }
    let log_p_max = best.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let h = if log_p_max.is_finite() {
        -log_p_max / PATH_LEN as f64
    } else {
        (k as f64).log2()
    };
    Ok(h.clamp(0.0, (k as f64).log2()))
}

/// SP800-90B §4.4.1 repetition-count health check at `alpha = 2^-20`:
/// fails (returns `false`) if any symbol repeats for at least
/// `1 + ceil(20 / h_bits)` consecutive samples. A non-positive
/// entropy claim makes the cutoff unbounded, so the check passes
/// vacuously — a weak claim gets a weak check, as in the spec.
pub fn repetition_count_ok(sym: &[u8], h_bits: f64) -> bool {
    if sym.len() < 2 || h_bits.is_nan() || h_bits <= 0.0 {
        return true;
    }
    let cutoff = 1.0 + (HEALTH_ALPHA_EXP / h_bits).ceil();
    let mut run = 1u64;
    for w in sym.windows(2) {
        run = if w[0] == w[1] { run + 1 } else { 1 };
        if run as f64 >= cutoff {
            return false;
        }
    }
    true
}

/// Smallest cutoff `c` with `P[Binomial(w, p) >= c] < 2^-20`,
/// computed from the exact binomial tail in log space.
fn binomial_cutoff(w: usize, p: f64) -> usize {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    let alpha = (2.0f64).powi(-20);
    // ln(k!) by direct summation; w is small (the 512-sample window).
    let mut ln_fact = vec![0.0f64; w + 1];
    for k in 1..=w {
        ln_fact[k] = ln_fact[k - 1] + (k as f64).ln();
    }
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln();
    let mut tail = 0.0f64;
    for k in (0..=w).rev() {
        let ln_pmf =
            ln_fact[w] - ln_fact[k] - ln_fact[w - k] + k as f64 * ln_p + (w - k) as f64 * ln_q;
        tail += ln_pmf.exp();
        if tail >= alpha {
            return k + 1;
        }
    }
    1
}

/// SP800-90B §4.4.2 adaptive-proportion health check at
/// `alpha = 2^-20` over non-overlapping [`ADAPTIVE_WINDOW`]-sample
/// windows: fails if the first symbol of any window occurs at least
/// `binomial_cutoff(W, 2^-h)` times within it. Passes vacuously when
/// the sequence is shorter than one window.
pub fn adaptive_proportion_ok(sym: &[u8], h_bits: f64) -> bool {
    let w = ADAPTIVE_WINDOW;
    if sym.len() < w {
        return true;
    }
    let p = (2.0f64).powf(-h_bits.max(0.0));
    let cutoff = binomial_cutoff(w, p);
    for chunk in sym.chunks_exact(w) {
        let reference = chunk[0];
        let count = chunk.iter().filter(|&&s| s == reference).count();
        if count >= cutoff {
            return false;
        }
    }
    true
}

/// The full estimator battery over one quantized symbol sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntropyReport {
    /// Symbols assessed.
    pub symbols: usize,
    /// Distinct symbols observed.
    pub distinct: usize,
    /// Most-common-value min-entropy estimate, bits/sample.
    pub mcv_bits: f64,
    /// Markov min-entropy estimate, bits/sample.
    pub markov_bits: f64,
    /// The assessed min-entropy: the minimum of the estimators.
    pub min_entropy_bits: f64,
    /// Repetition-count health check at the assessed entropy.
    pub repetition_ok: bool,
    /// Adaptive-proportion health check at the assessed entropy.
    pub adaptive_ok: bool,
}

/// Runs every estimator and health check over one symbol sequence.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] for fewer than two symbols.
pub fn entropy_report(sym: &[u8]) -> Result<EntropyReport, PdnError> {
    let mcv = mcv_min_entropy(sym)?;
    let markov = markov_min_entropy(sym)?;
    let h = mcv.min(markov);
    let mut distinct = [false; 256];
    for &s in sym {
        distinct[s as usize] = true;
    }
    Ok(EntropyReport {
        symbols: sym.len(),
        distinct: distinct.iter().filter(|&&d| d).count(),
        mcv_bits: mcv,
        markov_bits: markov,
        min_entropy_bits: h,
        repetition_ok: repetition_count_ok(sym, h),
        adaptive_ok: adaptive_proportion_ok(sym, h),
    })
}

// ---------------------------------------------------------------------------
// Trace-level convenience
// ---------------------------------------------------------------------------

/// A compact spectral/entropy signature of one uniformly resampled
/// trace: the quantities the engine tracks per solved job and the
/// server summarizes under `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSignature {
    /// Strongest non-DC PSD peak frequency, Hz.
    pub peak_freq_hz: f64,
    /// PSD value at the peak, V²/Hz.
    pub peak_psd: f64,
    /// Power in the die-resonance band (1–5 MHz), V².
    pub band_power: f64,
    /// MCV/Markov assessed min-entropy of 3-bit-quantized samples,
    /// bits/sample.
    pub min_entropy_bits: f64,
}

/// Number of uniform samples traces are resampled to before the
/// engine computes a [`TraceSignature`].
pub const SIGNATURE_SAMPLES: usize = 1024;

/// Welch segment length used by [`trace_signature`].
pub const SIGNATURE_SEGMENT: usize = 256;

/// Die-resonance band assessed by [`trace_signature`] (Hz).
pub const DIE_BAND_HZ: (f64, f64) = (1.0e6, 5.0e6);

/// Lower edge of [`trace_signature`]'s peak search (Hz) — the same
/// board/die boundary the impedance experiments use, so turn-on
/// drift in the first bins never masquerades as a resonance.
pub const SIGNATURE_PEAK_MIN_HZ: f64 = 5.0e5;

/// Computes the standard signature of one `(times, volts)` trace:
/// resample to [`SIGNATURE_SAMPLES`] points, Welch PSD at
/// [`SIGNATURE_SEGMENT`]/50% overlap, 3-bit quantization for the
/// entropy battery.
///
/// # Errors
///
/// Returns [`PdnError::Signal`] if the trace is too short or
/// malformed to resample.
pub fn trace_signature(times: &[f64], volts: &[f64]) -> Result<TraceSignature, PdnError> {
    let (fs, samples) = resample_uniform(times, volts, SIGNATURE_SAMPLES)?;
    let psd = welch_psd(&samples, WelchConfig::half_overlap(SIGNATURE_SEGMENT, fs))?;
    let (peak_freq_hz, peak_psd) = psd
        .peak_in_band(SIGNATURE_PEAK_MIN_HZ, fs / 2.0)
        .or_else(|| psd.peak())
        .unwrap_or((0.0, 0.0));
    let band_power = psd.band_power(DIE_BAND_HZ.0, DIE_BAND_HZ.1);
    let min_entropy_bits = match quantize(&samples, 3) {
        Ok(sym) => entropy_report(&sym)
            .map(|r| r.min_entropy_bits)
            .unwrap_or(0.0),
        Err(_) => 0.0,
    };
    Ok(TraceSignature {
        peak_freq_hz,
        peak_psd,
        band_power,
        min_entropy_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 6];
        let mut im = vec![0.0; 6];
        assert!(matches!(
            fft_in_place(&mut re, &mut im),
            Err(PdnError::Signal { .. })
        ));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im).unwrap();
        for k in 0..8 {
            assert!((re[k] - 1.0).abs() < 1e-12 && im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_single_tone_concentrates_in_one_bin() {
        let n = 64;
        let samples: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 5.0 * i as f64 / n as f64).cos())
            .collect();
        let (re, im) = rfft(&samples).unwrap();
        let mags: Vec<f64> = re
            .iter()
            .zip(&im)
            .map(|(r, i)| (r * r + i * i).sqrt())
            .collect();
        assert!((mags[5] - n as f64 / 2.0).abs() < 1e-9);
        for (k, &m) in mags.iter().enumerate() {
            if k != 5 && k != n - 5 {
                assert!(m < 1e-9, "bin {k} leaked {m}");
            }
        }
    }

    #[test]
    fn welch_stream_chunking_is_bitwise_invariant() {
        let mut rng = SmallRng::seed_from_u64(0x516);
        let samples: Vec<f64> = (0..2000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = WelchConfig::half_overlap(128, 1e6);
        let batch = welch_psd(&samples, cfg).unwrap();
        for chunk in [1usize, 7, 100, 128, 1999] {
            let mut s = WelchStream::new(cfg).unwrap();
            for c in samples.chunks(chunk) {
                s.push(c);
            }
            assert_eq!(s.finish(), batch, "chunk size {chunk}");
        }
    }

    #[test]
    fn quantize_and_entropy_edge_cases() {
        assert!(quantize(&[], 3).is_err());
        assert!(quantize(&[1.0], 0).is_err());
        assert!(quantize(&[f64::NAN], 3).is_err());
        assert_eq!(quantize(&[2.5, 2.5, 2.5], 3).unwrap(), vec![0, 0, 0]);
        let constant = vec![4u8; 100];
        assert_eq!(mcv_min_entropy(&constant).unwrap(), 0.0);
        assert_eq!(markov_min_entropy(&constant).unwrap(), 0.0);
        assert!(mcv_min_entropy(&[1]).is_err());
    }

    #[test]
    fn repetition_check_catches_stuck_source() {
        let mut sym: Vec<u8> = (0..200u32).map(|i| (i % 7) as u8).collect();
        assert!(repetition_count_ok(&sym, 1.0));
        sym.extend(std::iter::repeat_n(3u8, 50));
        assert!(!repetition_count_ok(&sym, 1.0));
    }

    #[test]
    fn adaptive_check_catches_heavy_bias() {
        let mut rng = SmallRng::seed_from_u64(0xadaf);
        let fair: Vec<u8> = (0..4096).map(|_| rng.gen_range(0..2u8)).collect();
        assert!(adaptive_proportion_ok(&fair, 1.0));
        // 95%-biased stream claimed at 1 bit/sample must trip.
        let biased: Vec<u8> = (0..4096)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < 0.95 {
                    0u8
                } else {
                    1u8
                }
            })
            .collect();
        assert!(!adaptive_proportion_ok(&biased, 1.0));
    }

    #[test]
    fn resample_recovers_uniform_signal() {
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 1e-6).collect();
        let volts: Vec<f64> = times.iter().map(|t| t * 2.0).collect();
        let (fs, out) = resample_uniform(&times, &volts, 100).unwrap();
        assert!((fs - 1e6).abs() / 1e6 < 1e-9);
        for (a, b) in out.iter().zip(&volts) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn band_filter_isolates_tone() {
        let fs = 1e6;
        let n = 1024;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * 1e4 * t).sin()
                    + 0.5 * (std::f64::consts::TAU * 2e5 * t).sin()
            })
            .collect();
        let hi = band_filter(&samples, fs, 1.5e5, 3e5).unwrap();
        // The high tone survives, the low tone is attenuated.
        let power = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        assert!(
            power(&hi) > 0.08 && power(&hi) < 0.2,
            "power {}",
            power(&hi)
        );
    }

    #[test]
    fn q_factor_of_narrow_peak_is_large() {
        let fs = 10e6;
        let f0 = 2.5e6;
        let n = 1 << 14;
        let mut rng = SmallRng::seed_from_u64(0x9fac);
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                (std::f64::consts::TAU * f0 * i as f64 / fs).sin() + 0.01 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        let psd = welch_psd(&samples, WelchConfig::half_overlap(512, fs)).unwrap();
        let (f_peak, _) = psd.peak().unwrap();
        assert!((f_peak - f0).abs() <= psd.config().bin_hz());
        let q = psd.q_factor().unwrap();
        assert!(q > 10.0, "q = {q}");
    }
}
