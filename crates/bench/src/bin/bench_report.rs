//! Benchmark harness: runs a pinned subset of registry experiments N
//! times and emits a schema-versioned `BENCH_report.json` with
//! per-experiment median/p95 wall time and solver work counters.
//!
//! The pinned subset covers the three solver regimes the workspace
//! exercises: a single long transient (`fig8`), a frequency sweep of
//! many small jobs (`fig9`), and a mapping campaign dominated by
//! engine scheduling (`fig11a`). Each iteration runs on a **fresh**
//! engine so no memo cache or persistent store hides solver cost.
//!
//! Every experiment is timed both untraced and traced
//! (`VOLTNOISE_TRACE` equivalent, toggled in-process via `set_trace`),
//! so the report doubles as a regression guard on the cost of the
//! instrumentation itself: `overhead_ratio` is traced-median over
//! untraced-median and should sit near 1.
//!
//! `--smoke` runs one iteration and asserts the report is sane (parses
//! back, counters nonzero, overhead within a generous bound) — the mode
//! `scripts/check.sh` wires into CI.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use voltnoise::analysis::find;
use voltnoise::pdn::ac::log_space;
use voltnoise::pdn::{
    AcAnalysis, DrawerParams, DrawerPdn, MnaSystem, NodeId, RomSpec, SolveSpec, SolverBackend,
    SolverCounters, NUM_CORES,
};
use voltnoise::system::{set_trace, DrawerJob, DrawerStepConfig, Engine, Testbed};
use voltnoise_server::{http_request, Server, ServerConfig};

/// Experiments benchmarked by default: one long transient, one sweep of
/// many small jobs, one mapping campaign.
const PINNED: &[&str] = &["fig8", "fig9", "fig11a"];

/// Report format version. Bump when the JSON shape changes.
/// `/2`: added the `drawer` section (sparse-solver cost accounting).
/// `/3`: added the `ac_batch` (factor-once multi-RHS AC sweep) and
/// `rom` (reduced-order macromodel) sections.
/// `/4`: added the `server_rtt` section (campaign-daemon request
/// latency over loopback HTTP).
/// `/5`: added the `fleet_rtt` section (routed campaign latency through
/// the sharded fleet client over keep-alive connections).
/// `/6`: added the `signal` section (streaming Welch PSD throughput
/// over a real 100 µs scope trace, batch vs stream).
/// `/7`: added the `rack_map` section (rack-scale placement study:
/// naive vs noise-aware replay over a variated chip population).
const SCHEMA: &str = "voltnoise-bench/7";

/// Smoke-mode floor on the drawer's dense-model-to-sparse flop ratio:
/// the sparse backend must beat the dense cost model by at least this
/// factor on the 200+-unknown drawer system (measured ~10x).
const MIN_DRAWER_FLOPS_RATIO: f64 = 5.0;

/// Smoke-mode floor on the AC sweep's batched-solve advantage: factoring
/// once per frequency and back-substituting every injection must charge
/// at least this many times fewer flops than the per-injection
/// refactorization baseline (measured ~24x on the 36-injection drawer).
const MIN_AC_BATCH_FLOPS_RATIO: f64 = 5.0;

/// Smoke-mode floor on the macromodel's flop advantage over the
/// full-order transient on the long drawer window (measured ~25x; the
/// ROM's cost is dominated by its one fixed-length calibration run).
const MIN_ROM_FLOPS_RATIO: f64 = 10.0;

/// Generous smoke-mode bound on `overhead_ratio` (single-iteration
/// timings are noisy; real overhead is a few percent).
const SMOKE_MAX_OVERHEAD: f64 = 10.0;

/// Smoke-mode ceiling on the streaming Welch path's wall-clock cost
/// relative to the batch path over identical samples. Both paths run
/// the same per-segment arithmetic (the stream adds only buffer
/// management), so streaming must stay within 1.2x of batch.
const MAX_SIGNAL_STREAM_OVERHEAD: f64 = 1.2;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct WallStats {
    median_ns: u64,
    p95_ns: u64,
    samples_ns: Vec<u64>,
}

impl WallStats {
    fn of(mut samples: Vec<u64>) -> WallStats {
        samples.sort_unstable();
        WallStats {
            median_ns: percentile(&samples, 0.5),
            p95_ns: percentile(&samples, 0.95),
            samples_ns: samples,
        }
    }
}

/// Nearest-rank percentile of an already-sorted sample set.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ExperimentBench {
    id: String,
    untraced: WallStats,
    traced: WallStats,
    /// Traced median over untraced median: the wall-clock cost of the
    /// instrumentation itself.
    overhead_ratio: f64,
    /// Jobs solved per iteration (identical across iterations: fresh
    /// engine, deterministic experiment).
    solves: usize,
    /// Solver work counters of one iteration (deterministic).
    counters: SolverCounters,
    /// Median per-job wall time from the traced engine's histogram
    /// (bucket floor, nanoseconds).
    job_wall_median_ns: u64,
    /// p95 per-job wall time from the traced engine's histogram.
    job_wall_p95_ns: u64,
}

/// The drawer-scale sparse-solver benchmark: one pinned transient run on
/// a 6-chip drawer (200+ MNA unknowns, past the sparse threshold), with
/// the measured nnz-aware flop count compared against what the dense
/// cost model would charge for the same factorization/solve sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DrawerBench {
    /// Chips on the benchmarked drawer.
    chips: usize,
    /// MNA unknowns of the drawer system.
    system_size: usize,
    /// Wall time per fresh-engine solve.
    wall: WallStats,
    /// Solver counters of one iteration (deterministic).
    counters: SolverCounters,
    /// Actual (nnz-aware) flops the sparse backend charged.
    sparse_est_flops: u64,
    /// What the dense cost model (2n^3/3 + n^2/2 per factorization,
    /// 2n^2 per solve) would charge for the same operation sequence.
    dense_model_flops: u64,
    /// `dense_model_flops / sparse_est_flops`: how many times cheaper
    /// the sparse path is on this topology.
    flops_ratio: f64,
}

/// The batched AC-sweep benchmark: a full drawer impedance sweep (every
/// core node as an injection port) on the dense backend, where the
/// analyzer factors the complex MNA matrix **once per frequency** and
/// back-substitutes all injections through the shared factors. The
/// baseline is the per-injection refactorization the sweep used before
/// factorization hoisting: one factor + one solve per (frequency,
/// injection) pair, priced by the same flop model the backend charges.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AcBatchBench {
    /// MNA unknowns of the drawer system.
    system_size: usize,
    /// Frequencies in the sweep.
    frequencies: usize,
    /// Injection ports solved per frequency.
    injections: usize,
    /// Wall time per fresh-analyzer sweep.
    wall: WallStats,
    /// Analyzer work counters of one sweep (deterministic).
    counters: SolverCounters,
    /// Actual flops charged by the factor-once batched sweep.
    batched_est_flops: u64,
    /// What one factorization + one solve per (frequency, injection)
    /// pair would charge under the same dense flop model.
    per_injection_model_flops: u64,
    /// `per_injection_model_flops / batched_est_flops`.
    flops_ratio: f64,
}

/// The reduced-order macromodel benchmark: the drawer ΔI step on a long
/// window, solved once with the full-order sparse transient and once
/// with the Krylov macromodel (`SolveSpec::reduced`). The ROM's counters
/// include its calibration run (a full-order solve over a short fixed
/// window), so `flops_ratio` is an end-to-end cost comparison, not just
/// the integration loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RomBench {
    /// Chips on the benchmarked drawer.
    chips: usize,
    /// MNA unknowns of the full-order drawer system.
    system_size: usize,
    /// Simulated window (seconds).
    window_s: f64,
    /// Error budget the macromodel was calibrated against (volts).
    budget_v: f64,
    /// Reduced order the calibration settled on.
    rom_states: usize,
    /// Worst-case probe error the calibration measured (volts).
    rom_max_error_v: f64,
    /// Transient steps of the full-order solve.
    full_steps: usize,
    /// Transient steps of the reduced solve.
    rom_steps: usize,
    /// Wall time per fresh-engine full-order solve.
    full_wall: WallStats,
    /// Wall time per fresh-engine reduced solve (includes calibration).
    rom_wall: WallStats,
    /// Flops charged by the full-order solve.
    full_est_flops: u64,
    /// Flops charged by the reduced solve (build + calibration +
    /// integration).
    rom_est_flops: u64,
    /// `full_est_flops / rom_est_flops`.
    flops_ratio: f64,
}

/// The campaign-daemon round-trip benchmark: an in-process
/// `voltnoise-server` on a loopback socket, timed from the client side.
/// The first request solves a small batch; the remaining requests hit
/// the engine's memo cache, so their latency isolates the service
/// envelope itself (accept queue, HTTP parse, admission, streaming).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServerRttBench {
    /// Timed `POST /jobs` requests (after the one warm-up solve).
    requests: usize,
    /// Jobs per batch request.
    jobs_per_request: usize,
    /// Per-request wall time of the cache-warm `POST /jobs` round trips
    /// (`median_ns` is the p50 the service envelope is judged by).
    rtt: WallStats,
    /// Per-request wall time of bare `GET /healthz` round trips — the
    /// HTTP floor underneath `rtt`.
    healthz_rtt: WallStats,
    /// Engine solves over the whole benchmark (warm-up included).
    solves: usize,
    /// Engine cache hits over the whole benchmark.
    cache_hits: usize,
}

/// The fleet round-trip benchmark: a small campaign routed by the
/// consistent-hash fleet client across two in-process shard servers,
/// over persistent keep-alive connections. The first campaign pays the
/// solves; the timed campaigns are cache-warm, so `campaign_rtt`
/// isolates routing + probing + streaming overhead per campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FleetRttBench {
    /// In-process shard servers on the ring.
    shards: usize,
    /// Jobs per campaign.
    jobs: usize,
    /// Timed cache-warm campaigns (after the one warm-up).
    campaigns: usize,
    /// Wall time per cache-warm campaign through the routing client.
    campaign_rtt: WallStats,
    /// Jobs answered per shard in the warm-up campaign — nonzero on
    /// more than one shard proves the ring actually spreads work.
    routed: Vec<u64>,
    /// Engine solves across all shards (warm-up included).
    solves: usize,
    /// Engine cache hits across all shards.
    cache_hits: usize,
}

/// The signal-pipeline benchmark: Welch PSD throughput over a real
/// 100 µs core-0 scope trace (resampled to a uniform grid and tiled to
/// benchmark length), timed on the batch path and the streaming path
/// fed in bounded chunks. The two paths are asserted *bitwise*
/// identical at bench time, so the overhead ratio compares equal work.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SignalBench {
    /// Simulated window of the source trace (seconds).
    trace_window_s: f64,
    /// Raw (non-uniform) scope samples captured by the solve.
    trace_points: usize,
    /// Uniform samples fed to each Welch run (resampled and tiled).
    samples: usize,
    /// Welch segment length.
    segment_len: usize,
    /// Averaged segments per run.
    segments: u64,
    /// Wall time per batch `welch_psd` run.
    batch_wall: WallStats,
    /// Wall time per chunked `WelchStream` run over the same samples.
    stream_wall: WallStats,
    /// Batch throughput, samples per second (median wall).
    batch_samples_per_s: f64,
    /// Streaming throughput, samples per second (median wall).
    stream_samples_per_s: f64,
    /// Streaming median wall over batch median wall.
    stream_overhead_ratio: f64,
    /// Strongest PSD peak at or above 500 kHz — the die resonance under
    /// the 2.5 MHz stressmark; a physics anchor for the benchmark data.
    peak_freq_hz: f64,
}

/// The rack placement-study benchmark: the reduced `rack-map` registry
/// experiment (2 drawers × 2 variated chips, naive vs noise-aware
/// replay of one job trace) on a fresh engine per iteration, so the
/// wall time prices the full campaign — every occupancy the replays
/// visit is a rack-scale transient solved through the engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RackMapBench {
    /// Drawers on the benchmarked rack.
    drawers: usize,
    /// Variated chips per drawer.
    chips_per_drawer: usize,
    /// Placement sites (cores) on the rack.
    sites: usize,
    /// Wall time per fresh-engine campaign.
    wall: WallStats,
    /// Solver counters of one iteration (deterministic).
    counters: SolverCounters,
    /// Engine solves per campaign (= distinct occupancies, both
    /// policies deduped through one memo).
    solves: usize,
    /// Distinct occupancies the replays evaluated.
    occupancies_evaluated: usize,
    /// Naive policy's peak required margin (%p2p).
    naive_peak_pct: f64,
    /// Noise-aware policy's peak required margin (%p2p).
    aware_peak_pct: f64,
    /// `naive_peak_pct - aware_peak_pct`: the worst-case win.
    worst_gain_pct: f64,
    /// Time-weighted guardband recovered by noise-aware placement (mV).
    guardband_recovered_mv: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    iterations: usize,
    reduced: bool,
    workers: usize,
    experiments: Vec<ExperimentBench>,
    drawer: DrawerBench,
    ac_batch: AcBatchBench,
    rom: RomBench,
    server_rtt: ServerRttBench,
    fleet_rtt: FleetRttBench,
    signal: SignalBench,
    rack_map: RackMapBench,
}

struct Opts {
    iters: usize,
    out: PathBuf,
    smoke: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        iters: 5,
        out: PathBuf::from("BENCH_report.json"),
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                opts.smoke = true;
                opts.iters = 1;
            }
            "--iters" => {
                opts.iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--iters needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                opts.out = args.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_report [--smoke] [--iters N] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One timed run of `id` on a fresh engine. Returns wall time plus the
/// engine's post-run snapshot.
fn timed_run(id: &str, reduced: bool) -> (u64, voltnoise::system::EngineStats) {
    let entry = find(id).unwrap_or_else(|| panic!("{id} is not a registered experiment"));
    let tb = if reduced {
        Testbed::fast()
    } else {
        Testbed::shared()
    };
    let engine = Engine::with_workers(workers());
    let t0 = Instant::now();
    entry
        .run(tb, &engine, reduced)
        .unwrap_or_else(|e| panic!("{id} failed: {e}"));
    (t0.elapsed().as_nanos() as u64, engine.stats())
}

fn bench_experiment(id: &str, iters: usize, reduced: bool) -> ExperimentBench {
    let mut untraced = Vec::with_capacity(iters);
    let mut traced = Vec::with_capacity(iters);
    let mut counters = SolverCounters::default();
    let mut solves = 0usize;
    let mut traced_stats = None;
    for _ in 0..iters {
        set_trace(false);
        let (ns, stats) = timed_run(id, reduced);
        untraced.push(ns);
        counters = stats.telemetry.solver;
        solves = stats.solves;
        set_trace(true);
        let (ns, stats) = timed_run(id, reduced);
        traced.push(ns);
        traced_stats = Some(stats);
    }
    set_trace(false);
    let untraced = WallStats::of(untraced);
    let traced = WallStats::of(traced);
    let overhead_ratio = traced.median_ns as f64 / (untraced.median_ns.max(1)) as f64;
    let job_wall = traced_stats
        .map(|s| s.telemetry.job_wall)
        .unwrap_or_default();
    ExperimentBench {
        id: id.to_string(),
        untraced,
        traced,
        overhead_ratio,
        solves,
        counters,
        job_wall_median_ns: job_wall.median().unwrap_or(0),
        job_wall_p95_ns: job_wall.p95().unwrap_or(0),
    }
}

/// Benchmarks the pinned drawer transient on fresh engines and derives
/// the dense-model comparison. The configuration is
/// [`DrawerStepConfig::default`] — 6 chips, a fixed step drive and
/// window — so the counters are deterministic across machines.
fn bench_drawer(iters: usize) -> DrawerBench {
    let cfg = DrawerStepConfig::default();
    let mut wall = Vec::with_capacity(iters);
    let mut counters = SolverCounters::default();
    let mut system_size = 0usize;
    for _ in 0..iters {
        let engine = Engine::with_workers(1);
        let job = DrawerJob::new(cfg.clone()).expect("drawer config serializes");
        let t0 = Instant::now();
        let outcome = engine
            .run_drawer(&job)
            .unwrap_or_else(|e| panic!("drawer solve failed: {e}"));
        wall.push(t0.elapsed().as_nanos() as u64);
        counters = engine.stats().telemetry.solver;
        system_size = outcome.system_size;
    }
    let n = system_size as f64;
    let dense_model = counters.lu_factorizations as f64 * (2.0 * n * n * n / 3.0 + n * n / 2.0)
        + counters.solve_calls as f64 * 2.0 * n * n;
    let sparse_est_flops = counters.est_flops;
    DrawerBench {
        chips: cfg.drawer.chips,
        system_size,
        wall: WallStats::of(wall),
        counters,
        sparse_est_flops,
        dense_model_flops: dense_model as u64,
        flops_ratio: dense_model / sparse_est_flops.max(1) as f64,
    }
}

/// Benchmarks the factor-once batched AC sweep on the drawer netlist
/// with the dense backend forced, so the batched path is compared
/// against the per-injection refactorization baseline under the exact
/// flop model the backend charges.
fn bench_ac_batch(iters: usize) -> AcBatchBench {
    let drawer = DrawerPdn::build(&DrawerParams::default()).expect("drawer builds");
    let system_size = MnaSystem::new(drawer.netlist()).size();
    let drawer_ref = &drawer;
    let nodes: Vec<NodeId> = (0..drawer.num_chips())
        .flat_map(|chip| (0..NUM_CORES).map(move |core| drawer_ref.core_node(chip, core)))
        .collect();
    let freqs = log_space(1e5, 1e8, 24).expect("frequency grid");
    let mut wall = Vec::with_capacity(iters);
    let mut counters = SolverCounters::default();
    for _ in 0..iters {
        let ac = AcAnalysis::with_backend(drawer.netlist(), SolverBackend::Dense);
        let t0 = Instant::now();
        for &f in &freqs {
            ac.impedance_batch(&nodes, f)
                .unwrap_or_else(|e| panic!("AC sweep failed at {f} Hz: {e}"));
        }
        wall.push(t0.elapsed().as_nanos() as u64);
        counters = ac.counters();
    }
    let n = system_size as f64;
    let factor_model = 2.0 * n * n * n / 3.0 + n * n / 2.0;
    let solve_model = 2.0 * n * n;
    let per_injection_model = counters.solve_calls as f64 * (factor_model + solve_model);
    let batched_est_flops = counters.est_flops;
    AcBatchBench {
        system_size,
        frequencies: freqs.len(),
        injections: nodes.len(),
        wall: WallStats::of(wall),
        counters,
        batched_est_flops,
        per_injection_model_flops: per_injection_model as u64,
        flops_ratio: per_injection_model / batched_est_flops.max(1) as f64,
    }
}

/// One fresh-engine drawer solve under `spec`; returns wall time, the
/// outcome, and the engine's solver counters.
fn timed_drawer(
    base: &DrawerStepConfig,
    spec: SolveSpec,
) -> (u64, voltnoise::system::DrawerStepOutcome, SolverCounters) {
    let cfg = DrawerStepConfig {
        solve: spec,
        ..base.clone()
    };
    let engine = Engine::with_workers(1);
    let job = DrawerJob::new(cfg).expect("drawer config serializes");
    let t0 = Instant::now();
    let outcome = engine
        .run_drawer(&job)
        .unwrap_or_else(|e| panic!("drawer solve failed: {e}"));
    let ns = t0.elapsed().as_nanos() as u64;
    let counters = engine.stats().telemetry.solver;
    (ns, (*outcome).clone(), counters)
}

/// Benchmarks the reduced-order macromodel against the full-order
/// transient on a long drawer window (15x the default), where the ROM's
/// fixed calibration cost amortizes.
fn bench_rom(iters: usize) -> RomBench {
    // A doubled coarse-step dilation relative to the default: the
    // calibration validates the error budget at exactly this stepping,
    // so the extra speed stays inside the accuracy contract.
    let spec = RomSpec {
        dilation: 12,
        ..RomSpec::default()
    };
    let base = DrawerStepConfig {
        window_s: 100e-6,
        ..DrawerStepConfig::default()
    };
    let mut full_wall = Vec::with_capacity(iters);
    let mut rom_wall = Vec::with_capacity(iters);
    let mut full_counters = SolverCounters::default();
    let mut rom_counters = SolverCounters::default();
    let mut full_outcome = None;
    let mut rom_outcome = None;
    for _ in 0..iters {
        let (ns, outcome, counters) = timed_drawer(&base, SolveSpec::full());
        full_wall.push(ns);
        full_counters = counters;
        full_outcome = Some(outcome);
        let (ns, outcome, counters) = timed_drawer(&base, SolveSpec::reduced(spec));
        rom_wall.push(ns);
        rom_counters = counters;
        rom_outcome = Some(outcome);
    }
    let full = full_outcome.expect("at least one iteration");
    let rom = rom_outcome.expect("at least one iteration");
    RomBench {
        chips: base.drawer.chips,
        system_size: full.system_size,
        window_s: base.window_s,
        budget_v: spec.budget_v,
        rom_states: rom.rom_states,
        rom_max_error_v: rom.rom_max_error_v,
        full_steps: full.steps,
        rom_steps: rom.steps,
        full_wall: WallStats::of(full_wall),
        rom_wall: WallStats::of(rom_wall),
        full_est_flops: full_counters.est_flops,
        rom_est_flops: rom_counters.est_flops,
        flops_ratio: full_counters.est_flops as f64 / rom_counters.est_flops.max(1) as f64,
    }
}

/// Benchmarks client-observed request latency against an in-process
/// `voltnoise-server` bound to an ephemeral loopback port. One warm-up
/// batch pays the solve; the timed requests then measure the service
/// envelope on the cache-hit path, with bare `/healthz` pings as the
/// HTTP floor.
fn bench_server_rtt(iters: usize) -> ServerRttBench {
    let server = Server::bind(ServerConfig {
        reduced: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = server
        .local_addr()
        .expect("server has a local address")
        .to_string();
    let stop = server.stop_handle();
    let engine = server.engine();
    let daemon = std::thread::spawn(move || server.run());
    let timeout = Duration::from_secs(120);
    let body = r#"{"jobs":[{"mapping":["max","idle","idle","idle","idle","idle"],"stim_freq_hz":2.5e6,"sync":true,"window_s":5e-6,"seed":42}]}"#;
    let warmup = http_request(&addr, "POST", "/jobs", Some(body), timeout)
        .expect("warm-up batch round trip");
    assert_eq!(warmup.status, 200, "warm-up batch failed: {}", warmup.body);
    let requests = (iters * 5).max(5);
    let mut rtt = Vec::with_capacity(requests);
    let mut healthz = Vec::with_capacity(requests);
    for _ in 0..requests {
        let t0 = Instant::now();
        let resp =
            http_request(&addr, "POST", "/jobs", Some(body), timeout).expect("batch round trip");
        rtt.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(resp.status, 200, "batch request failed: {}", resp.body);
        let t0 = Instant::now();
        let resp =
            http_request(&addr, "GET", "/healthz", None, timeout).expect("healthz round trip");
        healthz.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(resp.status, 200, "healthz failed: {}", resp.body);
    }
    let stats = engine.stats();
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon
        .join()
        .expect("server thread exits")
        .expect("server drains cleanly");
    ServerRttBench {
        requests,
        jobs_per_request: 1,
        rtt: WallStats::of(rtt),
        healthz_rtt: WallStats::of(healthz),
        solves: stats.solves,
        cache_hits: stats.cache_hits,
    }
}

/// Benchmarks routed campaign latency through the fleet client against
/// two in-process shard servers over keep-alive connections. No
/// processes are spawned: the shards are `Server::bind` instances on
/// loopback, so the measurement isolates the client's routing, probing
/// and streaming path from process-supervision cost.
fn bench_fleet_rtt(iters: usize) -> FleetRttBench {
    let mut addrs = Vec::new();
    let mut stops = Vec::new();
    let mut engines = Vec::new();
    let mut daemons = Vec::new();
    for _ in 0..2 {
        let server = Server::bind(ServerConfig {
            reduced: true,
            ..ServerConfig::default()
        })
        .expect("bind loopback shard");
        addrs.push(
            server
                .local_addr()
                .expect("shard has a local address")
                .to_string(),
        );
        stops.push(server.stop_handle());
        engines.push(server.engine());
        daemons.push(std::thread::spawn(move || server.run()));
    }
    let shards = addrs.len();
    let specs = voltnoise_fleet::campaign_specs(4, 4242);
    let mut client = voltnoise_fleet::FleetClient::new(
        addrs,
        Testbed::fast(),
        voltnoise_fleet::FleetClientConfig::default(),
    );
    let warmup = client
        .run_campaign(&specs, &mut voltnoise_fleet::NoChaos)
        .expect("warm-up fleet campaign");
    assert!(
        warmup.outcomes.iter().all(Option::is_some),
        "warm-up campaign incomplete"
    );
    let campaigns = (iters * 5).max(5);
    let mut rtt = Vec::with_capacity(campaigns);
    for _ in 0..campaigns {
        let t0 = Instant::now();
        let report = client
            .run_campaign(&specs, &mut voltnoise_fleet::NoChaos)
            .expect("fleet campaign round trip");
        rtt.push(t0.elapsed().as_nanos() as u64);
        assert!(report.outcomes.iter().all(Option::is_some));
    }
    let mut solves = 0usize;
    let mut cache_hits = 0usize;
    for engine in &engines {
        let stats = engine.stats();
        solves += stats.solves;
        cache_hits += stats.cache_hits;
    }
    for stop in &stops {
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    for daemon in daemons {
        daemon
            .join()
            .expect("shard thread exits")
            .expect("shard drains cleanly");
    }
    FleetRttBench {
        shards,
        jobs: specs.len(),
        campaigns,
        campaign_rtt: WallStats::of(rtt),
        routed: warmup.routed,
        solves,
        cache_hits,
    }
}

/// Benchmarks Welch PSD throughput, batch vs streaming, over a real
/// 100 µs scope trace from a 2.5 MHz all-core stressmark solve. The
/// trace is resampled to a uniform grid once, outside the timed
/// region, and tiled so each run averages a few hundred segments.
fn bench_signal(iters: usize) -> SignalBench {
    use voltnoise::pdn::signal::{resample_uniform, welch_psd, WelchConfig, WelchStream};
    use voltnoise::system::{CoreLoad, NoiseRunConfig, SimJob};

    const TRACE_WINDOW_S: f64 = 100e-6;
    const RESAMPLE_POINTS: usize = 16384;
    const SEGMENT_LEN: usize = 1024;
    const TILES: usize = 16;
    const CHUNK: usize = 4096;

    let tb = Testbed::fast();
    let sm = tb.max_stressmark(2.5e6, None);
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let job = SimJob::batch(tb.chip()).job(
        loads,
        NoiseRunConfig {
            window_s: Some(TRACE_WINDOW_S),
            record_traces: true,
            seed: 1,
            ..NoiseRunConfig::default()
        },
    );
    let engine = Engine::with_workers(1);
    let outcomes = engine
        .run_jobs(std::slice::from_ref(&job))
        .unwrap_or_else(|e| panic!("signal bench solve failed: {e}"));
    let traces = outcomes[0]
        .traces
        .as_ref()
        .expect("signal bench job records traces");
    let trace = &traces[0];
    let trace_points = trace.times().len();
    let (fs, base) = resample_uniform(trace.times(), trace.volts(), RESAMPLE_POINTS)
        .expect("scope trace resamples");
    let mut samples = Vec::with_capacity(base.len() * TILES);
    for _ in 0..TILES {
        samples.extend_from_slice(&base);
    }
    let cfg = WelchConfig::half_overlap(SEGMENT_LEN, fs);

    let runs = (iters * 5).max(5);
    let mut batch_wall = Vec::with_capacity(runs);
    let mut stream_wall = Vec::with_capacity(runs);
    let mut batch_psd = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let psd = welch_psd(&samples, cfg).expect("batch Welch");
        batch_wall.push(t0.elapsed().as_nanos() as u64);

        let t0 = Instant::now();
        let mut stream = WelchStream::new(cfg).expect("stream config");
        for chunk in samples.chunks(CHUNK) {
            stream.push(chunk);
        }
        let streamed = stream.finish();
        stream_wall.push(t0.elapsed().as_nanos() as u64);

        // The overhead ratio below only means something if both paths
        // did identical work — enforce it to the bit.
        assert_eq!(
            streamed, psd,
            "stream and batch Welch PSDs must match bitwise"
        );
        batch_psd = Some(psd);
    }
    let psd = batch_psd.expect("at least one run");
    let peak_freq_hz = psd
        .peak_in_band(5e5, fs / 2.0)
        .map(|(f, _)| f)
        .unwrap_or(0.0);
    let batch_wall = WallStats::of(batch_wall);
    let stream_wall = WallStats::of(stream_wall);
    SignalBench {
        trace_window_s: TRACE_WINDOW_S,
        trace_points,
        samples: samples.len(),
        segment_len: SEGMENT_LEN,
        segments: psd.segments(),
        batch_samples_per_s: samples.len() as f64 / (batch_wall.median_ns.max(1) as f64 / 1e9),
        stream_samples_per_s: samples.len() as f64 / (stream_wall.median_ns.max(1) as f64 / 1e9),
        stream_overhead_ratio: stream_wall.median_ns as f64 / batch_wall.median_ns.max(1) as f64,
        batch_wall,
        stream_wall,
        peak_freq_hz,
    }
}

/// Benchmarks the rack placement study on fresh engines: one full
/// naive + noise-aware replay campaign per iteration at reduced scale.
fn bench_rack_map(iters: usize) -> RackMapBench {
    use voltnoise::analysis::{Experiment, RackMapConfig, RackMapExperiment};
    let tb = Testbed::fast();
    let exp = RackMapExperiment {
        cfg: RackMapConfig::reduced(),
    };
    let mut wall = Vec::with_capacity(iters);
    let mut counters = SolverCounters::default();
    let mut solves = 0usize;
    let mut result = None;
    for _ in 0..iters {
        let engine = Engine::with_workers(workers());
        let t0 = Instant::now();
        let res = exp
            .run(tb, &engine)
            .unwrap_or_else(|e| panic!("rack-map campaign failed: {e}"));
        wall.push(t0.elapsed().as_nanos() as u64);
        let stats = engine.stats();
        counters = stats.telemetry.solver;
        solves = stats.solves;
        result = Some(res);
    }
    let res = result.expect("at least one iteration");
    RackMapBench {
        drawers: res.drawers,
        chips_per_drawer: res.chips_per_drawer,
        sites: res.sites,
        wall: WallStats::of(wall),
        counters,
        solves,
        occupancies_evaluated: res.occupancies_evaluated,
        naive_peak_pct: res.naive.peak_required_pct,
        aware_peak_pct: res.aware.peak_required_pct,
        worst_gain_pct: res.worst_gain_pct(),
        guardband_recovered_mv: res.guardband_recovered_mv(),
    }
}

fn smoke_check(json: &str) {
    let report: BenchReport = serde_json::from_str(json).expect("BENCH_report.json parses back");
    assert_eq!(report.schema, SCHEMA, "schema version mismatch");
    assert!(!report.experiments.is_empty(), "no experiments benchmarked");
    for exp in &report.experiments {
        assert!(
            exp.counters.steps > 0
                && exp.counters.solve_calls > 0
                && exp.counters.lu_factorizations > 0,
            "{}: solver counters must be nonzero, got {:?}",
            exp.id,
            exp.counters
        );
        assert!(exp.solves > 0, "{}: no jobs solved", exp.id);
        assert!(
            exp.job_wall_p95_ns > 0,
            "{}: traced run recorded no job wall times",
            exp.id
        );
        assert!(
            exp.overhead_ratio < SMOKE_MAX_OVERHEAD,
            "{}: telemetry overhead ratio {:.2} exceeds {SMOKE_MAX_OVERHEAD}",
            exp.id,
            exp.overhead_ratio
        );
    }
    let drawer = &report.drawer;
    assert!(
        drawer.system_size >= 150,
        "drawer must be drawer-scale, got {} unknowns",
        drawer.system_size
    );
    assert!(
        drawer.counters.sparse_solves > 0,
        "drawer run must exercise the sparse backend, got {:?}",
        drawer.counters
    );
    assert!(
        drawer.flops_ratio >= MIN_DRAWER_FLOPS_RATIO,
        "drawer sparse path must beat the dense cost model by >= {MIN_DRAWER_FLOPS_RATIO}x, \
         got {:.2}x ({} sparse vs {} dense-model flops)",
        drawer.flops_ratio,
        drawer.sparse_est_flops,
        drawer.dense_model_flops
    );
    let ac = &report.ac_batch;
    assert!(
        ac.counters.batched_solves > 0,
        "AC sweep must route through the batched path, got {:?}",
        ac.counters
    );
    assert_eq!(
        ac.counters.lu_factorizations as usize, ac.frequencies,
        "batched AC sweep must factor exactly once per frequency"
    );
    assert!(
        ac.flops_ratio >= MIN_AC_BATCH_FLOPS_RATIO,
        "batched AC sweep must beat per-injection refactorization by >= \
         {MIN_AC_BATCH_FLOPS_RATIO}x, got {:.2}x ({} batched vs {} baseline flops)",
        ac.flops_ratio,
        ac.batched_est_flops,
        ac.per_injection_model_flops
    );
    let rom = &report.rom;
    assert!(
        rom.rom_states > 0 && rom.rom_est_flops > 0,
        "ROM solve must report its reduced order and charge work"
    );
    assert!(
        rom.rom_max_error_v <= rom.budget_v,
        "ROM calibrated error {:.3e} V exceeds its {:.3e} V budget",
        rom.rom_max_error_v,
        rom.budget_v
    );
    assert!(
        rom.rom_steps < rom.full_steps,
        "ROM solve must take fewer steps ({} vs {})",
        rom.rom_steps,
        rom.full_steps
    );
    assert!(
        rom.flops_ratio >= MIN_ROM_FLOPS_RATIO,
        "ROM must beat the full-order transient by >= {MIN_ROM_FLOPS_RATIO}x flops on the \
         long window, got {:.2}x ({} rom vs {} full flops)",
        rom.flops_ratio,
        rom.rom_est_flops,
        rom.full_est_flops
    );
    let server = &report.server_rtt;
    assert!(
        server.rtt.median_ns > 0 && server.rtt.p95_ns >= server.rtt.median_ns,
        "server RTT stats must be populated and ordered, got {:?}",
        server.rtt
    );
    assert_eq!(
        server.solves, 1,
        "timed server requests must ride the memo cache (one warm-up solve), got {} solves",
        server.solves
    );
    assert!(
        server.cache_hits >= server.requests,
        "server cache hits ({}) must cover the {} timed requests",
        server.cache_hits,
        server.requests
    );
    let fleet = &report.fleet_rtt;
    assert!(
        fleet.campaign_rtt.median_ns > 0
            && fleet.campaign_rtt.p95_ns >= fleet.campaign_rtt.median_ns,
        "fleet RTT stats must be populated and ordered, got {:?}",
        fleet.campaign_rtt
    );
    assert_eq!(
        fleet.solves, fleet.jobs,
        "timed fleet campaigns must ride the memo caches (one solve per unique job), got {} \
         solves for {} jobs",
        fleet.solves, fleet.jobs
    );
    assert!(
        fleet.routed.iter().filter(|&&n| n > 0).count() >= 2,
        "fleet campaign never spread across shards: {:?}",
        fleet.routed
    );
    assert!(
        fleet.cache_hits >= fleet.campaigns * fleet.jobs,
        "fleet cache hits ({}) must cover the {} timed campaigns x {} jobs",
        fleet.cache_hits,
        fleet.campaigns,
        fleet.jobs
    );
    let signal = &report.signal;
    assert!(
        signal.segments > 0 && signal.samples > signal.segment_len,
        "signal bench must average real segments, got {signal:?}"
    );
    assert!(
        signal.batch_samples_per_s > 0.0 && signal.stream_samples_per_s > 0.0,
        "signal throughput must be measurable, got {signal:?}"
    );
    assert!(
        signal.stream_overhead_ratio <= MAX_SIGNAL_STREAM_OVERHEAD,
        "streaming Welch must stay within {MAX_SIGNAL_STREAM_OVERHEAD}x of batch, got {:.3}x \
         ({} vs {} ns median)",
        signal.stream_overhead_ratio,
        signal.stream_wall.median_ns,
        signal.batch_wall.median_ns
    );
    assert!(
        (1.0e6..5.0e6).contains(&signal.peak_freq_hz),
        "the stressmark trace's PSD peak must sit in the die resonance band, got {:.3e} Hz",
        signal.peak_freq_hz
    );
    let rack = &report.rack_map;
    assert!(
        rack.drawers >= 2 && rack.drawers * rack.chips_per_drawer >= 4,
        "rack study must span >= 2 drawers and >= 4 chips, got {}x{}",
        rack.drawers,
        rack.chips_per_drawer
    );
    assert!(
        rack.counters.steps > 0 && rack.solves > 0 && rack.occupancies_evaluated > 0,
        "rack study must solve real occupancies, got {rack:?}"
    );
    assert!(
        rack.aware_peak_pct < rack.naive_peak_pct,
        "noise-aware placement must strictly beat naive worst-case noise, got {:.3} vs {:.3} %p2p",
        rack.aware_peak_pct,
        rack.naive_peak_pct
    );
    assert!(
        rack.guardband_recovered_mv > 0.0,
        "rack study must recover guardband, got {:.3} mV",
        rack.guardband_recovered_mv
    );
    eprintln!("# smoke checks passed");
}

fn main() {
    let opts = parse_args();
    // Build the shared testbed outside the timed region.
    let _ = Testbed::fast();
    let experiments: Vec<ExperimentBench> = PINNED
        .iter()
        .map(|id| {
            eprintln!("# benchmarking {id} ({} iterations)", opts.iters);
            bench_experiment(id, opts.iters, true)
        })
        .collect();
    eprintln!(
        "# benchmarking drawer transient ({} iterations)",
        opts.iters
    );
    let drawer = bench_drawer(opts.iters);
    eprintln!(
        "# benchmarking batched AC drawer sweep ({} iterations)",
        opts.iters
    );
    let ac_batch = bench_ac_batch(opts.iters);
    eprintln!(
        "# benchmarking reduced-order drawer transient ({} iterations)",
        opts.iters
    );
    let rom = bench_rom(opts.iters);
    eprintln!(
        "# benchmarking server round-trip latency ({} iterations)",
        opts.iters
    );
    let server_rtt = bench_server_rtt(opts.iters);
    eprintln!(
        "# benchmarking fleet campaign round-trip latency ({} iterations)",
        opts.iters
    );
    let fleet_rtt = bench_fleet_rtt(opts.iters);
    eprintln!(
        "# benchmarking Welch PSD throughput ({} iterations)",
        opts.iters
    );
    let signal = bench_signal(opts.iters);
    eprintln!(
        "# benchmarking rack placement study ({} iterations)",
        opts.iters
    );
    let rack_map = bench_rack_map(opts.iters);
    let report = BenchReport {
        schema: SCHEMA.to_string(),
        iterations: opts.iters,
        reduced: true,
        workers: workers(),
        experiments,
        drawer,
        ac_batch,
        rom,
        server_rtt,
        fleet_rtt,
        signal,
        rack_map,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, format!("{json}\n")).expect("report file writable");
    for exp in &report.experiments {
        println!(
            "{:8} median {:>12} ns  p95 {:>12} ns  solves {:>4}  steps {:>8}  overhead x{:.2}",
            exp.id,
            exp.untraced.median_ns,
            exp.untraced.p95_ns,
            exp.solves,
            exp.counters.steps,
            exp.overhead_ratio
        );
    }
    println!(
        "{:8} median {:>12} ns  {} unknowns  sparse_solves {:>6}  flops x{:.2} vs dense model",
        "drawer",
        report.drawer.wall.median_ns,
        report.drawer.system_size,
        report.drawer.counters.sparse_solves,
        report.drawer.flops_ratio
    );
    println!(
        "{:8} median {:>12} ns  {} freqs x {} ports  batched_solves {:>6}  flops x{:.2} vs \
         per-injection refactor",
        "ac_batch",
        report.ac_batch.wall.median_ns,
        report.ac_batch.frequencies,
        report.ac_batch.injections,
        report.ac_batch.counters.batched_solves,
        report.ac_batch.flops_ratio
    );
    println!(
        "{:8} median {:>12} ns  {} states  max_err {:.3} mV (budget {:.3} mV)  steps {} vs {}  \
         flops x{:.2} vs full order",
        "rom",
        report.rom.rom_wall.median_ns,
        report.rom.rom_states,
        report.rom.rom_max_error_v * 1e3,
        report.rom.budget_v * 1e3,
        report.rom.rom_steps,
        report.rom.full_steps,
        report.rom.flops_ratio
    );
    println!(
        "{:8} p50 {:>15} ns  p95 {:>12} ns  healthz p50 {:>9} ns  {} requests  solves {}  \
         cache_hits {}",
        "srv_rtt",
        report.server_rtt.rtt.median_ns,
        report.server_rtt.rtt.p95_ns,
        report.server_rtt.healthz_rtt.median_ns,
        report.server_rtt.requests,
        report.server_rtt.solves,
        report.server_rtt.cache_hits
    );
    println!(
        "{:8} p50 {:>15} ns  p95 {:>12} ns  {} shards  routed {:?}  solves {}  cache_hits {}",
        "fleet",
        report.fleet_rtt.campaign_rtt.median_ns,
        report.fleet_rtt.campaign_rtt.p95_ns,
        report.fleet_rtt.shards,
        report.fleet_rtt.routed,
        report.fleet_rtt.solves,
        report.fleet_rtt.cache_hits
    );
    println!(
        "{:8} batch {:>10.0} samp/s  stream {:>10.0} samp/s  overhead x{:.3}  {} segs  peak \
         {:.3e} Hz",
        "signal",
        report.signal.batch_samples_per_s,
        report.signal.stream_samples_per_s,
        report.signal.stream_overhead_ratio,
        report.signal.segments,
        report.signal.peak_freq_hz
    );
    println!(
        "{:8} median {:>12} ns  {}x{} chips ({} sites)  occs {:>4}  peak {:.2} vs {:.2} %p2p  \
         recovered {:.2} mV",
        "rack_map",
        report.rack_map.wall.median_ns,
        report.rack_map.drawers,
        report.rack_map.chips_per_drawer,
        report.rack_map.sites,
        report.rack_map.occupancies_evaluated,
        report.rack_map.aware_peak_pct,
        report.rack_map.naive_peak_pct,
        report.rack_map.guardband_recovered_mv
    );
    eprintln!("# wrote {}", opts.out.display());
    if opts.smoke {
        smoke_check(&json);
    }
}
