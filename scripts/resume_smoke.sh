#!/usr/bin/env bash
# Kill-and-resume smoke test: run a reduced report campaign, kill it
# mid-flight (SIGKILL, so nothing gets to clean up), resume it over the
# same persistent store, and require the resumed output to be
# byte-identical to an uninterrupted baseline — with a non-empty store
# proving the resume actually reused on-disk results.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
store="$workdir/results.jsonl"

echo "-- building release full_report"
cargo build -q --release --bin full_report

bin=target/release/full_report

echo "-- baseline (no store, uninterrupted)"
"$bin" --reduced >"$workdir/baseline.txt"

echo "-- interrupted run (SIGKILL after 5 s)"
# `timeout -s KILL` simulates a crash: no destructors, no flushes beyond
# the store's own per-append flush. The store must still be usable.
VOLTNOISE_STORE="$store" timeout -s KILL 5 "$bin" --reduced \
  >"$workdir/interrupted.txt" 2>"$workdir/interrupted.err" || true

if [[ ! -s "$store" ]]; then
  echo "FAIL: interrupted run left no store at $store" >&2
  exit 1
fi
lines_after_kill=$(wc -l <"$store")
echo "   store holds $lines_after_kill lines after the kill"

echo "-- resumed run (same store)"
VOLTNOISE_STORE="$store" "$bin" --reduced \
  >"$workdir/resumed.txt" 2>"$workdir/resumed.err"

echo "-- comparing resumed output against the baseline"
if ! cmp -s "$workdir/baseline.txt" "$workdir/resumed.txt"; then
  echo "FAIL: resumed report differs from the uninterrupted baseline" >&2
  diff "$workdir/baseline.txt" "$workdir/resumed.txt" | head -20 >&2
  exit 1
fi

# The resumed run reports its store reuse on stderr.
grep -q "served from disk" "$workdir/resumed.err" || {
  echo "FAIL: resumed run did not report store usage" >&2
  cat "$workdir/resumed.err" >&2
  exit 1
}

echo "resume smoke test passed: resumed report is byte-identical"
