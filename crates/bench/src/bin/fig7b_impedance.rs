//! Regenerates paper Fig. 7b: the die-level impedance profile with its
//! resonance peaks.

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { ImpedanceConfig::reduced() } else { ImpedanceConfig::paper() };
    let prof = run_impedance(tb.chip(), &cfg).expect("AC sweep runs");
    opts.finish(&prof.render(), &prof);
}
