//! A small blocking HTTP/1.1 client for the daemon's API: used by the
//! `voltnoise-client` binary, the integration tests and the benchmark
//! harness. Understands `Content-Length` and chunked bodies (the
//! streamed-results encoding) and nothing else.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (chunked bodies are reassembled).
    pub body: String,
}

impl Response {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body split into non-empty lines — the shape of a streamed
    /// `/jobs` response (one JSON document per line).
    pub fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Returns an I/O error on connection failure, timeout, or a response
/// this client cannot frame.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    // The server closes after each response, so read to EOF; the
    // per-read timeout still bounds a stalled peer.
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let raw = String::from_utf8(raw).map_err(|_| bad("response is not UTF-8"))?;
    let (head, rest) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line: {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(rest)?
    } else {
        rest.to_string()
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn decode_chunked(mut rest: &str) -> io::Result<String> {
    let mut body = String::new();
    loop {
        let (size_line, after) = rest
            .split_once("\r\n")
            .ok_or_else(|| bad("truncated chunk size line"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(format!("bad chunk size: {size_line:?}")))?;
        if size == 0 {
            return Ok(body);
        }
        if after.len() < size + 2 {
            return Err(bad("truncated chunk payload"));
        }
        body.push_str(&after[..size]);
        rest = &after[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_bodies_reassemble() {
        let encoded = "5\r\nhello\r\n8\r\n, world\n\r\n0\r\n\r\n";
        assert_eq!(decode_chunked(encoded).unwrap(), "hello, world\n");
    }

    #[test]
    fn truncated_chunks_error_instead_of_panicking() {
        assert!(decode_chunked("5\r\nhel").is_err());
        assert!(decode_chunked("zz\r\nhello\r\n").is_err());
        assert!(decode_chunked("").is_err());
    }

    #[test]
    fn response_lines_filters_blanks() {
        let r = Response {
            status: 200,
            headers: vec![],
            body: "a\n\nb\n".to_string(),
        };
        assert_eq!(r.lines(), vec!["a", "b"]);
    }
}
