//! Shared MNA assembly core: one stamping path for every analysis.
//!
//! Historically the crate stamped modified-nodal-analysis systems in
//! three hand-rolled places — the transient DC operating point, the
//! trapezoidal companion step matrix, and the complex-valued AC path —
//! each with its own closure and its own opportunity to drift. This
//! module centralizes them:
//!
//! - [`Stamper`] is the one primitive set (two-terminal admittance,
//!   branch-constraint pair), generic over [`Scalar`] so the same code
//!   assembles real transient systems and complex AC systems;
//! - [`MnaSystem`] is the parsed, analysis-ready view of a
//!   [`Netlist`], with one stamping function per system kind
//!   ([`MnaSystem::stamp_transient`], [`MnaSystem::stamp_dc`],
//!   [`MnaSystem::stamp_ac`]);
//! - [`SystemPattern`] is the symbolic sparsity of an assembled system,
//!   computed once per netlist and shared by every sparse
//!   factorization of it (see [`crate::sparse`]).
//!
//! Stamp *order* is part of the contract: dense floating-point
//! accumulation is order-sensitive, and the figure pipeline pins its
//! outputs byte-for-byte, so each stamping function reproduces the
//! historical assembly order exactly (all resistors, then capacitors,
//! then inductors, then voltage-source pairs for the transient matrix;
//! netlist element order for AC).

use crate::complex::Complex;
use crate::linalg::{Matrix, Scalar};
use crate::netlist::{Element, Netlist};
use serde::{Deserialize, Serialize};

/// System-size threshold (in MNA unknowns) above which
/// [`SolverBackend::Auto`] switches from the dense LU fast path to the
/// sparse path. A single zEC12-like chip assembles ~35 unknowns and
/// stays dense (preserving the pinned dense cost model and figure
/// bytes); a multi-chip drawer crosses 150+ unknowns and goes sparse.
pub const SPARSE_THRESHOLD: usize = 96;

/// Dense/sparse backend selection for the MNA solvers.
///
/// Serializable and hashable so it can participate in content keys
/// (see `voltnoise_system`): which backend solved a job is part of what
/// was computed, because the backends are only equivalent up to
/// floating-point rounding, not byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SolverBackend {
    /// Dense below [`SPARSE_THRESHOLD`] unknowns, sparse at or above it.
    #[default]
    Auto,
    /// Always use the dense `Matrix` path.
    Dense,
    /// Always use the CSR sparse path.
    Sparse,
}

impl SolverBackend {
    /// Whether a system of `n` unknowns should use the sparse path.
    pub fn is_sparse(self, n: usize) -> bool {
        match self {
            SolverBackend::Auto => n >= SPARSE_THRESHOLD,
            SolverBackend::Dense => false,
            SolverBackend::Sparse => true,
        }
    }
}

/// Assembly sink of a [`Stamper`]: anything positions can be
/// accumulated into. Implemented by the dense [`Matrix`], the CSR
/// matrix of [`crate::sparse`], and the symbolic pattern builder — so
/// numeric assembly and sparsity discovery run through the exact same
/// stamping code.
pub trait StampTarget<T: Scalar> {
    /// Adds `value` at position `(r, c)`.
    fn add(&mut self, r: usize, c: usize, value: T);
}

impl<T: Scalar> StampTarget<T> for Matrix<T> {
    #[inline]
    fn add(&mut self, r: usize, c: usize, value: T) {
        self.stamp(r, c, value);
    }
}

/// The shared MNA stamping primitives, generic over [`Scalar`].
///
/// Every assembly path in the crate routes through these two methods;
/// their internal stamp order is fixed (and documented per method)
/// because dense accumulation order decides the low bits of every
/// figure.
pub struct Stamper<'m, T: Scalar, M: StampTarget<T>> {
    target: &'m mut M,
    _scalar: std::marker::PhantomData<T>,
}

impl<'m, T: Scalar, M: StampTarget<T>> Stamper<'m, T, M> {
    /// Wraps an assembly target.
    pub fn new(target: &'m mut M) -> Self {
        Stamper {
            target,
            _scalar: std::marker::PhantomData,
        }
    }

    /// Stamps a two-terminal admittance `y` between unknowns `a` and
    /// `b` (`None` = ground): `+y` on both diagonals, `-y` on both
    /// off-diagonals, in the fixed order `(a,a)`, `(b,b)`, `(a,b)`,
    /// `(b,a)`.
    pub fn admittance(&mut self, a: Option<usize>, b: Option<usize>, y: T) {
        if let Some(ia) = a {
            self.target.add(ia, ia, y);
        }
        if let Some(ib) = b {
            self.target.add(ib, ib, y);
        }
        if let (Some(ia), Some(ib)) = (a, b) {
            self.target.add(ia, ib, -y);
            self.target.add(ib, ia, -y);
        }
    }

    /// Stamps one side of a branch constraint: `sign` at `(node, row)`
    /// and `(row, node)`. Used for voltage-source branch rows and the
    /// DC inductor-short rows.
    pub fn branch(&mut self, node: Option<usize>, row: usize, sign: T) {
        if let Some(i) = node {
            self.target.add(i, row, sign);
            self.target.add(row, i, sign);
        }
    }
}

/// A two-terminal element view: unknown indices plus the one value the
/// stamping functions need (conductance for resistors, farads for
/// capacitors, henries for inductors).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TwoTerminal {
    pub(crate) a: Option<usize>,
    pub(crate) b: Option<usize>,
    pub(crate) value: f64,
}

/// A voltage source with its assigned MNA branch row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BranchStamp {
    pub(crate) plus: Option<usize>,
    pub(crate) minus: Option<usize>,
    pub(crate) volts: f64,
    pub(crate) row: usize,
}

/// A time-varying current source and its drive-vector slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CurrentStamp {
    pub(crate) from: Option<usize>,
    pub(crate) to: Option<usize>,
    pub(crate) source: usize,
}

/// Reference into the per-kind element vectors, preserving netlist
/// element order (the AC path stamps in that order).
#[derive(Debug, Clone, Copy)]
enum OrderedElement {
    Resistor(usize),
    Capacitor(usize),
    Inductor(usize),
    VoltageSource(usize),
}

/// Parsed, analysis-ready MNA view of a [`Netlist`].
///
/// Element values and unknown indices are resolved once at
/// construction; the three stamping functions then assemble any
/// [`StampTarget`] — a dense matrix, a CSR matrix, or the symbolic
/// pattern builder — without touching the netlist again. The system is
/// immutable: companion-model *state* (trapezoidal history) lives in
/// the transient solver, not here.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    n: usize,
    n_nodes: usize,
    pub(crate) resistors: Vec<TwoTerminal>,
    pub(crate) caps: Vec<TwoTerminal>,
    pub(crate) inductors: Vec<TwoTerminal>,
    pub(crate) vsources: Vec<BranchStamp>,
    pub(crate) isources: Vec<CurrentStamp>,
    order: Vec<OrderedElement>,
    n_drive: usize,
}

impl MnaSystem {
    /// Parses a netlist into its MNA element views. Voltage-source
    /// branch rows are assigned in netlist order starting at the first
    /// index past the non-ground nodes.
    pub fn new(netlist: &Netlist) -> Self {
        let n_nodes = netlist.node_count() - 1;
        let n = netlist.system_size();
        let mut sys = MnaSystem {
            n,
            n_nodes,
            resistors: Vec::new(),
            caps: Vec::new(),
            inductors: Vec::new(),
            vsources: Vec::new(),
            isources: Vec::new(),
            order: Vec::new(),
            n_drive: netlist.current_source_count(),
        };
        let mut vrow = n_nodes;
        for el in netlist.elements() {
            match *el {
                Element::Resistor { a, b, ohms } => {
                    sys.order
                        .push(OrderedElement::Resistor(sys.resistors.len()));
                    sys.resistors.push(TwoTerminal {
                        a: a.unknown_index(),
                        b: b.unknown_index(),
                        value: 1.0 / ohms,
                    });
                }
                Element::Capacitor { a, b, farads } => {
                    sys.order.push(OrderedElement::Capacitor(sys.caps.len()));
                    sys.caps.push(TwoTerminal {
                        a: a.unknown_index(),
                        b: b.unknown_index(),
                        value: farads,
                    });
                }
                Element::Inductor { a, b, henries } => {
                    sys.order
                        .push(OrderedElement::Inductor(sys.inductors.len()));
                    sys.inductors.push(TwoTerminal {
                        a: a.unknown_index(),
                        b: b.unknown_index(),
                        value: henries,
                    });
                }
                Element::VoltageSource { plus, minus, volts } => {
                    sys.order
                        .push(OrderedElement::VoltageSource(sys.vsources.len()));
                    sys.vsources.push(BranchStamp {
                        plus: plus.unknown_index(),
                        minus: minus.unknown_index(),
                        volts,
                        row: vrow,
                    });
                    vrow += 1;
                }
                Element::CurrentSource { from, to, source } => {
                    // Open circuits in every assembled matrix; they only
                    // contribute RHS drive terms.
                    sys.isources.push(CurrentStamp {
                        from: from.unknown_index(),
                        to: to.unknown_index(),
                        source: source.index(),
                    });
                }
            }
        }
        sys
    }

    /// Size of the coupled (transient step / AC) system: non-ground
    /// nodes plus voltage-source branch rows.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of non-ground nodes.
    pub fn node_unknowns(&self) -> usize {
        self.n_nodes
    }

    /// Size of the DC operating-point system: the coupled system plus
    /// one branch row per inductor (inductors are DC shorts).
    pub fn dc_size(&self) -> usize {
        self.n + self.inductors.len()
    }

    /// Length of the drive vector (number of current sources).
    pub fn drive_len(&self) -> usize {
        self.n_drive
    }

    /// Stamps the trapezoidal companion matrix for step size `h`:
    /// resistor conductances, capacitor companions `2C/h`, inductor
    /// companions `h/2L`, then voltage-source branch pairs — the
    /// historical transient assembly order.
    pub fn stamp_transient<M: StampTarget<f64>>(&self, target: &mut M, h: f64) {
        let mut s = Stamper::new(target);
        for r in &self.resistors {
            s.admittance(r.a, r.b, r.value);
        }
        for c in &self.caps {
            s.admittance(c.a, c.b, 2.0 * c.value / h);
        }
        for l in &self.inductors {
            s.admittance(l.a, l.b, h / (2.0 * l.value));
        }
        for v in &self.vsources {
            s.branch(v.plus, v.row, 1.0);
            s.branch(v.minus, v.row, -1.0);
        }
    }

    /// Stamps the DC operating-point matrix (size [`MnaSystem::dc_size`]):
    /// resistor conductances, voltage-source branch pairs, then one
    /// short-circuit branch row per inductor (`v(a) - v(b) = 0` with a
    /// branch-current unknown at row `size() + k`). Capacitors are DC
    /// open circuits and stamp nothing.
    pub fn stamp_dc<M: StampTarget<f64>>(&self, target: &mut M) {
        let mut s = Stamper::new(target);
        for r in &self.resistors {
            s.admittance(r.a, r.b, r.value);
        }
        for v in &self.vsources {
            s.branch(v.plus, v.row, 1.0);
            s.branch(v.minus, v.row, -1.0);
        }
        for (k, l) in self.inductors.iter().enumerate() {
            let row = self.n + k;
            s.branch(l.a, row, 1.0);
            s.branch(l.b, row, -1.0);
        }
    }

    /// Stamps the dynamic (energy-storage) part of the DC-sized
    /// descriptor system, scaled by `scale`: capacitors as admittances
    /// `scale·C`, then for each inductor `k` the entry `-scale·L` on the
    /// branch-row diagonal `(size() + k, size() + k)`.
    ///
    /// Together with [`MnaSystem::stamp_dc`] this forms the descriptor
    /// pair `(G, C)` of `C·ż + G·z = B·u` over [`MnaSystem::dc_size`]
    /// unknowns: node KCL rows gain `C·dv/dt` terms, and each inductor
    /// branch row reads `v(a) - v(b) - L·di/dt = 0`. This is the
    /// state-space form the reduced-order macromodel projects.
    pub fn stamp_capacitance<M: StampTarget<f64>>(&self, target: &mut M, scale: f64) {
        {
            let mut s = Stamper::new(target);
            for c in &self.caps {
                s.admittance(c.a, c.b, scale * c.value);
            }
        }
        for (k, l) in self.inductors.iter().enumerate() {
            let row = self.n + k;
            target.add(row, row, -scale * l.value);
        }
    }

    /// Stamps the complex admittance matrix at angular frequency
    /// `omega`, in netlist element order (the historical AC assembly
    /// order): resistors `1/R`, capacitors `jωC`, inductors `-j/(ωL)`,
    /// voltage sources as AC shorts (branch pairs), current sources as
    /// small-signal opens.
    pub fn stamp_ac<M: StampTarget<Complex>>(&self, target: &mut M, omega: f64) {
        let mut s = Stamper::new(target);
        for el in &self.order {
            match *el {
                OrderedElement::Resistor(i) => {
                    let r = &self.resistors[i];
                    s.admittance(r.a, r.b, Complex::from_real(r.value));
                }
                OrderedElement::Capacitor(i) => {
                    let c = &self.caps[i];
                    s.admittance(c.a, c.b, Complex::new(0.0, omega * c.value));
                }
                OrderedElement::Inductor(i) => {
                    let l = &self.inductors[i];
                    s.admittance(l.a, l.b, Complex::new(0.0, -1.0 / (omega * l.value)));
                }
                OrderedElement::VoltageSource(i) => {
                    let v = &self.vsources[i];
                    s.branch(v.plus, v.row, Complex::ONE);
                    s.branch(v.minus, v.row, -Complex::ONE);
                }
            }
        }
    }
}

/// Symbolic sparsity pattern of an assembled MNA system, in CSR form
/// (sorted column indices per row).
///
/// Computed once per netlist by replaying the exact stamping sequence
/// into a position recorder, then shared (behind an `Arc`) by every
/// sparse matrix assembled for that system — the transient step matrix
/// at every step size, and the AC matrix at every frequency, have the
/// same pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemPattern {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

/// Records stamp positions, ignoring values.
struct PatternBuilder {
    rows: Vec<Vec<usize>>,
}

impl PatternBuilder {
    fn new(n: usize) -> Self {
        PatternBuilder {
            rows: vec![Vec::new(); n],
        }
    }

    fn finish(mut self) -> SystemPattern {
        let n = self.rows.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for row in &mut self.rows {
            row.sort_unstable();
            row.dedup();
            col_idx.extend_from_slice(row);
            row_ptr.push(col_idx.len());
        }
        SystemPattern {
            n,
            row_ptr,
            col_idx,
        }
    }
}

impl StampTarget<f64> for PatternBuilder {
    #[inline]
    fn add(&mut self, r: usize, c: usize, _value: f64) {
        self.rows[r].push(c);
    }
}

impl SystemPattern {
    /// Pattern of the coupled system (transient step matrix at any `h`;
    /// identical to the AC matrix pattern at any frequency).
    pub fn coupled(sys: &MnaSystem) -> SystemPattern {
        let mut b = PatternBuilder::new(sys.size());
        sys.stamp_transient(&mut b, 1.0);
        b.finish()
    }

    /// Pattern of the DC operating-point system (includes the inductor
    /// branch rows).
    pub fn dc(sys: &MnaSystem) -> SystemPattern {
        let mut b = PatternBuilder::new(sys.dc_size());
        sys.stamp_dc(&mut b);
        b.finish()
    }

    /// Pattern of the DC-sized descriptor pair: the union of the static
    /// part ([`MnaSystem::stamp_dc`]) and the dynamic part
    /// ([`MnaSystem::stamp_capacitance`]), so one pattern serves `G`,
    /// `C`, and any shifted combination `G + s·C` the reduced-order
    /// model factors.
    pub fn dc_dynamic(sys: &MnaSystem) -> SystemPattern {
        let mut b = PatternBuilder::new(sys.dc_size());
        sys.stamp_dc(&mut b);
        sys.stamp_capacitance(&mut b, 1.0);
        b.finish()
    }

    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of structurally nonzero positions.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Sorted column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Value-array index of position `(r, c)`, or `None` when the
    /// position is structurally zero.
    pub fn index_of(&self, r: usize, c: usize) -> Option<usize> {
        let base = self.row_ptr[r];
        self.row_cols(r)
            .binary_search(&c)
            .ok()
            .map(|off| base + off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Netlist, NodeId};

    fn rlc_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_series_rl(vdd, die, 1e-3, 1e-9).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, 1e-6).unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();
        nl
    }

    #[test]
    fn backend_threshold_selects_sparse() {
        assert!(!SolverBackend::Auto.is_sparse(SPARSE_THRESHOLD - 1));
        assert!(SolverBackend::Auto.is_sparse(SPARSE_THRESHOLD));
        assert!(!SolverBackend::Dense.is_sparse(10_000));
        assert!(SolverBackend::Sparse.is_sparse(2));
    }

    #[test]
    fn system_sizes_match_netlist() {
        let nl = rlc_netlist();
        let sys = MnaSystem::new(&nl);
        assert_eq!(sys.size(), nl.system_size());
        assert_eq!(sys.node_unknowns(), nl.node_count() - 1);
        assert_eq!(sys.dc_size(), sys.size() + 1); // one inductor
        assert_eq!(sys.drive_len(), 1);
    }

    #[test]
    fn pattern_is_symmetric_and_covers_diagonal_nodes() {
        let nl = rlc_netlist();
        let sys = MnaSystem::new(&nl);
        let p = SystemPattern::coupled(&sys);
        assert_eq!(p.size(), sys.size());
        for r in 0..p.size() {
            for &c in p.row_cols(r) {
                assert!(
                    p.index_of(c, r).is_some(),
                    "pattern must be structurally symmetric ({r},{c})"
                );
            }
        }
        // Every node unknown touches at least one element.
        for r in 0..sys.node_unknowns() {
            assert!(p.index_of(r, r).is_some(), "missing diagonal at {r}");
        }
    }

    #[test]
    fn pattern_rejects_structural_zeros() {
        let nl = rlc_netlist();
        let sys = MnaSystem::new(&nl);
        let p = SystemPattern::coupled(&sys);
        // A voltage-source branch row has no diagonal entry.
        let vrow = sys.vsources[0].row;
        assert_eq!(p.index_of(vrow, vrow), None);
    }

    #[test]
    fn dc_dynamic_pattern_covers_descriptor_pair() {
        let nl = rlc_netlist();
        let sys = MnaSystem::new(&nl);
        let p = SystemPattern::dc_dynamic(&sys);
        assert_eq!(p.size(), sys.dc_size());
        // The inductor branch-row diagonal is present (it holds -L in
        // the dynamic part) even though the static DC pattern lacks it.
        let lrow = sys.size(); // one inductor -> first extra row
        assert!(p.index_of(lrow, lrow).is_some());
        assert!(SystemPattern::dc(&sys).index_of(lrow, lrow).is_none());
        // stamp_capacitance lands entirely inside the pattern and its
        // values scale linearly.
        let n = sys.dc_size();
        let mut c1 = Matrix::<f64>::zeros(n, n);
        sys.stamp_capacitance(&mut c1, 1.0);
        let mut c2 = Matrix::<f64>::zeros(n, n);
        sys.stamp_capacitance(&mut c2, 2.0);
        assert_eq!(c1[(lrow, lrow)], -1e-9);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(2.0 * c1[(r, c)], c2[(r, c)]);
            }
        }
    }

    #[test]
    fn dense_stamp_matches_legacy_shapes() {
        let nl = rlc_netlist();
        let sys = MnaSystem::new(&nl);
        let n = sys.size();
        let mut m = Matrix::<f64>::zeros(n, n);
        sys.stamp_transient(&mut m, 1e-9);
        // Symmetric structure with positive diagonals on node rows.
        for r in 0..sys.node_unknowns() {
            assert!(m[(r, r)] > 0.0, "diagonal {r} must be positive");
        }
        let vrow = sys.vsources[0].row;
        let plus = sys.vsources[0].plus.unwrap();
        assert_eq!(m[(plus, vrow)], 1.0);
        assert_eq!(m[(vrow, plus)], 1.0);
    }
}
