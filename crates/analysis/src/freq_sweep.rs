//! Noise sensitivity to stimulus frequency (paper Figs. 7a and 9).
//!
//! Runs one maximum dI/dt stressmark per core over a spectrum of stimulus
//! frequencies — unsynchronized for Fig. 7a, TOD-synchronized for
//! Fig. 9 — and reports per-core %p2p skitter readings.

use serde::{Deserialize, Serialize};
use voltnoise_pdn::ac::log_space;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::noise::{run_noise, CoreLoad, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Stimulus frequencies to explore.
    pub freqs_hz: Vec<f64>,
    /// Simulation window per point (`None` = auto).
    pub window_s: Option<f64>,
    /// Free-run phase seeds to average over (unsynchronized runs sample
    /// several relative alignments, like repeated runs on hardware).
    pub seeds: Vec<u64>,
}

impl SweepConfig {
    /// The paper-scale sweep: ~1.5 kHz to 15 MHz.
    pub fn paper() -> Self {
        SweepConfig {
            freqs_hz: log_space(1.5e3, 15e6, 28),
            window_s: None,
            seeds: vec![1, 2, 3],
        }
    }

    /// A reduced sweep for tests.
    pub fn reduced() -> Self {
        SweepConfig {
            freqs_hz: vec![25e3, 45e3, 300e3, 2.5e6, 10e6],
            window_s: Some(60e-6),
            seeds: vec![1],
        }
    }
}

/// One sweep point: per-core noise at one stimulus frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Stimulus frequency in hertz.
    pub freq_hz: f64,
    /// Seed-averaged per-core %p2p readings.
    pub per_core_pct: [f64; NUM_CORES],
}

impl SweepPoint {
    /// Highest per-core reading at this frequency.
    pub fn max_pct(&self) -> f64 {
        self.per_core_pct
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Result of a frequency sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Whether the stressmarks were TOD-synchronized.
    pub synced: bool,
    /// One point per frequency, in input order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The frequency with the highest worst-core reading and that reading.
    pub fn peak(&self) -> (f64, f64) {
        self.points
            .iter()
            .map(|p| (p.freq_hz, p.max_pct()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite noise"))
            .expect("non-empty sweep")
    }

    /// Reading at the point closest to `freq_hz`.
    pub fn at(&self, freq_hz: f64) -> Option<&SweepPoint> {
        self.points.iter().min_by(|a, b| {
            (a.freq_hz - freq_hz)
                .abs()
                .partial_cmp(&(b.freq_hz - freq_hz).abs())
                .expect("finite frequencies")
        })
    }

    /// Renders the paper-style series: frequency, per-core %p2p.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.synced {
            "# Fig. 9: per-core %p2p vs stimulus frequency (synchronized every 4 ms)\n"
        } else {
            "# Fig. 7a: per-core %p2p vs stimulus frequency (no synchronization)\n"
        });
        out.push_str("freq_hz");
        for i in 0..NUM_CORES {
            out.push_str(&format!(",core{i}_pct_p2p"));
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{:.4e}", p.freq_hz));
            for v in p.per_core_pct {
                out.push_str(&format!(",{v:.1}"));
            }
            out.push('\n');
        }
        let (f, m) = self.peak();
        out.push_str(&format!("# peak: {m:.1} %p2p at {f:.3e} Hz\n"));
        out
    }
}

/// Runs the sweep. `sync` selects Fig. 9 (true) or Fig. 7a (false).
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_sweep(tb: &Testbed, cfg: &SweepConfig, sync: bool) -> Result<SweepResult, PdnError> {
    let mut points = Vec::with_capacity(cfg.freqs_hz.len());
    for &freq in &cfg.freqs_hz {
        let sync_spec = sync.then(SyncSpec::paper_default);
        let sm = tb.max_stressmark(freq, sync_spec);
        let loads: [CoreLoad; NUM_CORES] =
            std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
        let mut acc = [0.0f64; NUM_CORES];
        for &seed in &cfg.seeds {
            let out = run_noise(
                tb.chip(),
                &loads,
                &NoiseRunConfig {
                    window_s: cfg.window_s,
                    record_traces: false,
                    seed,
                },
            )?;
            for (a, v) in acc.iter_mut().zip(out.pct_p2p) {
                *a += v;
            }
        }
        let n = cfg.seeds.len().max(1) as f64;
        points.push(SweepPoint {
            freq_hz: freq,
            per_core_pct: acc.map(|v| v / n),
        });
    }
    Ok(SweepResult { synced: sync, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsync_sweep_peaks_in_die_band() {
        let tb = Testbed::fast();
        let res = run_sweep(tb, &SweepConfig::reduced(), false).unwrap();
        let (f_peak, m_peak) = res.peak();
        assert!(
            (1e6..5e6).contains(&f_peak),
            "peak at {f_peak:.3e} ({m_peak:.1}%)"
        );
        // Floor is clearly below the peak.
        let floor = res.at(10e6).unwrap().max_pct();
        assert!(m_peak > floor + 5.0, "peak {m_peak} floor {floor}");
    }

    #[test]
    fn sync_sweep_exceeds_unsync_everywhere() {
        let tb = Testbed::fast();
        let cfg = SweepConfig::reduced();
        let unsync = run_sweep(tb, &cfg, false).unwrap();
        let synced = run_sweep(tb, &cfg, true).unwrap();
        for (u, s) in unsync.points.iter().zip(&synced.points) {
            assert!(
                s.max_pct() > u.max_pct() + 8.0,
                "at {:.3e}: sync {} vs unsync {}",
                u.freq_hz,
                s.max_pct(),
                u.max_pct()
            );
        }
    }

    #[test]
    fn sync_off_resonance_beats_unsync_resonance() {
        // The paper's key claim: synchronization matters more than
        // resonance (§V-B).
        let tb = Testbed::fast();
        let cfg = SweepConfig::reduced();
        let unsync = run_sweep(tb, &cfg, false).unwrap();
        let synced = run_sweep(tb, &cfg, true).unwrap();
        let unsync_peak = unsync.peak().1;
        let sync_mid = synced.at(300e3).unwrap().max_pct();
        assert!(
            sync_mid > unsync_peak,
            "sync mid-band {sync_mid} vs unsync peak {unsync_peak}"
        );
    }

    #[test]
    fn render_has_header_and_rows() {
        let tb = Testbed::fast();
        let mut cfg = SweepConfig::reduced();
        cfg.freqs_hz.truncate(2);
        let res = run_sweep(tb, &cfg, false).unwrap();
        let text = res.render();
        assert!(text.contains("Fig. 7a"));
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 3);
    }
}
