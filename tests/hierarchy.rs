//! Hierarchy degeneracy: the 1 drawer × 1 chip × zero-variation rack
//! IS the chip, byte for byte, all the way up the stack.
//!
//! The site-indexed refactor treats every chip-scale experiment as the
//! 1×1×`NUM_CORES` special case of the rack machinery. That claim is
//! only safe if the degenerate rack reproduces chip results *exactly* —
//! same solver trajectory, same serialized bytes — through the engine's
//! content-keyed job path and through the scheduler replay. These tests
//! pin that equivalence, plus a golden file on the replay's figures so
//! a drift in either hierarchy level lands in review
//! (`VOLTNOISE_BLESS=1` regenerates).

#[path = "golden/mod.rs"]
mod golden;

use golden::assert_golden;
use std::sync::Arc;
use voltnoise::pdn::topology::VariationSpec;
use voltnoise::pdn::NUM_CORES;
use voltnoise::stressmark::SyncSpec;
use voltnoise::system::{
    replay, synthetic_trace, CoreLoad, Engine, EngineNoiseModel, NaivePolicy, NoiseAwarePolicy,
    NoiseRunConfig, PlacementPolicy, RackScenario, ScheduleOutcome, SimJob, Testbed,
};

fn degenerate_rack(tb: &Testbed) -> Arc<RackScenario> {
    Arc::new(
        RackScenario::build(tb.chip(), 1, 1, VariationSpec::none())
            .expect("degenerate rack builds"),
    )
}

fn run_cfg() -> NoiseRunConfig {
    NoiseRunConfig {
        window_s: Some(4e-6),
        seed: 1,
        ..NoiseRunConfig::default()
    }
}

/// The engine path: a chip job and the equivalent degenerate-rack job
/// carry different content keys (the rack signature is its own scheme),
/// but their solved outcomes must serialize to identical bytes.
#[test]
fn degenerate_rack_jobs_reproduce_chip_outcomes_byte_identically() {
    let tb = Testbed::fast();
    let engine = Engine::new();
    let rack = degenerate_rack(tb);
    let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
    // A mixed occupancy: cores 0 and 3 active, the rest idle.
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|i| {
        if i == 0 || i == 3 {
            CoreLoad::Stressmark(sm.clone())
        } else {
            CoreLoad::Idle
        }
    });
    let chip_job = SimJob::batch(tb.chip()).job(loads.clone(), run_cfg());
    let rack_job = SimJob::rack(rack, loads, run_cfg());
    assert_ne!(
        chip_job.key(),
        rack_job.key(),
        "chip and rack jobs are distinct experiments in the cache"
    );
    let chip_out = engine.run_one(&chip_job).expect("chip job solves");
    let rack_out = engine.run_one(&rack_job).expect("rack job solves");
    assert_eq!(
        serde_json::to_string(&*chip_out).expect("chip outcome serializes"),
        serde_json::to_string(&*rack_out).expect("rack outcome serializes"),
        "the 1x1 zero-variation rack must reproduce the chip byte for byte"
    );
    assert_eq!(engine.stats().solves, 2, "both keys solve exactly once");
}

/// One policy replayed at both hierarchy levels; returns (chip, rack).
fn replay_both_levels(
    tb: &Testbed,
    policy: &dyn PlacementPolicy,
) -> (ScheduleOutcome, ScheduleOutcome) {
    let active = CoreLoad::Stressmark(tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default())));
    let trace = synthetic_trace(8, 3.0);
    let chip_engine = Engine::new();
    let mut chip_model = EngineNoiseModel::chip(&chip_engine, tb.chip(), active.clone(), run_cfg());
    let chip = replay(&mut chip_model, policy, &trace).expect("chip replay");
    let rack_engine = Engine::new();
    let mut rack_model =
        EngineNoiseModel::rack(&rack_engine, degenerate_rack(tb), active, run_cfg());
    let rack = replay(&mut rack_model, policy, &trace).expect("rack replay");
    (chip, rack)
}

/// The scheduler path: replaying one trace against the chip model and
/// against the degenerate rack model must produce identical schedule
/// outcomes under both policies, and the figures are pinned to a golden
/// file so either hierarchy level drifting breaks the build.
#[test]
fn degenerate_rack_replay_matches_chip_and_the_golden_figures() {
    let tb = Testbed::fast();
    let mut doc = String::from(
        "# Hierarchy degeneracy: scheduler replay on the chip vs the 1x1 zero-variation rack \
         (reduced)\npolicy,mean_required_pct,peak_required_pct,queued_jobs\n",
    );
    for policy in [&NaivePolicy as &dyn PlacementPolicy, &NoiseAwarePolicy] {
        let (chip, rack) = replay_both_levels(tb, policy);
        assert_eq!(
            serde_json::to_string(&chip).expect("chip outcome serializes"),
            serde_json::to_string(&rack).expect("rack outcome serializes"),
            "{}: chip and degenerate-rack replays must match byte for byte",
            chip.policy
        );
        doc.push_str(&format!(
            "{},{:.6},{:.6},{}\n",
            chip.policy, chip.mean_required_pct, chip.peak_required_pct, chip.queued_jobs
        ));
    }
    assert_golden("hierarchy_replay_reduced.txt", &doc);
}

/// Variation is the only thing separating the hierarchy levels: the
/// same rack shape under a nonzero draw must NOT match the chip.
#[test]
fn variated_rack_departs_from_the_chip() {
    let tb = Testbed::fast();
    let engine = Engine::new();
    let rack = Arc::new(
        RackScenario::build(tb.chip(), 1, 1, VariationSpec::paper_default(3))
            .expect("variated rack builds"),
    );
    let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let chip_out = engine
        .run_one(&SimJob::batch(tb.chip()).job(loads.clone(), run_cfg()))
        .expect("chip job solves");
    let rack_out = engine
        .run_one(&SimJob::rack(rack, loads, run_cfg()))
        .expect("rack job solves");
    assert_ne!(
        serde_json::to_string(&*chip_out).unwrap(),
        serde_json::to_string(&*rack_out).unwrap(),
        "a variated 1x1 rack is different silicon and must read differently"
    );
}
