//! Telemetry integration suite: solver work counters are exact and
//! deterministic end to end, histogram merging is associative, engine
//! stats round-trip through JSON, and — most importantly — telemetry is
//! pure observation: toggling it never changes a single result bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use voltnoise::pdn::transient::{ConstantDrive, Probe, TransientConfig};
use voltnoise::pdn::{Netlist, NodeId, TransientSolver};
use voltnoise::prelude::*;
use voltnoise::system::{
    run_noise_instrumented, set_trace, EngineStats, LogHistogram, NoiseRunConfig,
};

/// Six distinct (by seed) stressmark jobs on the fast testbed chip.
fn test_jobs(tb: &Testbed, n: u64) -> Vec<SimJob> {
    let batch = SimJob::batch(tb.chip());
    (1..=n)
        .map(|seed| {
            let sm = tb.max_stressmark(2.5e6, None);
            let loads: [CoreLoad; NUM_CORES] =
                std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
            batch.job(
                loads,
                NoiseRunConfig {
                    window_s: Some(20e-6),
                    record_traces: false,
                    seed,
                    ..NoiseRunConfig::default()
                },
            )
        })
        .collect()
}

/// Exact counters on a hand-built RC netlist: with a power-of-two step
/// and a power-of-two step count, floating-point time accumulation is
/// exact, so every counter is predictable to the unit.
#[test]
fn counters_are_exact_on_hand_built_rc() {
    let mut nl = Netlist::new();
    let vdd = nl.add_node("vdd");
    nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
    let die = nl.add_node("die");
    nl.add_resistor(vdd, die, 0.1).unwrap();
    nl.add_capacitor(die, NodeId::GROUND, 1e-6).unwrap();
    nl.add_current_source(die, NodeId::GROUND).unwrap();

    let mut solver = TransientSolver::new(&nl).unwrap();
    let h = (2.0f64).powi(-27); // ~7.45 ns, exactly representable
    let n_steps = 256u64;
    let mut cfg = TransientConfig::new(h * n_steps as f64);
    cfg.h_coarse = h;
    cfg.h_fine = h;
    cfg.settle = 0.0;
    let res = solver
        .run(
            &ConstantDrive::new(vec![2.0]),
            &[Probe::NodeVoltage(die)],
            &cfg,
        )
        .unwrap();
    let c = res.counters;
    assert_eq!(c.steps, n_steps);
    assert_eq!(c.dc_solves, 1);
    assert_eq!(c.lu_factorizations, 2, "one DC + one transient step size");
    assert_eq!(c.factor_cache_hits, n_steps - 1);
    assert_eq!(c.solve_calls, n_steps + 1);
    assert!(c.est_flops > 0);
}

/// The instrumented noise path returns exactly the outcome the plain
/// path returns, with counters that tie out against the outcome's own
/// step count — and counters are identical across repeated runs.
#[test]
fn instrumented_noise_run_matches_plain_run() {
    let tb = Testbed::fast();
    let sm = tb.max_stressmark(2.5e6, None);
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let cfg = NoiseRunConfig {
        window_s: Some(20e-6),
        seed: 7,
        ..NoiseRunConfig::default()
    };
    let plain = run_noise(tb.chip(), &loads, &cfg).unwrap();
    let (instr, tel1) = run_noise_instrumented(tb.chip(), &loads, &cfg).unwrap();
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&instr).unwrap(),
        "instrumentation must not change the outcome"
    );
    assert_eq!(tel1.counters.steps, instr.steps as u64);
    assert_eq!(tel1.counters.dc_solves, 1);
    // One back-substitution per accepted step plus the DC solve.
    assert_eq!(
        tel1.counters.solve_calls,
        tel1.counters.steps + tel1.counters.dc_solves
    );
    // Every accepted step either reused a factorization or computed one.
    assert_eq!(
        tel1.counters.factor_cache_hits + tel1.counters.lu_factorizations - tel1.counters.dc_solves,
        tel1.counters.steps
    );
    let (_, tel2) = run_noise_instrumented(tb.chip(), &loads, &cfg).unwrap();
    assert_eq!(
        tel1.counters, tel2.counters,
        "counters must be deterministic"
    );
}

/// Engine-aggregated counters are independent of worker count and of
/// cache hits (a cached answer performs no solver work).
#[test]
fn engine_counters_are_schedule_independent() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 4);
    let serial = Engine::with_workers(1);
    serial.run_jobs(&jobs).unwrap();
    let parallel = Engine::with_workers(4);
    parallel.run_jobs(&jobs).unwrap();
    let s = serial.telemetry().solver;
    let p = parallel.telemetry().solver;
    assert!(!s.is_zero(), "solved jobs must record work");
    assert_eq!(s, p, "counters must not depend on the schedule");
    // Re-running the same jobs answers from cache: zero new work.
    parallel.run_jobs(&jobs).unwrap();
    assert_eq!(parallel.telemetry().solver, p);
}

/// `EngineStats` (telemetry included) survives a JSON round trip.
#[test]
fn engine_stats_round_trip_through_json() {
    let tb = Testbed::fast();
    let engine = Engine::with_workers(2);
    engine.run_jobs(&test_jobs(tb, 2)).unwrap();
    let stats = engine.stats();
    let json = stats.to_json().unwrap();
    let parsed = EngineStats::from_json(&json).unwrap();
    assert_eq!(parsed, stats);
    assert_eq!(parsed.telemetry.solver, engine.telemetry().solver);
}

/// Histogram merge is associative and total-count-preserving over
/// seeded random sample sets, and equals recording the union directly.
#[test]
fn histogram_merge_property() {
    let mut rng = SmallRng::seed_from_u64(0x7e1e);
    for _ in 0..100 {
        let sets: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                let n = rng.gen_range(0..30usize);
                (0..n)
                    .map(|_| rng.gen::<u64>() >> rng.gen_range(0..64u32))
                    .collect()
            })
            .collect();
        let hist = |samples: &[u64]| {
            let mut h = LogHistogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let mut left = hist(&sets[0]);
        left.merge(&hist(&sets[1]));
        left.merge(&hist(&sets[2]));
        let mut tail = hist(&sets[1]);
        tail.merge(&hist(&sets[2]));
        let mut right = hist(&sets[0]);
        right.merge(&tail);
        let union: Vec<u64> = sets.concat();
        assert_eq!(left, right);
        assert_eq!(left, hist(&union));
        assert_eq!(left.count(), union.len() as u64);
    }
}

/// The one test allowed to flip the process-wide trace flag (the flag
/// is global, so gating assertions and the on/off comparison must live
/// in a single test to avoid racing siblings).
///
/// Untraced engines record no wall-clock samples; traced engines record
/// one histogram sample per solve; and the outcomes are bit-identical
/// either way.
#[test]
fn tracing_fills_histograms_without_changing_results() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 3);

    set_trace(false);
    let untraced = Engine::with_workers(2);
    let base = untraced.run_jobs(&jobs).unwrap();
    let cold = untraced.telemetry();
    assert!(!cold.solver.is_zero(), "counters are always collected");
    assert!(cold.job_wall.is_empty(), "untraced: no wall samples");
    assert_eq!(cold.phase_ns.total_ns(), 0, "untraced: no phase time");

    set_trace(true);
    let traced = Engine::with_workers(2);
    let hot = traced.run_jobs(&jobs).unwrap();
    let warm = traced.telemetry();
    set_trace(false);

    assert_eq!(warm.solver, cold.solver, "counters ignore the trace flag");
    assert_eq!(warm.job_wall.count(), jobs.len() as u64);
    assert_eq!(warm.step.count(), jobs.len() as u64);
    assert!(warm.phase_ns.total_ns() > 0, "traced: phase time recorded");
    assert!(warm.job_wall.p95().is_some());
    for (a, b) in base.iter().zip(&hot) {
        assert_eq!(
            serde_json::to_string(&**a).unwrap(),
            serde_json::to_string(&**b).unwrap(),
            "tracing must never change an outcome"
        );
    }
}
