//! Package-design support: impedance masks and decap sizing.
//!
//! Paper §II-B describes the flow this module implements: "during the
//! package design process, PDN impedance (Z) profiles and decap maps are
//! generated. In that process, package designers ensure that a target
//! maximum impedance Z is not surpassed for any given frequency by
//! placing enough decaps in parallel. This guarantees that Vnoise remains
//! within a constrained magnitude, allowing for affordable and reliable
//! voltage margins."

use crate::ac::{log_space, AcAnalysis};
use crate::error::PdnError;
use crate::netlist::NodeId;
use crate::topology::{ChipPdn, PdnParams};
use serde::{Deserialize, Serialize};

/// A piecewise-constant impedance mask: the maximum |Z| allowed per
/// frequency band.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::design::ImpedanceMask;
///
/// let mask = ImpedanceMask::new(vec![(1e5, 1e-3), (1e7, 2e-3)]).unwrap();
/// assert_eq!(mask.limit_at(1e4), Some(1e-3));
/// assert_eq!(mask.limit_at(1e6), Some(2e-3));
/// assert_eq!(mask.limit_at(1e8), None); // beyond the mask
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpedanceMask {
    /// `(upper_frequency_hz, max_z_ohm)` bands in ascending frequency.
    bands: Vec<(f64, f64)>,
}

impl ImpedanceMask {
    /// Builds a mask from `(upper_frequency, max_z)` bands.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidTimebase`] if bands are empty, not
    /// ascending, or carry non-positive limits.
    pub fn new(bands: Vec<(f64, f64)>) -> Result<Self, PdnError> {
        let bad = |reason: &str| {
            Err(PdnError::InvalidTimebase {
                reason: reason.to_string(),
            })
        };
        if bands.is_empty() {
            return bad("impedance mask needs at least one band");
        }
        if bands.windows(2).any(|w| w[0].0 >= w[1].0) {
            return bad("mask band frequencies must ascend");
        }
        if bands
            .iter()
            .any(|(f, z)| !(f.is_finite() && *f > 0.0 && z.is_finite() && *z > 0.0))
        {
            return bad("mask frequencies and limits must be positive");
        }
        Ok(ImpedanceMask { bands })
    }

    /// A mask representative of the modeled chip's targets: tight below
    /// 100 kHz, relaxed through the die band, derived from the default
    /// chip's worst-case ΔI and a ~10 % noise budget.
    pub fn zlike_default() -> Self {
        // Constructed directly: the literal bands satisfy `new`'s
        // validation (ascending positive frequencies, positive limits)
        // by inspection, so no fallible path is needed.
        ImpedanceMask {
            bands: vec![(100e3, 0.8e-3), (5e6, 1.4e-3), (100e6, 1.0e-3)],
        }
    }

    /// The limit applying at `freq_hz`, or `None` above the mask.
    pub fn limit_at(&self, freq_hz: f64) -> Option<f64> {
        self.bands
            .iter()
            .find(|(upper, _)| freq_hz <= *upper)
            .map(|(_, z)| *z)
    }

    /// Highest frequency the mask covers.
    pub fn max_freq(&self) -> f64 {
        // `new` rejects empty band lists, so a mask always has a last
        // band; 0.0 (mask covers nothing) is the total fallback.
        self.bands.last().map_or(0.0, |(f, _)| *f)
    }
}

/// One mask violation found by [`check_mask`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaskViolation {
    /// Frequency at which the profile exceeds the mask.
    pub freq_hz: f64,
    /// Measured impedance magnitude.
    pub z_ohm: f64,
    /// The mask limit there.
    pub limit_ohm: f64,
}

/// Checks a built chip's die-level impedance against a mask over
/// `points` log-spaced frequencies, returning all violations.
///
/// # Errors
///
/// Returns [`PdnError`] if the AC solve fails.
pub fn check_mask(
    chip: &ChipPdn,
    node: NodeId,
    mask: &ImpedanceMask,
    points: usize,
) -> Result<Vec<MaskViolation>, PdnError> {
    let ac = AcAnalysis::new(chip.netlist());
    let freqs = log_space(1e3, mask.max_freq(), points.max(2))?;
    let mut violations = Vec::new();
    for point in ac.sweep(node, &freqs)? {
        if let Some(limit) = mask.limit_at(point.freq_hz) {
            let z = point.magnitude();
            if z > limit {
                violations.push(MaskViolation {
                    freq_hz: point.freq_hz,
                    z_ohm: z,
                    limit_ohm: limit,
                });
            }
        }
    }
    Ok(violations)
}

/// Result of the decap-sizing search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecapSizing {
    /// Multiplier applied to the on-die decaps (domain, L3, per-core).
    pub decap_scale: f64,
    /// Parameters after scaling.
    pub params: PdnParams,
    /// Remaining violations (empty when the mask is met).
    pub violations: Vec<MaskViolation>,
}

/// Sizes the on-die decap ("placing enough decaps in parallel", §II-B):
/// binary-searches the smallest decap multiplier in `[1, max_scale]`
/// that makes the die-level profile meet the mask.
///
/// Returns the best achievable sizing; when even `max_scale` leaves
/// violations, those are reported so the designer can revisit the mask.
///
/// # Errors
///
/// Returns [`PdnError`] if a build or solve fails.
pub fn size_decap(
    base: &PdnParams,
    mask: &ImpedanceMask,
    max_scale: f64,
    points: usize,
) -> Result<DecapSizing, PdnError> {
    let build = |scale: f64| -> Result<(PdnParams, Vec<MaskViolation>), PdnError> {
        let mut p = base.clone();
        p.c_domain *= scale;
        p.c_l3 *= scale;
        p.c_core *= scale;
        let chip = ChipPdn::build(&p)?;
        let v = check_mask(&chip, chip.core_node(0), mask, points)?;
        Ok((p, v))
    };

    // Quick exits: already compliant, or unreachable even at max scale.
    let (p1, v1) = build(1.0)?;
    if v1.is_empty() {
        return Ok(DecapSizing {
            decap_scale: 1.0,
            params: p1,
            violations: v1,
        });
    }
    let (pmax, vmax) = build(max_scale)?;
    if !vmax.is_empty() {
        return Ok(DecapSizing {
            decap_scale: max_scale,
            params: pmax,
            violations: vmax,
        });
    }

    let mut lo = 1.0;
    let mut hi = max_scale;
    for _ in 0..24 {
        let mid = (lo + hi) / 2.0;
        let (_, v) = build(mid)?;
        if v.is_empty() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let (params, violations) = build(hi)?;
    Ok(DecapSizing {
        decap_scale: hi,
        params,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_validation() {
        assert!(ImpedanceMask::new(vec![]).is_err());
        assert!(ImpedanceMask::new(vec![(1e6, 1e-3), (1e5, 1e-3)]).is_err());
        assert!(ImpedanceMask::new(vec![(1e6, -1.0)]).is_err());
        assert!(ImpedanceMask::new(vec![(1e6, 1e-3)]).is_ok());
    }

    #[test]
    fn default_chip_meets_its_own_mask() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let violations = check_mask(
            &chip,
            chip.core_node(0),
            &ImpedanceMask::zlike_default(),
            150,
        )
        .unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn legacy_decap_violates_the_mask() {
        let chip = ChipPdn::build(&PdnParams::legacy_decap()).unwrap();
        let violations = check_mask(
            &chip,
            chip.core_node(0),
            &ImpedanceMask::zlike_default(),
            150,
        )
        .unwrap();
        assert!(!violations.is_empty(), "legacy design should violate");
        // Violations sit in/above the die band where decap is missing.
        assert!(violations.iter().all(|v| v.freq_hz > 1e5));
    }

    #[test]
    fn sizing_fixes_legacy_design() {
        let sizing = size_decap(
            &PdnParams::legacy_decap(),
            &ImpedanceMask::zlike_default(),
            64.0,
            100,
        )
        .unwrap();
        assert!(sizing.violations.is_empty(), "{:?}", sizing.violations);
        assert!(
            sizing.decap_scale > 2.0 && sizing.decap_scale <= 64.0,
            "scale = {}",
            sizing.decap_scale
        );
        // The sized design builds and passes a fresh check.
        let chip = ChipPdn::build(&sizing.params).unwrap();
        let v = check_mask(
            &chip,
            chip.core_node(0),
            &ImpedanceMask::zlike_default(),
            100,
        )
        .unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn compliant_design_needs_no_scaling() {
        let sizing = size_decap(
            &PdnParams::default(),
            &ImpedanceMask::zlike_default(),
            8.0,
            80,
        )
        .unwrap();
        assert_eq!(sizing.decap_scale, 1.0);
    }

    #[test]
    fn impossible_mask_reports_residual_violations() {
        let mask = ImpedanceMask::new(vec![(1e7, 1e-6)]).unwrap(); // 1 uOhm: unreachable
        let sizing = size_decap(&PdnParams::default(), &mask, 4.0, 60).unwrap();
        assert!(!sizing.violations.is_empty());
        assert_eq!(sizing.decap_scale, 4.0);
    }
}
