//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheaply clonable flag shared between a
//! controller (an engine draining a campaign, a signal handler, a test)
//! and the transient solver, which polls it between accepted integration
//! steps. Cancellation is *cooperative*: nothing is interrupted
//! mid-step, so a cancelled solve leaves no torn state behind — it
//! simply returns [`crate::PdnError::Cancelled`] at the next step
//! boundary.
//!
//! Unlike wall-clock timeouts, a token is deterministic from the
//! caller's perspective: a run either completes or reports the exact
//! simulation time at which it stopped, and an un-cancelled token never
//! perturbs results.
//!
//! A cancellation carries a [`CancelReason`]: a plain [`CancelToken::cancel`]
//! (a controller draining a campaign) surfaces as
//! [`crate::PdnError::Cancelled`], while [`CancelToken::cancel_deadline`]
//! (a serving layer reaping a request past its wall-clock deadline)
//! surfaces as [`crate::PdnError::DeadlineExceeded`] so callers can tell
//! "the operator stopped this" from "this job blew its latency budget".

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a token was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// A controller requested a cooperative drain ([`CancelToken::cancel`]).
    Cancelled,
    /// A wall-clock deadline expired ([`CancelToken::cancel_deadline`]).
    Deadline,
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// A shared, thread-safe cancellation flag.
///
/// Clones observe the same flag; once [`CancelToken::cancel`] (or
/// [`CancelToken::cancel_deadline`]) is called the token stays cancelled
/// forever (there is no reset — build a new token for a new campaign).
/// The first cancellation wins: a later call with a different reason
/// does not overwrite the recorded one.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::cancel::{CancelReason, CancelToken};
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// assert_eq!(observer.reason(), Some(CancelReason::Cancelled));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    fn cancel_as(&self, state: u8) {
        // First reason wins; later cancellations are no-ops.
        let _ = self
            .flag
            .compare_exchange(LIVE, state, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Requests cancellation. Idempotent and irreversible.
    pub fn cancel(&self) {
        self.cancel_as(CANCELLED);
    }

    /// Requests cancellation because a wall-clock deadline expired.
    /// Idempotent and irreversible; solvers observing this reason abort
    /// with [`crate::PdnError::DeadlineExceeded`] instead of
    /// [`crate::PdnError::Cancelled`].
    pub fn cancel_deadline(&self) {
        self.cancel_as(DEADLINE);
    }

    /// Whether cancellation has been requested (on this token or any of
    /// its clones), for any reason.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) != LIVE
    }

    /// The recorded cancellation reason, `None` while the token is live.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.flag.load(Ordering::Acquire) {
            CANCELLED => Some(CancelReason::Cancelled),
            DEADLINE => Some(CancelReason::Deadline),
            _ => None,
        }
    }

    /// Maps the token's state to the error a solver should abort with at
    /// simulation time `t`: `None` while live, otherwise the
    /// reason-matched [`crate::PdnError`].
    pub fn abort_error(&self, t: f64) -> Option<crate::PdnError> {
        match self.reason()? {
            CancelReason::Cancelled => Some(crate::PdnError::Cancelled { t }),
            CancelReason::Deadline => Some(crate::PdnError::DeadlineExceeded { t }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn deadline_cancellation_records_its_reason() {
        let t = CancelToken::new();
        assert_eq!(t.reason(), None);
        assert!(t.abort_error(1.0).is_none());
        t.cancel_deadline();
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        assert!(matches!(
            t.abort_error(2e-6),
            Some(crate::PdnError::DeadlineExceeded { t }) if t == 2e-6
        ));
    }

    #[test]
    fn first_cancellation_reason_wins() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel_deadline();
        assert_eq!(t.reason(), Some(CancelReason::Cancelled));
        let u = CancelToken::new();
        u.cancel_deadline();
        u.cancel();
        assert_eq!(u.reason(), Some(CancelReason::Deadline));
        assert!(matches!(
            u.abort_error(0.0),
            Some(crate::PdnError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        let handle = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().expect("observer thread"));
    }
}
