//! Regenerates paper Fig. 10: noise vs deliberate misalignment of the
//! per-core maximum stressmarks.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig10");
}
