//! The paper's noise characterization in one run: frequency sweeps with
//! and without synchronization (Figs. 7a/9), the impedance profile
//! (Fig. 7b), an oscilloscope shot (Fig. 8) and the misalignment
//! sensitivity (Fig. 10). Uses reduced sweep sizes so it finishes in a
//! couple of minutes; the bench binaries run the paper-scale versions.
//!
//! Run with: `cargo run --release --example noise_characterization`

use voltnoise::prelude::*;

fn main() {
    let tb = Testbed::shared();

    println!("== Fig. 7b: impedance profile ==");
    let prof = run_impedance(tb.chip(), &ImpedanceConfig::reduced()).expect("AC sweep");
    for (f, z) in prof.peaks.iter().take(3) {
        println!("  resonance: {:.3} mOhm at {:.3e} Hz", z * 1e3, f);
    }

    println!("\n== Figs. 7a / 9: noise vs stimulus frequency ==");
    let cfg = SweepConfig::reduced();
    let unsync = run_sweep(tb, &cfg, false).expect("sweep");
    let synced = run_sweep(tb, &cfg, true).expect("sweep");
    println!("  freq_hz      unsync_max  sync_max");
    for (u, s) in unsync.points.iter().zip(&synced.points) {
        println!(
            "  {:9.3e}  {:10.1}  {:8.1}",
            u.freq_hz,
            u.max_pct(),
            s.max_pct()
        );
    }
    let (fu, mu) = unsync.peak().expect("non-empty sweep");
    let (fs, ms) = synced.peak().expect("non-empty sweep");
    println!("  unsync peak {mu:.1} %p2p at {fu:.3e} Hz; sync peak {ms:.1} %p2p at {fs:.3e} Hz");

    println!("\n== Fig. 8: oscilloscope shot at the resonant band ==");
    let shot = run_scope_shot(tb, &ScopeConfig::default()).expect("scope capture");
    print!("{}", shot.render());

    println!("== Fig. 10: misalignment sensitivity ==");
    let mis = run_misalignment(tb, &MisalignConfig::reduced()).expect("misalignment sweep");
    for p in &mis.points {
        println!(
            "  max misalignment {:6.1} ns -> {:.1} %p2p",
            p.max_ns(),
            p.mean_pct()
        );
    }
}
