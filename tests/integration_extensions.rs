//! Integration coverage of the extension studies: target definitions,
//! GA search, global governor, dithering, scheduling, populations and
//! package design, all through the public facade.

use voltnoise::pdn::design::{size_decap, ImpedanceMask};
use voltnoise::pdn::sensitivity::{parameter_sensitivity, PdnParameter};
use voltnoise::prelude::*;
use voltnoise::stressmark::{ga_search, GaConfig};
use voltnoise::system::dither::AlignmentComparison;
use voltnoise::system::mitigation::{evaluate_governor, GovernorConfig};
use voltnoise::system::population::PopulationStudy;
use voltnoise::system::scheduler::{
    replay, synthetic_trace, NaivePolicy, NoiseAwarePolicy, NoiseTable,
};
use voltnoise::uarch::{DependencyStudy, DisruptionStudy, TargetDefinition};

#[test]
fn target_definition_drives_the_same_search() {
    // A reloaded target definition yields a working search substrate.
    let def = TargetDefinition::zlike();
    let json = def.to_json();
    let isa = TargetDefinition::from_json(&json)
        .unwrap()
        .build_isa()
        .unwrap();
    let core = def.core.clone();
    let profile = EpiProfile::generate(&isa, &core);
    assert_eq!(profile.top(1)[0].mnemonic, "CIB");
    let outcome = find_max_power_sequence(
        &isa,
        &core,
        &profile,
        &SearchConfig {
            ipc_keep: 30,
            eval_iterations: 100,
        },
    );
    assert!(outcome.best.power_w > 18.0);
}

#[test]
fn ga_and_funnel_agree_on_sequence_quality() {
    let tb = Testbed::fast();
    let candidates: Vec<Opcode> = voltnoise::stressmark::select_candidates(tb.isa(), tb.profile())
        .iter()
        .map(|c| c.opcode)
        .collect();
    let ga = ga_search(
        tb.isa(),
        tb.core(),
        &candidates,
        &GaConfig {
            generations: 12,
            population: 24,
            ..GaConfig::default()
        },
    );
    assert!(ga.best.power_w > 0.93 * tb.max_sequence().power_w);
}

#[test]
fn governor_dither_and_scheduler_compose() {
    let tb = Testbed::fast();
    let run_cfg = NoiseRunConfig {
        window_s: Some(25e-6),
        ..NoiseRunConfig::default()
    };

    // Governor cuts synchronized noise at zero throughput cost.
    let gov = evaluate_governor(tb, 2.5e6, &GovernorConfig::default(), &run_cfg).unwrap();
    assert!(gov.governed_pct < gov.ungoverned_pct);

    // Dithering cannot match deterministic alignment.
    let cmp = AlignmentComparison::run(6, 16, 300, 3);
    assert!(cmp.dither_outcome.best_aligned_cores < 6);

    // The noise-aware scheduler needs no more margin than the naive one.
    let table = NoiseTable::characterize(tb, 2.5e6, &run_cfg).unwrap();
    let trace = synthetic_trace(50, 3.0);
    let naive = replay(&mut table.clone(), &NaivePolicy, &trace).unwrap();
    let aware = replay(&mut table.clone(), &NoiseAwarePolicy::new(), &trace).unwrap();
    assert!(aware.mean_required_pct <= naive.mean_required_pct + 1e-9);
}

#[test]
fn population_and_design_flows_run() {
    let tb = Testbed::fast();
    let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let study = PopulationStudy::run(
        &[0, 11],
        &loads,
        &NoiseRunConfig {
            window_s: Some(25e-6),
            ..NoiseRunConfig::default()
        },
    )
    .unwrap();
    assert!(study.grand_mean() > 30.0);

    // The modern chip design meets the default impedance mask unchanged.
    let sizing = size_decap(
        &tb.chip().config().pdn,
        &ImpedanceMask::zlike_default(),
        8.0,
        80,
    )
    .unwrap();
    assert_eq!(sizing.decap_scale, 1.0);

    // Parameter sensitivity behaves physically.
    let s = parameter_sensitivity(
        &tb.chip().config().pdn,
        PdnParameter::DomainDecap,
        &[0.5, 1.0, 2.0],
    )
    .unwrap();
    assert!(s.points[0].freq_hz > s.points[2].freq_hz);
}

#[test]
fn paper_methodology_findings_reproduce() {
    let tb = Testbed::fast();
    // §IV-C disruptive events: near-minimum power and variability.
    let study = DisruptionStudy::run(
        tb.isa(),
        tb.core(),
        &tb.max_sequence().body,
        &tb.min_sequence().body,
    );
    assert!(study.disruptive_close_to_minimum());
    assert!(study.memory_gain_fraction() < 0.05);

    // §IV-C dependencies: "results were similar".
    let deps = DependencyStudy::run(tb.isa(), tb.core(), &tb.max_sequence().body, 200);
    assert!(deps.phase_link_power_delta() < 0.05);
}
