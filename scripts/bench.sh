#!/usr/bin/env bash
# Benchmark harness wrapper: builds the release bench_report binary and
# runs the pinned experiment subset, writing BENCH_report.json.
#
# Usage:
#   scripts/bench.sh                 # 5 iterations, BENCH_report.json
#   scripts/bench.sh --smoke         # 1 iteration + sanity assertions (CI)
#   scripts/bench.sh --iters 9 --out /tmp/bench.json
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p voltnoise-bench --bin bench_report
exec target/release/bench_report "$@"
