//! The [`Experiment`] abstraction and the experiment registry.
//!
//! Every paper artifact (table, figure, study) is an [`Experiment`]: a
//! configuration that expands into pure [`SimJob`]s, an `assemble` step
//! that folds the solved outcomes into a serializable artifact, and a
//! `render` step producing the figure's text document. The default
//! [`Experiment::run`] routes the jobs through an [`Engine`], so every
//! experiment transparently gets parallel execution and content-keyed
//! memoization; experiments whose job list depends on previous outcomes
//! (e.g. the Vmin descent of Fig. 12) override `run` and use
//! [`Engine::run_one`] / [`Engine::par_map`] directly.
//!
//! The [`registry`] lists one entry per artifact. The full report and
//! the per-figure binaries both walk it, so adding an experiment in one
//! place surfaces it everywhere.
//!
//! Experiments additionally expose a *settled* path
//! ([`Experiment::run_settled`], [`RegistryEntry::run_settled`]): job
//! failures captured by the engine surface as an [`ExperimentFailure`]
//! carrying every [`JobFault`], instead of aborting the campaign. The
//! full report uses this path to render the healthy figures and a fault
//! summary when some experiments fail.

use serde::{Serialize, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use voltnoise_pdn::PdnError;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::fault::{panic_message, FaultKind, JobFault};
use voltnoise_system::noise::NoiseOutcome;
use voltnoise_system::testbed::Testbed;

/// Why an experiment could not produce its artifact.
///
/// Carries every [`JobFault`] the engine captured (deduplicated — jobs
/// sharing a content key share one fault), plus the `primary` kind a
/// fail-fast run would have surfaced. Failures that happen outside the
/// job layer (job construction, assembly, a panic in an override) carry
/// an empty `faults` list and only the `primary` kind.
#[derive(Debug, Clone)]
pub struct ExperimentFailure {
    /// Captured job faults, in job order, deduplicated by content key.
    pub faults: Vec<JobFault>,
    /// The first failure's class — what fail-fast execution would raise.
    pub primary: FaultKind,
}

impl ExperimentFailure {
    /// Builds a failure from the engine's captured job faults.
    pub fn from_faults(faults: Vec<JobFault>) -> ExperimentFailure {
        let primary = faults.first().map_or_else(
            || FaultKind::Panic("experiment failed without a recorded fault".to_string()),
            |f| f.fault.clone(),
        );
        ExperimentFailure { faults, primary }
    }

    /// Builds a failure from a panic that escaped the experiment.
    pub fn from_panic(message: String) -> ExperimentFailure {
        ExperimentFailure {
            faults: Vec::new(),
            primary: FaultKind::Panic(message),
        }
    }

    /// One-line digest for fault-summary tables (comma-free so it can
    /// live in a CSV cell).
    pub fn summary(&self) -> String {
        let detail = self.primary.to_string().replace(',', ";");
        match self.faults.len() {
            0 | 1 => detail,
            n => format!("{n} job faults; first: {detail}"),
        }
    }
}

impl From<PdnError> for ExperimentFailure {
    fn from(e: PdnError) -> ExperimentFailure {
        ExperimentFailure {
            faults: Vec::new(),
            primary: FaultKind::of_error(e),
        }
    }
}

impl std::fmt::Display for ExperimentFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "experiment failed: {}", self.summary())
    }
}

impl std::error::Error for ExperimentFailure {}

/// One reproducible paper artifact.
pub trait Experiment {
    /// The structured result: serializable for JSON export and for the
    /// byte-exact parallel-vs-serial determinism checks.
    type Artifact: Serialize;

    /// Stable identifier (`fig7a`, `table1`, ...), used by the registry
    /// and the per-figure binaries.
    fn id(&self) -> &'static str;

    /// Human-readable one-line title.
    fn title(&self) -> &'static str;

    /// Expands the configuration into pure simulation jobs. Experiments
    /// that don't run the noise kernel (AC analyses, pure computations)
    /// keep the default empty list.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when job construction requires a solve that
    /// fails.
    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let _ = tb;
        Ok(Vec::new())
    }

    /// Folds solved outcomes (parallel to [`Experiment::jobs`]'s order)
    /// into the artifact.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when a non-job computation inside the
    /// experiment fails.
    fn assemble(
        &self,
        tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<Self::Artifact, PdnError>;

    /// Renders the artifact as the figure's text document.
    fn render(&self, artifact: &Self::Artifact) -> String;

    /// Runs the experiment end to end on an engine.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when a solve fails.
    fn run(&self, tb: &Testbed, engine: &Engine) -> Result<Self::Artifact, PdnError> {
        let jobs = self.jobs(tb)?;
        let outcomes = engine.run_jobs(&jobs)?;
        self.assemble(tb, &outcomes)
    }

    /// Runs the experiment, settling job faults instead of aborting:
    /// every failing job is captured (see
    /// [`Engine::run_jobs_settled`]), and an experiment with any fault
    /// returns an [`ExperimentFailure`] listing all of them. Experiments
    /// that override [`Experiment::run`] with an adaptive flow should
    /// override this too and route their custom flow's error through
    /// `ExperimentFailure::from`.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentFailure`] when any job or the assembly fails.
    fn run_settled(
        &self,
        tb: &Testbed,
        engine: &Engine,
    ) -> Result<Self::Artifact, ExperimentFailure> {
        let jobs = self.jobs(tb).map_err(ExperimentFailure::from)?;
        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut faults: Vec<JobFault> = Vec::new();
        for settled in engine.run_jobs_settled(&jobs) {
            match settled {
                Ok(outcome) => outcomes.push(outcome),
                Err(fault) => {
                    if !faults.contains(&fault) {
                        faults.push(fault);
                    }
                }
            }
        }
        if !faults.is_empty() {
            return Err(ExperimentFailure::from_faults(faults));
        }
        self.assemble(tb, &outcomes)
            .map_err(ExperimentFailure::from)
    }
}

/// A finished experiment: rendered text plus the serialized artifact.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The experiment's registry id.
    pub id: &'static str,
    /// The experiment's title.
    pub title: &'static str,
    /// The rendered figure document.
    pub rendered: String,
    /// The artifact as a serde value tree (for `--json` export).
    pub value: Value,
}

/// Runs an experiment and captures both its renderings.
///
/// # Errors
///
/// Returns [`PdnError`] when the experiment fails.
pub fn run_to_output<E: Experiment>(
    exp: &E,
    tb: &Testbed,
    engine: &Engine,
) -> Result<ExperimentOutput, PdnError> {
    let artifact = exp.run(tb, engine)?;
    Ok(ExperimentOutput {
        id: exp.id(),
        title: exp.title(),
        rendered: exp.render(&artifact),
        value: artifact.to_value(),
    })
}

/// Runs an experiment on the settled path, additionally containing any
/// panic that escapes the experiment itself (an override, `assemble`,
/// or `render`) as an [`ExperimentFailure`]. This is the function the
/// full report uses: one broken experiment degrades to a fault-summary
/// row instead of taking the whole document down.
///
/// # Errors
///
/// Returns [`ExperimentFailure`] when the experiment fails or panics.
pub fn run_to_output_settled<E: Experiment>(
    exp: &E,
    tb: &Testbed,
    engine: &Engine,
) -> Result<ExperimentOutput, ExperimentFailure> {
    match catch_unwind(AssertUnwindSafe(|| {
        let artifact = exp.run_settled(tb, engine)?;
        Ok(ExperimentOutput {
            id: exp.id(),
            title: exp.title(),
            rendered: exp.render(&artifact),
            value: artifact.to_value(),
        })
    })) {
        Ok(result) => result,
        Err(payload) => Err(ExperimentFailure::from_panic(panic_message(
            payload.as_ref(),
        ))),
    }
}

pub(crate) type EntryRun =
    fn(&Testbed, &Engine, bool) -> Result<ExperimentOutput, ExperimentFailure>;

/// One registry entry: an artifact the workspace can regenerate.
pub struct RegistryEntry {
    /// Stable identifier, matching the experiment's [`Experiment::id`].
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Whether [`crate::report::full_report`] includes this artifact (in
    /// registry order).
    pub in_report: bool,
    pub(crate) run: EntryRun,
}

impl RegistryEntry {
    /// Runs the entry's experiment at paper (`reduced = false`) or
    /// reduced scale on the given engine, fail-fast: the first captured
    /// fault is unwrapped back into the error (or panic) a direct run
    /// would have produced.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the experiment fails.
    ///
    /// # Panics
    ///
    /// Re-raises a captured worker panic.
    pub fn run(
        &self,
        tb: &Testbed,
        engine: &Engine,
        reduced: bool,
    ) -> Result<ExperimentOutput, PdnError> {
        match (self.run)(tb, engine, reduced) {
            Ok(output) => Ok(output),
            Err(failure) => match failure.primary {
                FaultKind::Solver(e)
                | FaultKind::Budget(e)
                | FaultKind::Cancelled(e)
                | FaultKind::Deadline(e) => Err(e),
                FaultKind::Panic(msg) => panic!("{msg}"),
            },
        }
    }

    /// Runs the entry's experiment, capturing failure as an
    /// [`ExperimentFailure`] instead of aborting — the full report's
    /// degraded path.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentFailure`] when the experiment fails.
    pub fn run_settled(
        &self,
        tb: &Testbed,
        engine: &Engine,
        reduced: bool,
    ) -> Result<ExperimentOutput, ExperimentFailure> {
        (self.run)(tb, engine, reduced)
    }
}

impl std::fmt::Debug for RegistryEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryEntry")
            .field("id", &self.id)
            .field("title", &self.title)
            .field("in_report", &self.in_report)
            .finish()
    }
}

/// The experiment registry, in full-report order.
pub fn registry() -> &'static [RegistryEntry] {
    crate::catalog::ENTRIES
}

/// Looks up a registry entry by id.
pub fn find(id: &str) -> Option<&'static RegistryEntry> {
    registry().iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let entries = registry();
        assert!(!entries.is_empty());
        for (i, e) in entries.iter().enumerate() {
            assert!(find(e.id).is_some(), "{} not findable", e.id);
            for later in &entries[i + 1..] {
                assert_ne!(e.id, later.id, "duplicate id {}", e.id);
            }
        }
        assert!(find("no-such-experiment").is_none());
    }
}
