#![warn(missing_docs)]

//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Every binary accepts `--reduced` to run the fast configuration used in
//! CI, and `--json <path>` to additionally export the structured result.

use serde::Serialize;
use std::path::PathBuf;
use voltnoise::analysis::find;
use voltnoise::system::{Engine, Testbed};

/// Parsed common CLI options.
#[derive(Debug, Clone, Default)]
pub struct HarnessOpts {
    /// Run the reduced (fast) configuration.
    pub reduced: bool,
    /// Optional JSON export path.
    pub json: Option<PathBuf>,
}

impl HarnessOpts {
    /// Parses `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--reduced" => opts.reduced = true,
                "--json" => {
                    opts.json = args.next().map(PathBuf::from);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!("usage: <bin> [--reduced] [--json <path>]");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Prints the rendered result and optionally exports JSON.
    pub fn finish<T: Serialize>(&self, rendered: &str, value: &T) {
        print!("{rendered}");
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value).expect("results serialize");
            std::fs::write(path, json).expect("result file writable");
            eprintln!("# wrote {}", path.display());
        }
    }
}

/// The body shared by every per-figure binary: parse the common CLI
/// options, look `id` up in the experiment registry, run it on the
/// shared engine at the requested scale, print the rendered figure and
/// optionally export the artifact as JSON.
///
/// # Panics
///
/// Panics when `id` is not a registered experiment or the experiment
/// fails.
pub fn run_registry_bin(id: &str) {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced {
        Testbed::fast()
    } else {
        Testbed::shared()
    };
    let entry = find(id).unwrap_or_else(|| panic!("{id} is not a registered experiment"));
    let out = entry
        .run(tb, Engine::shared(), opts.reduced)
        .unwrap_or_else(|e| panic!("{id} failed: {e}"));
    opts.finish(&out.rendered, &out.value);
}
