//! Minimal complex arithmetic used by the AC (phasor) solver.
//!
//! The workspace intentionally avoids an external complex-number dependency:
//! the solver needs only field arithmetic, magnitude, and a handful of
//! constructors, all of which fit comfortably here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::complex::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use voltnoise_pdn::complex::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Complex::new(magnitude * phase.cos(), magnitude * phase.sin())
    }

    /// Magnitude (modulus) of the complex number.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::abs`] when only ordering
    /// matters.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division by reciprocal multiplication is the standard complex
    // formula, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(1.5, -2.5);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z + (-z), Complex::ZERO));
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, 1.1);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < 1e-12);
        assert!((p.arg() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = Complex::new(4.0, -7.0);
        let b = Complex::new(-2.0, 0.5);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn recip_of_i_is_minus_i() {
        assert!(close(Complex::I.recip(), -Complex::I));
    }

    #[test]
    fn conj_properties() {
        let z = Complex::new(2.0, 3.0);
        assert_eq!(z.conj().conj(), z);
        let zz = z * z.conj();
        assert!((zz.im).abs() < 1e-12);
        assert!((zz.re - z.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_folds() {
        let s: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert!(close(s, Complex::new(6.0, 4.0)));
    }
}
