//! Property-based tests over the workspace's core data structures and
//! invariants, using proptest.

use proptest::prelude::*;
use voltnoise::measure::{Skitter, SkitterConfig};
use voltnoise::pdn::ac::AcAnalysis;
use voltnoise::pdn::linalg::Matrix;
use voltnoise::pdn::netlist::{Netlist, NodeId};
use voltnoise::pdn::transient::{ConstantDrive, Probe, TransientConfig, TransientSolver};
use voltnoise::pdn::waveform::{StressWaveform, WaveMode};
use voltnoise::prelude::*;
use voltnoise::system::guardband::GuardbandTable;
use voltnoise::system::spread_offsets;
use voltnoise::uarch::pipeline::{estimate_throughput, form_groups};
use voltnoise::uarch::Isa;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LU solve is a right inverse of matrix multiplication for
    /// well-conditioned random systems.
    #[test]
    fn lu_solves_random_systems(values in proptest::collection::vec(-5.0f64..5.0, 16),
                                rhs in proptest::collection::vec(-10.0f64..10.0, 4)) {
        let n = 4;
        let mut a = Matrix::<f64>::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = values[r * n + c];
            }
            a[(r, r)] += 25.0; // diagonal dominance
        }
        let x = a.lu().unwrap().solve(&rhs).unwrap();
        let back = a.mul_vec(&x);
        for (b, r) in back.iter().zip(&rhs) {
            prop_assert!((b - r).abs() < 1e-8);
        }
    }

    /// A resistive divider network never produces node voltages outside
    /// the source range (passivity of the DC solution).
    #[test]
    fn dc_voltages_bounded_by_source(r1 in 1e-4f64..1.0, r2 in 1e-4f64..1.0, load in 0.0f64..5.0) {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let mid = nl.add_node("mid");
        let die = nl.add_node("die");
        nl.add_resistor(vdd, mid, r1).unwrap();
        nl.add_resistor(mid, die, r2).unwrap();
        nl.add_resistor(die, NodeId::GROUND, 10.0).unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let sol = solver.solve_dc(&ConstantDrive::new(vec![load])).unwrap();
        for node in [mid, die] {
            let v = sol[node.unknown_index().unwrap()];
            prop_assert!(v <= 1.0 + 1e-9, "node above source: {v}");
        }
    }

    /// AC impedance magnitude of any RC one-port is bounded by its DC
    /// resistance (an RC network's |Z| is maximal at DC).
    #[test]
    fn rc_impedance_below_dc_resistance(r in 1e-3f64..10.0, c in 1e-9f64..1e-3, f in 1e2f64..1e8) {
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, r).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, c).unwrap();
        let z = AcAnalysis::new(&nl).impedance_at(die, f).unwrap().abs();
        prop_assert!(z <= r * (1.0 + 1e-9));
    }

    /// Stress waveforms only ever emit the three defined levels (within
    /// ramp interpolation bounds).
    #[test]
    fn waveform_values_stay_in_range(t in 0.0f64..1e-3,
                                     phase in 0.0f64..1e-6,
                                     period_ns in 100.0f64..100_000.0,
                                     duty in 0.1f64..0.9) {
        let w = StressWaveform {
            i_low: 5.0,
            i_high: 20.0,
            i_idle: 3.0,
            stim_period: period_ns * 1e-9,
            duty,
            rise_time: 2e-9,
            mode: WaveMode::FreeRun { phase, period_skew_ppm: 50.0 },
        };
        let v = w.value(t);
        prop_assert!((5.0..=20.0).contains(&v), "value {v}");
        let ws = StressWaveform {
            mode: WaveMode::Synced { interval: 4e-3, offset: 62.5e-9, events: 10 },
            ..w
        };
        let v = ws.value(t);
        prop_assert!((3.0..=20.0).contains(&v), "synced value {v}");
    }

    /// The skitter %p2p reading is monotone in the excursion width.
    #[test]
    fn skitter_monotone_in_excursion(lo in 0.0f64..0.1, hi in 0.0f64..0.1, extra in 0.001f64..0.05) {
        let sk = Skitter::new(SkitterConfig::default());
        let narrow = sk.measure_extremes(1.05 - lo, 1.05 + hi).pct_p2p();
        let wide = sk.measure_extremes(1.05 - lo - extra, 1.05 + hi + extra).pct_p2p();
        prop_assert!(wide >= narrow);
    }

    /// Group formation partitions the body: every index exactly once, in
    /// order, and no group exceeds the dispatch width.
    #[test]
    fn groups_partition_body(indices in proptest::collection::vec(0usize..1301, 1..40)) {
        let isa = Isa::zlike();
        let cfg = CoreConfig::default();
        let body: Vec<Opcode> = indices
            .iter()
            .map(|&i| isa.opcodes().nth(i).unwrap())
            .collect();
        let groups = form_groups(&isa, &cfg, &body);
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        prop_assert_eq!(flat, (0..body.len()).collect::<Vec<_>>());
        prop_assert!(groups.iter().all(|g| !g.is_empty() && g.len() <= cfg.dispatch_width));
    }

    /// The analytic throughput estimate never exceeds the dispatch width
    /// and is always positive for non-empty bodies.
    #[test]
    fn throughput_estimate_bounded(indices in proptest::collection::vec(0usize..1301, 1..24)) {
        let isa = Isa::zlike();
        let cfg = CoreConfig::default();
        let body: Vec<Opcode> = indices
            .iter()
            .map(|&i| isa.opcodes().nth(i).unwrap())
            .collect();
        let est = estimate_throughput(&isa, &cfg, &body);
        prop_assert!(est > 0.0);
        prop_assert!(est <= cfg.dispatch_width as f64 + 1e-9);
    }

    /// Offsets spread within a window stay within it and cover both ends
    /// for n >= 2 and a non-empty window.
    #[test]
    fn spread_offsets_bounds(n in 1usize..7, window in 0u64..20) {
        let offs = spread_offsets(n, window);
        prop_assert_eq!(offs.len(), n);
        prop_assert!(offs.iter().all(|&o| o <= window));
        prop_assert_eq!(offs[0], 0);
    }

    /// Guard-band tables are monotone regardless of the (noisy) measured
    /// input order.
    #[test]
    fn guardband_table_monotone(noise in proptest::collection::vec(0.0f64..0.2, 7),
                                safety in 1.0f64..1.5) {
        let arr: [f64; 7] = noise.try_into().unwrap();
        let t = GuardbandTable::from_worst_case_noise(arr, safety);
        for k in 1..=6 {
            prop_assert!(t.margin_v(k) >= t.margin_v(k - 1));
        }
    }

    /// Transient simulation of a passive RC network under constant load
    /// settles to the DC solution regardless of element values.
    #[test]
    fn transient_settles_to_dc(r in 1e-3f64..0.1, c in 1e-8f64..1e-5, load in 0.0f64..20.0) {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_resistor(vdd, die, r).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, c).unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let cfg = TransientConfig::new(20e-6);
        let out = solver
            .run(&ConstantDrive::new(vec![load]), &[Probe::NodeVoltage(die)], &cfg)
            .unwrap();
        let expected = 1.0 - load * r;
        prop_assert!((out.stats[0].mean - expected).abs() < 1e-6);
        prop_assert!(out.stats[0].peak_to_peak() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Trace playback is exactly periodic with the loop duration.
    #[test]
    fn trace_playback_is_periodic(samples in proptest::collection::vec(1.0f64..30.0, 3..40),
                                  t in 0.0f64..1e-5) {
        use voltnoise::pdn::waveform::TracePlayback;
        use voltnoise::pdn::transient::Drive;
        let p = TracePlayback::new(vec![samples], 1e-9, 2.0);
        let period = p.loop_duration(0);
        let mut a = [0.0];
        let mut b = [0.0];
        p.currents(t, &mut a);
        // Step an exact number of samples to dodge float-boundary jitter.
        p.currents(t + period, &mut b);
        // Tolerate one-sample boundary slip from floating division.
        let mut c = [0.0];
        p.currents(t + period + 1e-12, &mut c);
        let periodic = (a[0] - b[0]).abs() < 1e-12 || (a[0] - c[0]).abs() < 1e-12;
        prop_assert!(periodic, "value changed across one loop period");
    }

    /// The global governor never overfills a slot when per-request sizes
    /// fit the budget and capacity suffices.
    #[test]
    fn governor_respects_budget(requests in proptest::collection::vec(0.5f64..8.0, 1..7)) {
        use voltnoise::system::mitigation::{GlobalNoiseGovernor, GovernorConfig};
        let budget = 10.0;
        let gov = GlobalNoiseGovernor::new(GovernorConfig {
            delta_i_budget_a: budget,
            max_stagger_ticks: 15, // plenty of slots
        });
        let admissions = gov.schedule(&requests);
        prop_assert_eq!(admissions.len(), requests.len());
        prop_assert!(gov.worst_slot_delta_i(&requests) <= budget + 1e-9);
    }

    /// Dither outcomes are bounded by the pigeonhole principle.
    #[test]
    fn dither_best_alignment_bounds(cores in 1usize..7, slots in 1u64..20, intervals in 1u64..200) {
        use voltnoise::system::dither::simulate_dither;
        let out = simulate_dither(cores, slots, intervals, 5);
        prop_assert!(out.best_aligned_cores <= cores);
        let floor = cores.div_ceil(slots as usize);
        prop_assert!(out.best_aligned_cores >= floor);
    }

    /// Register dependencies can only slow execution down, never speed it
    /// up, relative to the structural model.
    #[test]
    fn dependencies_never_increase_ipc(indices in proptest::collection::vec(0usize..1301, 2..14)) {
        use voltnoise::uarch::deps::{assign_operands, run_with_deps, OperandPolicy};
        use voltnoise::uarch::pipeline::PipelineSim;
        let isa = Isa::zlike();
        let cfg = CoreConfig::default();
        let body: Vec<Opcode> = indices.iter().map(|&i| isa.opcodes().nth(i).unwrap()).collect();
        let structural = PipelineSim::new(&isa, &cfg).run(&body, 120, false).ipc();
        for policy in [OperandPolicy::Independent, OperandPolicy::Chained] {
            let with_deps = run_with_deps(&isa, &cfg, &assign_operands(&body, policy), 120).ipc();
            prop_assert!(with_deps <= structural + 1e-9,
                "policy {policy:?}: {with_deps} > {structural}");
        }
    }

    /// Sticky bit strings grow monotonically under accumulation.
    #[test]
    fn bitstring_accumulation_is_monotone(volts in proptest::collection::vec(0.9f64..1.15, 1..60)) {
        use voltnoise::measure::bitstring::StickyBitmap;
        let sk = Skitter::new(SkitterConfig::default());
        let mut sticky = StickyBitmap::new();
        let mut prev = 0;
        for v in volts {
            sticky.observe(&sk, v);
            let count = sticky.bits().count();
            prop_assert!(count >= prev);
            prop_assert!(count as usize <= voltnoise::measure::bitstring::TAPS);
            prev = count;
        }
    }

    /// Impedance masks pick the band of the lowest covering frequency.
    #[test]
    fn mask_band_selection(f in 1.0f64..1e9) {
        use voltnoise::pdn::design::ImpedanceMask;
        let mask = ImpedanceMask::new(vec![(1e4, 1e-3), (1e6, 2e-3), (1e8, 3e-3)]).unwrap();
        match mask.limit_at(f) {
            Some(z) => {
                if f <= 1e4 { prop_assert_eq!(z, 1e-3); }
                else if f <= 1e6 { prop_assert_eq!(z, 2e-3); }
                else { prop_assert_eq!(z, 3e-3); }
            }
            None => prop_assert!(f > 1e8),
        }
    }
}
