//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheaply clonable flag shared between a
//! controller (an engine draining a campaign, a signal handler, a test)
//! and the transient solver, which polls it between accepted integration
//! steps. Cancellation is *cooperative*: nothing is interrupted
//! mid-step, so a cancelled solve leaves no torn state behind — it
//! simply returns [`crate::PdnError::Cancelled`] at the next step
//! boundary.
//!
//! Unlike wall-clock timeouts, a token is deterministic from the
//! caller's perspective: a run either completes or reports the exact
//! simulation time at which it stopped, and an un-cancelled token never
//! perturbs results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, thread-safe cancellation flag.
///
/// Clones observe the same flag; once [`CancelToken::cancel`] is called
/// the token stays cancelled forever (there is no reset — build a new
/// token for a new campaign).
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and irreversible.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested (on this token or any of
    /// its clones).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        let handle = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().expect("observer thread"));
    }
}
