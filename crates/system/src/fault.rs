//! Fault vocabulary of the engine: captured per-job faults, retry
//! policy, and the deterministic fault-injection harness.
//!
//! The paper's Vmin methodology (§V, Fig. 12) exists *because* runs
//! fail: undervolted machines crash, hang, or corrupt results, and the
//! lab flow records the failure and moves on. A characterization engine
//! must therefore survive — and be testable under — per-job failure.
//! This module provides the three pieces:
//!
//! 1. [`JobFault`] / [`FaultKind`] — what the engine records when a job
//!    cannot be solved: the job's content key, how many attempts were
//!    made, and whether the failure was a solver error or a worker
//!    panic.
//! 2. [`RetryPolicy`] — how many attempts a job gets, and whether
//!    retries perturb the seed (useful when a fault is tied to one
//!    random phase assignment).
//! 3. [`FaultInjector`] — a deterministic hook the engine consults
//!    before every solve attempt. Faults are injected by solve ordinal
//!    (fail the Nth solve) or by a seeded pseudo-random rate, and come
//!    in three classes: a solver error, a NaN-corrupted outcome (which
//!    must be caught by the finite-output guard), and a worker panic
//!    (which must be captured, not propagated).

use std::collections::HashMap;
use voltnoise_pdn::PdnError;

use crate::engine::JobKey;

/// Classification of a captured failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The solve returned an error ([`PdnError::Diverged`],
    /// [`PdnError::SingularMatrix`], an injected error, ...).
    Solver(PdnError),
    /// The job's step budget ran out; always carries
    /// [`PdnError::BudgetExceeded`]. Deterministic and final — retrying
    /// the identical job would burn the identical budget — so the engine
    /// never retries budget faults.
    Budget(PdnError),
    /// The job was cancelled cooperatively; always carries
    /// [`PdnError::Cancelled`]. Final: a cancelled campaign must drain,
    /// not retry.
    Cancelled(PdnError),
    /// The job was reaped at its request's wall-clock deadline; always
    /// carries [`PdnError::DeadlineExceeded`]. Final: the token stays
    /// cancelled, so a retry would be reaped at its first step poll.
    Deadline(PdnError),
    /// The worker thread panicked; the payload's message is preserved.
    Panic(String),
}

impl FaultKind {
    /// Classifies a solve error into its fault kind: budget exhaustion,
    /// cancellation and deadline reaping get their own kinds, everything
    /// else is a generic solver fault.
    pub fn of_error(e: PdnError) -> FaultKind {
        match e {
            PdnError::BudgetExceeded { .. } => FaultKind::Budget(e),
            PdnError::Cancelled { .. } => FaultKind::Cancelled(e),
            PdnError::DeadlineExceeded { .. } => FaultKind::Deadline(e),
            _ => FaultKind::Solver(e),
        }
    }

    /// True for faults that retrying cannot change: a budget fault is
    /// deterministic, a cancelled campaign is draining, and a deadline
    /// token stays cancelled.
    pub fn is_final(&self) -> bool {
        matches!(
            self,
            FaultKind::Budget(_) | FaultKind::Cancelled(_) | FaultKind::Deadline(_)
        )
    }

    /// The underlying solver error, when the fault carries one.
    pub fn as_error(&self) -> Option<&PdnError> {
        match self {
            FaultKind::Solver(e)
            | FaultKind::Budget(e)
            | FaultKind::Cancelled(e)
            | FaultKind::Deadline(e) => Some(e),
            FaultKind::Panic(_) => None,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Solver(e) => write!(f, "solver error: {e}"),
            FaultKind::Budget(e) => write!(f, "budget fault: {e}"),
            FaultKind::Cancelled(e) => write!(f, "cancelled: {e}"),
            FaultKind::Deadline(e) => write!(f, "deadline fault: {e}"),
            FaultKind::Panic(msg) => write!(f, "worker panic: {msg}"),
        }
    }
}

/// One job's terminal failure: every attempt allowed by the
/// [`RetryPolicy`] was made and all failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFault {
    /// Content key of the failed job (boxed: a key carries the full job
    /// signature, and the settled `Result` should stay small).
    pub key: Box<JobKey>,
    /// Solve attempts made (more than 1 means retries happened; 0 means
    /// the job was cancelled before any attempt started).
    pub attempts: u32,
    /// The final attempt's failure.
    pub fault: FaultKind,
}

impl std::fmt::Display for JobFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job failed after {} attempt(s): {}",
            self.attempts, self.fault
        )
    }
}

impl std::error::Error for JobFault {}

/// Retry policy for transient faults.
///
/// The default (`max_attempts: 1`) retries nothing — every fault is
/// terminal, matching the engine's historical semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (clamped to ≥ 1).
    pub max_attempts: u32,
    /// When `true`, each retry perturbs the job's seed (attempt `k`
    /// runs with `seed + k - 1`), emulating the lab practice of
    /// re-running a flaky measurement with a fresh alignment. The
    /// retried outcome is cached under its *own* (reseeded) key, never
    /// the original, so the content-keyed cache stays truthful.
    pub reseed: bool,
    /// Base delay of the exponential backoff before retry `k`
    /// (milliseconds): the nominal delay is `base · 2^(k-1)`, jittered.
    /// `0` (the default) retries immediately, preserving the engine's
    /// historical semantics and keeping test suites fast.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff delay (milliseconds), so a
    /// deep retry chain cannot sleep unboundedly. Ignored when
    /// `backoff_base_ms` is 0.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            reseed: false,
            backoff_base_ms: 0,
            backoff_cap_ms: 10_000,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts, without
    /// reseeding or backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Sets the exponential-backoff base (builder style). Retry `k`
    /// sleeps `base · 2^(k-1)` ms, jittered deterministically (see
    /// [`RetryPolicy::backoff_delay_ms`]) and capped at
    /// `backoff_cap_ms`.
    #[must_use]
    pub fn with_backoff(mut self, base_ms: u64, cap_ms: u64) -> RetryPolicy {
        self.backoff_base_ms = base_ms;
        self.backoff_cap_ms = cap_ms;
        self
    }

    /// The backoff delay before retry attempt `retry` (1 = first retry)
    /// of the job whose content seed is `job_seed`, in milliseconds.
    ///
    /// Deterministic by construction: the delay is a pure function of
    /// `(job_seed, retry, policy)` — never of wall-clock, thread id or
    /// scheduling — so the retry schedule of a campaign reproduces
    /// exactly under any `VOLTNOISE_THREADS` setting. Jitter
    /// de-synchronizes jobs that fail together (a thundering herd after
    /// a shared-resource fault) by scaling the nominal exponential delay
    /// into `[1/2, 1)·nominal` with a splitmix64 hash of the seed and
    /// attempt.
    pub fn backoff_delay_ms(&self, job_seed: u64, retry: u32) -> u64 {
        if self.backoff_base_ms == 0 || retry == 0 {
            return 0;
        }
        let exp = retry.saturating_sub(1).min(20);
        let nominal = self
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.backoff_cap_ms.max(1));
        // splitmix64 of (job_seed, retry): the same mixer the fault
        // injector uses, reproducible across processes and toolchains.
        let mut z = job_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(retry));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Unit jitter in [0, 1): half the nominal delay is kept, the
        // other half is scaled by the jitter.
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = nominal as f64 * (0.5 + 0.5 * unit);
        (jittered as u64).max(1)
    }

    /// The delay before retry `retry` when the server supplied a
    /// `Retry-After` hint (milliseconds): the larger of the hint and
    /// the policy's own jittered backoff. Honoring the hint as a floor
    /// keeps an overloaded server's explicit schedule authoritative,
    /// while the seeded jitter keeps a fleet of clients told "come back
    /// in 1s" from stampeding back in the same millisecond — they
    /// spread out *after* the hint, deterministically per job seed.
    pub fn delay_with_hint(&self, job_seed: u64, retry: u32, hint_ms: u64) -> u64 {
        self.backoff_delay_ms(job_seed, retry).max(hint_ms)
    }
}

/// The class of fault an injector plants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The solve attempt returns [`PdnError::Injected`] without running.
    SolverError,
    /// The solve runs, then its outcome is corrupted with NaN; the
    /// engine's finite-output guard must convert this into
    /// [`PdnError::Diverged`] and must not cache the outcome.
    NanOutcome,
    /// The worker panics mid-solve; the engine must capture the panic
    /// as a [`FaultKind::Panic`] instead of unwinding the campaign.
    WorkerPanic,
}

#[derive(Debug, Clone, Copy)]
struct RandomFaults {
    seed: u64,
    rate: f64,
    kind: InjectedFault,
}

/// Deterministic fault-injection plan, consulted by the engine before
/// every solve attempt.
///
/// Solve attempts are numbered 0, 1, 2, ... in the order the engine
/// starts them (cache hits consume no ordinal). A plan maps ordinals to
/// fault classes; an optional seeded random component fails a fraction
/// of the remaining ordinals, reproducibly for a given seed.
///
/// # Examples
///
/// ```
/// use voltnoise_system::fault::{FaultInjector, InjectedFault};
///
/// let inj = FaultInjector::new()
///     .fail_solve(0, InjectedFault::SolverError)
///     .fail_solve(3, InjectedFault::WorkerPanic);
/// assert_eq!(inj.decide(0), Some(InjectedFault::SolverError));
/// assert_eq!(inj.decide(1), None);
/// assert_eq!(inj.decide(3), Some(InjectedFault::WorkerPanic));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    planned: HashMap<usize, InjectedFault>,
    random: Option<RandomFaults>,
}

impl FaultInjector {
    /// An injector that never fires (until configured).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Plans a fault at one solve ordinal (builder style).
    #[must_use]
    pub fn fail_solve(mut self, ordinal: usize, kind: InjectedFault) -> Self {
        self.planned.insert(ordinal, kind);
        self
    }

    /// Builds an injector from explicit `(ordinal, fault)` pairs.
    pub fn fail_solves<I>(plan: I) -> Self
    where
        I: IntoIterator<Item = (usize, InjectedFault)>,
    {
        FaultInjector {
            planned: plan.into_iter().collect(),
            random: None,
        }
    }

    /// Adds a seeded random component: each ordinal not covered by the
    /// explicit plan fails with probability `rate`, decided by a
    /// deterministic hash of `(seed, ordinal)` — the same seed always
    /// fails the same ordinals.
    #[must_use]
    pub fn with_random(mut self, seed: u64, rate: f64, kind: InjectedFault) -> Self {
        self.random = Some(RandomFaults {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kind,
        });
        self
    }

    /// The fault planted at `ordinal`, if any.
    pub fn decide(&self, ordinal: usize) -> Option<InjectedFault> {
        if let Some(&kind) = self.planned.get(&ordinal) {
            return Some(kind);
        }
        let r = self.random?;
        // splitmix64 of (seed ^ ordinal): deterministic, well mixed, and
        // independent of the std hasher's internal randomization.
        let mut z = r.seed ^ (ordinal as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        (unit < r.rate).then_some(r.kind)
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_ordinals_fire_exactly() {
        let inj = FaultInjector::fail_solves([
            (2, InjectedFault::NanOutcome),
            (5, InjectedFault::SolverError),
        ]);
        assert_eq!(inj.decide(2), Some(InjectedFault::NanOutcome));
        assert_eq!(inj.decide(5), Some(InjectedFault::SolverError));
        for n in [0, 1, 3, 4, 6, 100] {
            assert_eq!(inj.decide(n), None, "ordinal {n}");
        }
    }

    #[test]
    fn random_component_is_deterministic_and_rate_bounded() {
        let inj = FaultInjector::new().with_random(42, 0.25, InjectedFault::SolverError);
        let again = FaultInjector::new().with_random(42, 0.25, InjectedFault::SolverError);
        let hits: Vec<usize> = (0..4000).filter(|&n| inj.decide(n).is_some()).collect();
        let hits2: Vec<usize> = (0..4000).filter(|&n| again.decide(n).is_some()).collect();
        assert_eq!(hits, hits2, "same seed must fail the same ordinals");
        let rate = hits.len() as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed rate {rate}");
        let other = FaultInjector::new().with_random(43, 0.25, InjectedFault::SolverError);
        let hits3: Vec<usize> = (0..4000).filter(|&n| other.decide(n).is_some()).collect();
        assert_ne!(hits, hits3, "different seeds should differ");
    }

    #[test]
    fn explicit_plan_overrides_random() {
        let inj = FaultInjector::new()
            .fail_solve(7, InjectedFault::WorkerPanic)
            .with_random(1, 0.0, InjectedFault::SolverError);
        assert_eq!(inj.decide(7), Some(InjectedFault::WorkerPanic));
        assert_eq!(inj.decide(8), None);
    }

    #[test]
    fn retry_policy_default_is_single_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.reseed);
        assert_eq!(p.backoff_base_ms, 0);
        assert_eq!(RetryPolicy::attempts(3).max_attempts, 3);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = RetryPolicy::attempts(6).with_backoff(10, 2000);
        // Pure function of (seed, retry): identical on every call.
        for retry in 1..6 {
            assert_eq!(
                p.backoff_delay_ms(42, retry),
                p.backoff_delay_ms(42, retry),
                "retry {retry}"
            );
        }
        // Jitter keeps each delay within [nominal/2, nominal).
        for (retry, nominal) in [(1u32, 10u64), (2, 20), (3, 40), (4, 80)] {
            let d = p.backoff_delay_ms(7, retry);
            assert!(
                d >= nominal / 2 && d < nominal,
                "retry {retry}: delay {d} outside [{}, {nominal})",
                nominal / 2
            );
        }
        // The cap bounds deep chains (2^30 would overflow the schedule).
        assert!(p.backoff_delay_ms(7, 31) <= 2000);
        // Different seeds de-synchronize (overwhelmingly likely for a
        // 53-bit jitter; these fixed seeds are a regression anchor).
        assert_ne!(p.backoff_delay_ms(1, 3), p.backoff_delay_ms(2, 3));
        // Zero base means immediate retries.
        assert_eq!(RetryPolicy::attempts(3).backoff_delay_ms(42, 2), 0);
    }

    #[test]
    fn retry_after_hint_is_a_floor_under_the_jittered_backoff() {
        let p = RetryPolicy::attempts(4).with_backoff(10, 2000);
        // A hint beyond the backoff dominates; the client never comes
        // back before the server asked it to.
        assert_eq!(p.delay_with_hint(42, 1, 1000), 1000);
        // A hint below the backoff leaves the jittered schedule intact.
        assert_eq!(p.delay_with_hint(42, 3, 1), p.backoff_delay_ms(42, 3));
        // No backoff configured: the hint is the whole delay.
        assert_eq!(RetryPolicy::attempts(3).delay_with_hint(42, 2, 700), 700);
        // Deterministic: same inputs, same delay.
        assert_eq!(p.delay_with_hint(9, 2, 500), p.delay_with_hint(9, 2, 500));
    }

    #[test]
    fn deadline_faults_are_final_and_typed() {
        let deadline = FaultKind::of_error(PdnError::DeadlineExceeded { t: 1e-6 });
        assert!(matches!(deadline, FaultKind::Deadline(_)));
        assert!(deadline.is_final());
        assert!(deadline.to_string().starts_with("deadline fault:"));
        assert!(matches!(
            deadline.as_error(),
            Some(PdnError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn classification_routes_budget_and_cancel() {
        let budget = FaultKind::of_error(PdnError::BudgetExceeded { steps: 7, t: 1e-6 });
        assert!(matches!(budget, FaultKind::Budget(_)));
        assert!(budget.is_final());
        assert!(budget.to_string().starts_with("budget fault:"));
        let cancelled = FaultKind::of_error(PdnError::Cancelled { t: 2e-6 });
        assert!(matches!(cancelled, FaultKind::Cancelled(_)));
        assert!(cancelled.is_final());
        assert!(cancelled.to_string().starts_with("cancelled:"));
        let solver = FaultKind::of_error(PdnError::Injected { ordinal: 3 });
        assert!(matches!(solver, FaultKind::Solver(_)));
        assert!(!solver.is_final());
        assert!(solver.as_error().is_some());
        assert!(FaultKind::Panic("boom".into()).as_error().is_none());
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(p.as_ref()), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
