//! Full-evaluation report: runs every experiment at a chosen scale and
//! assembles one text document with all the paper's tables and figures.

use crate::{
    delta_i::{run_delta_i, DeltaIConfig},
    freq_sweep::{run_sweep, SweepConfig},
    funnel::FunnelSummary,
    guardband_study::{run_guardband_study, GuardbandConfig},
    impedance::{run_impedance, ImpedanceConfig},
    mapping_gain::{run_mapping_gain, MappingGainConfig},
    margin::{run_margin, MarginConfig},
    misalignment::{run_misalignment, MisalignConfig},
    propagation::{run_mapping_comparison, run_step_response, CorrelationAnalysis},
    scope_shot::{run_scope_shot, ScopeConfig},
    table1::Table1,
};
use voltnoise_pdn::PdnError;
use voltnoise_system::testbed::Testbed;

/// Scale at which the report is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportScale {
    /// Paper-scale configurations (minutes).
    Paper,
    /// Reduced configurations (tens of seconds).
    Reduced,
}

/// Generates the full evaluation report.
///
/// # Errors
///
/// Returns [`PdnError`] if any experiment's PDN solve fails.
pub fn full_report(tb: &Testbed, scale: ReportScale) -> Result<String, PdnError> {
    let reduced = scale == ReportScale::Reduced;
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("# voltnoise — full evaluation report\n\n");

    out.push_str(&Table1::from_testbed(tb).render());
    out.push('\n');
    out.push_str(&FunnelSummary::from_testbed(tb).render());
    out.push('\n');

    let sweep_cfg = if reduced { SweepConfig::reduced() } else { SweepConfig::paper() };
    out.push_str(&run_sweep(tb, &sweep_cfg, false)?.render());
    out.push('\n');
    out.push_str(&run_impedance(tb.chip(), &if reduced {
        ImpedanceConfig::reduced()
    } else {
        ImpedanceConfig::paper()
    })?
    .render());
    out.push('\n');
    out.push_str(&run_scope_shot(tb, &ScopeConfig::default())?.render());
    out.push('\n');
    out.push_str(&run_sweep(tb, &sweep_cfg, true)?.render());
    out.push('\n');
    out.push_str(
        &run_misalignment(tb, &if reduced {
            MisalignConfig::reduced()
        } else {
            MisalignConfig::paper()
        })?
        .render(),
    );
    out.push('\n');

    let delta_cfg = if reduced { DeltaIConfig::reduced() } else { DeltaIConfig::paper() };
    let dataset = run_delta_i(tb, &delta_cfg)?;
    out.push_str(&dataset.render_fig11a());
    out.push('\n');
    out.push_str(&dataset.render_fig11b());
    out.push('\n');
    out.push_str(
        &run_margin(tb, &if reduced {
            MarginConfig::reduced()
        } else {
            MarginConfig::paper()
        })?
        .render(),
    );
    out.push('\n');
    out.push_str(&CorrelationAnalysis::from_dataset(&dataset).render());
    out.push('\n');
    let step_amps = tb.max_stressmark(2.5e6, None).delta_i();
    out.push_str(&run_step_response(tb.chip(), 0, step_amps)?.render());
    out.push('\n');
    out.push_str(&run_mapping_comparison(tb, 2.5e6)?.render());
    out.push('\n');
    out.push_str(
        &run_mapping_gain(tb, &if reduced {
            MappingGainConfig::reduced()
        } else {
            MappingGainConfig::paper()
        })?
        .render(),
    );
    out.push('\n');
    out.push_str(
        &run_guardband_study(tb, &if reduced {
            GuardbandConfig::reduced()
        } else {
            GuardbandConfig::paper()
        })?
        .render(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_report_covers_every_artifact() {
        let tb = Testbed::fast();
        let report = full_report(tb, ReportScale::Reduced).unwrap();
        for marker in [
            "Table I",
            "Fig. 5",
            "Fig. 7a",
            "Fig. 7b",
            "Fig. 8",
            "Fig. 9",
            "Fig. 10",
            "Fig. 11a",
            "Fig. 11b",
            "Fig. 12",
            "Fig. 13a",
            "Fig. 13b",
            "Fig. 14",
            "Fig. 15",
            "§VII-B",
        ] {
            assert!(report.contains(marker), "report missing {marker}");
        }
        assert!(report.len() > 4_000, "report suspiciously short");
    }
}
