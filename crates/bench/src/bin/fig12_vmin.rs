//! Regenerates paper Fig. 12: available voltage margin (Vmin experiments)
//! for different numbers of consecutive dI events and stimulus
//! frequencies, plus the extrapolated customer-code line.

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { MarginConfig::reduced() } else { MarginConfig::paper() };
    let res = run_margin(tb, &cfg).expect("margin campaign runs");
    let mut rendered = res.render();
    rendered.push_str(&format!(
        "# mean margins: synchronized {:.2} %, unsynchronized {:.2} %\n",
        res.mean_sync_margin(),
        res.mean_unsync_margin()
    ));
    opts.finish(&rendered, &res);
}
