//! The deadline reaper: one background thread that cancels batch
//! tokens — with the *deadline* reason — when their wall-clock budget
//! expires.
//!
//! Registration hands the reaper a `(deadline, token)` pair and returns
//! a guard; dropping the guard (the batch settled in time) withdraws
//! the entry. The reaper thread sleeps until the earliest pending
//! deadline and calls [`CancelToken::cancel_deadline`] on expiry, which
//! the transient solver observes at its next accepted step and turns
//! into [`voltnoise_pdn::PdnError::DeadlineExceeded`] — the engine
//! books it as a final, non-retried deadline fault.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use voltnoise_pdn::CancelToken;

#[derive(Default)]
struct ReaperState {
    /// Pending entries by registration id.
    pending: HashMap<u64, (Instant, CancelToken)>,
    next_id: u64,
    shutdown: bool,
}

/// The reaper: shared state plus the condvar its thread sleeps on.
pub struct DeadlineReaper {
    state: Mutex<ReaperState>,
    wake: Condvar,
}

impl DeadlineReaper {
    /// Starts the reaper thread; the returned handle registers
    /// deadlines. The thread exits when [`DeadlineReaper::shutdown`] is
    /// called (it is detached otherwise and dies with the process).
    pub fn start() -> Arc<DeadlineReaper> {
        let reaper = Arc::new(DeadlineReaper {
            state: Mutex::new(ReaperState::default()),
            wake: Condvar::new(),
        });
        let worker = reaper.clone();
        std::thread::Builder::new()
            .name("deadline-reaper".to_string())
            .spawn(move || worker.run())
            // Thread spawn only fails on resource exhaustion at process
            // start; without a reaper, deadlines degrade to "never
            // enforced", which the caller cannot distinguish anyway —
            // so surface it loudly instead.
            .unwrap_or_else(|e| panic!("cannot start deadline reaper: {e}"));
        reaper
    }

    /// Registers `token` to be deadline-cancelled `after` from now.
    /// Dropping the guard withdraws the registration.
    pub fn register(self: &Arc<Self>, token: CancelToken, after: Duration) -> DeadlineGuard {
        let deadline = Instant::now() + after;
        let id = {
            let mut state = self.lock();
            let id = state.next_id;
            state.next_id += 1;
            state.pending.insert(id, (deadline, token));
            id
        };
        self.wake.notify_all();
        DeadlineGuard {
            reaper: self.clone(),
            id,
        }
    }

    /// Entries currently pending (observability and tests).
    pub fn pending(&self) -> usize {
        self.lock().pending.len()
    }

    /// Stops the reaper thread. Pending registrations are abandoned
    /// un-cancelled — shutdown cancels batches through the drain path,
    /// not through their deadlines.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.wake.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ReaperState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn run(&self) {
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            // Fire everything due; keep the earliest remaining deadline.
            let due: Vec<u64> = state
                .pending
                .iter()
                .filter(|(_, (deadline, _))| *deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            for id in due {
                if let Some((_, token)) = state.pending.remove(&id) {
                    token.cancel_deadline();
                }
            }
            let next = state.pending.values().map(|(deadline, _)| *deadline).min();
            state = match next {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    self.wake
                        .wait_timeout(state, wait)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
                None => self
                    .wake
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner),
            };
        }
    }
}

/// A pending deadline registration; dropping it (batch settled in
/// time) withdraws the entry before it can fire.
pub struct DeadlineGuard {
    reaper: Arc<DeadlineReaper>,
    id: u64,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        self.reaper.lock().pending.remove(&self.id);
        self.reaper.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltnoise_pdn::CancelReason;

    #[test]
    fn expired_deadlines_cancel_with_the_deadline_reason() {
        let reaper = DeadlineReaper::start();
        let token = CancelToken::new();
        let _guard = reaper.register(token.clone(), Duration::from_millis(20));
        assert!(!token.is_cancelled());
        let t0 = Instant::now();
        while !token.is_cancelled() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(token.is_cancelled(), "deadline never fired");
        assert_eq!(token.reason(), Some(CancelReason::Deadline));
        assert_eq!(reaper.pending(), 0);
        reaper.shutdown();
    }

    #[test]
    fn dropped_guard_withdraws_before_firing() {
        let reaper = DeadlineReaper::start();
        let token = CancelToken::new();
        let guard = reaper.register(token.clone(), Duration::from_millis(40));
        assert_eq!(reaper.pending(), 1);
        drop(guard);
        assert_eq!(reaper.pending(), 0);
        std::thread::sleep(Duration::from_millis(80));
        assert!(!token.is_cancelled(), "withdrawn deadline must not fire");
        reaper.shutdown();
    }

    #[test]
    fn multiple_deadlines_fire_independently() {
        let reaper = DeadlineReaper::start();
        let fast = CancelToken::new();
        let slow = CancelToken::new();
        let _g1 = reaper.register(fast.clone(), Duration::from_millis(10));
        let _g2 = reaper.register(slow.clone(), Duration::from_secs(600));
        let t0 = Instant::now();
        while !fast.is_cancelled() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(fast.is_cancelled());
        assert!(!slow.is_cancelled(), "distant deadline fired early");
        assert_eq!(reaper.pending(), 1);
        reaper.shutdown();
    }
}
