//! Offline stand-in for `serde`.
//!
//! The build environment has no cargo registry, so the workspace vendors
//! a minimal serialization framework under the `serde` name. Instead of
//! serde's visitor architecture it uses a concrete value tree: types
//! convert to and from [`Value`], and `serde_json` prints/parses that
//! tree. The `#[derive(Serialize, Deserialize)]` macros are provided by
//! the vendored `serde_derive` crate and generate `to_value`/`from_value`
//! implementations for the struct and enum shapes used in this workspace.
//!
//! Conventions match serde_json's defaults where it matters for
//! readability: named structs become objects, newtype structs are
//! transparent, tuple structs become arrays, unit enum variants become
//! strings, and data-carrying variants become single-key objects.
//! Non-finite floats serialize as `null` (as serde_json does) and
//! deserialize back as NaN.

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape doesn't match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a named field in an object and deserializes it. Used by the
/// derive-generated code.
///
/// # Errors
///
/// Returns [`Error`] if the field is missing or fails to deserialize.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected unsigned integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer too large"))?,
                    Value::I64(n) => *n,
                    _ => return Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() { Value::F64(x) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // Non-finite floats round-trip through null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let elems: Vec<T> = Vec::from_value(v)?;
        elems
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(std::path::PathBuf::from)
    }
}

/// Types usable as JSON object keys (strings and integers, matching
/// serde_json's behavior of stringifying integer map keys).
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the text doesn't parse as `Self`.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(concat!("invalid map key for ", stringify!($t))))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V> Serialize for std::collections::HashMap<K, V>
where
    K: MapKey + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sort entries so serialization is deterministic despite the
        // map's randomized iteration order.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($i),+].len();
                let a = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                if a.len() != LEN {
                    return Err(Error::msg(format!("expected tuple of length {LEN}")));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::INFINITY.to_value()).unwrap().is_nan());
        assert_eq!(
            String::from_value(&"x".to_string().to_value()).unwrap(),
            "x"
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let arr: [f64; 3] = Deserialize::from_value(&[1.0, 2.0, 3.0].to_value()).unwrap();
        assert_eq!(arr, [1.0, 2.0, 3.0]);
        let t: (f64, u32) = Deserialize::from_value(&(2.5f64, 9u32).to_value()).unwrap();
        assert_eq!(t, (2.5, 9));
    }
}
