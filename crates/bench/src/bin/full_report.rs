//! Generates the complete evaluation report (every table and figure) in
//! one run. Use `--reduced` for a fast pass; omit it for paper scale.
//!
//! The figure bytes on stdout are a pure function of the experiment
//! content: everything about *this run* — store diagnostics, the engine
//! telemetry table — goes to stderr, and the machine-readable stats JSON
//! goes to the file named by `VOLTNOISE_STATS_PATH` (when set). Set
//! `VOLTNOISE_TRACE=1` to additionally collect wall-clock histograms.

use voltnoise::analysis::{full_report_with_telemetry, ReportScale};
use voltnoise::prelude::*;
use voltnoise::system::{export_stats_json, Engine};
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let (tb, scale) = if opts.reduced {
        (Testbed::fast(), ReportScale::Reduced)
    } else {
        (Testbed::shared(), ReportScale::Paper)
    };
    // Engine::new honors VOLTNOISE_STORE, making the whole report
    // resumable after an interrupt.
    let engine = Engine::new();
    let (report, telemetry) =
        full_report_with_telemetry(tb, &engine, scale).expect("all experiments run");
    print!("{report}");
    // Run diagnostics go to stderr so the report bytes on stdout stay
    // identical with and without a store attached or tracing enabled.
    if let Some(store) = engine.store() {
        let stats = engine.stats();
        eprintln!(
            "voltnoise: store {} — {} entries, {} served from disk, {} solved fresh, \
             {} corrupt lines skipped",
            store.path().display(),
            store.len(),
            stats.store_hits,
            stats.solves,
            stats.store_corrupt_lines,
        );
    }
    eprint!("{telemetry}");
    match engine.stats().to_json() {
        Ok(json) => {
            if let Some(path) = export_stats_json(&json) {
                eprintln!("voltnoise: wrote engine stats to {}", path.display());
            }
        }
        Err(e) => eprintln!("voltnoise: engine stats did not serialize: {e}"),
    }
}
