//! Regenerates the drawer propagation study: a dI step on one chip of a
//! multi-chip drawer, observing droop depth and arrival time at every
//! chip down the shared board PDN. Not part of the paper's evaluation
//! (the zEC12 data is single-chip), so it stays out of `full_report`.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("drawer-prop");
}
