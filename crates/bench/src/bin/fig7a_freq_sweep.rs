//! Regenerates paper Fig. 7a: per-core noise vs stimulus frequency,
//! without synchronization.

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { SweepConfig::reduced() } else { SweepConfig::paper() };
    let res = run_sweep(tb, &cfg, false).expect("sweep runs");
    opts.finish(&res.render(), &res);
}
