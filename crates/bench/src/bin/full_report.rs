//! Generates the complete evaluation report (every table and figure) in
//! one run. Use `--reduced` for a fast pass; omit it for paper scale.

use voltnoise::analysis::{full_report_on, ReportScale};
use voltnoise::prelude::*;
use voltnoise::system::Engine;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let (tb, scale) = if opts.reduced {
        (Testbed::fast(), ReportScale::Reduced)
    } else {
        (Testbed::shared(), ReportScale::Paper)
    };
    // Engine::new honors VOLTNOISE_STORE, making the whole report
    // resumable after an interrupt.
    let engine = Engine::new();
    let report = full_report_on(tb, &engine, scale).expect("all experiments run");
    print!("{report}");
    // Durability diagnostics go to stderr so the report bytes on stdout
    // stay identical with and without a store attached.
    if let Some(store) = engine.store() {
        let stats = engine.stats();
        eprintln!(
            "voltnoise: store {} — {} entries, {} served from disk, {} solved fresh, \
             {} corrupt lines skipped",
            store.path().display(),
            store.len(),
            stats.store_hits,
            stats.solves,
            stats.store_corrupt_lines,
        );
    }
}
