//! Oscilloscope confirmation shots (paper Fig. 8): core-0 voltage while
//! executing the maximum dI/dt stressmark near the die-band resonance —
//! a 20 µs window plus one extracted stimulus period.

use crate::experiment::Experiment;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_measure::scope::ScopeTrace;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::{CoreLoad, NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;

/// Scope-shot configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeConfig {
    /// Stimulus frequency of the stressmark (the paper shoots ~2 MHz).
    pub stim_freq_hz: f64,
    /// Length of the long shot (Fig. 8a is 20 µs).
    pub shot_s: f64,
    /// Observed core.
    pub core: usize,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            stim_freq_hz: 2.5e6,
            shot_s: 20e-6,
            core: 0,
        }
    }
}

/// The captured shots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeShot {
    /// The long window (Fig. 8a).
    pub window: ScopeTrace,
    /// One extracted stimulus period (Fig. 8b).
    pub single_period: ScopeTrace,
    /// Dominant oscillation frequency estimated from the window.
    pub dominant_freq_hz: Option<f64>,
}

impl ScopeShot {
    /// Renders summary lines (full traces are exported as CSV elsewhere).
    pub fn render(&self) -> String {
        format!(
            "# Fig. 8: oscilloscope shot of core voltage under max dI/dt stressmark\n\
             window: {} samples over {:.1} us, p2p {:.1} mV (min {:.4} V, max {:.4} V)\n\
             single period: {} samples, p2p {:.1} mV\n\
             dominant frequency: {}\n",
            self.window.len(),
            (self.window.times().last().unwrap() - self.window.times()[0]) * 1e6,
            self.window.peak_to_peak() * 1e3,
            self.window.min(),
            self.window.max(),
            self.single_period.len(),
            self.single_period.peak_to_peak() * 1e3,
            match self.dominant_freq_hz {
                Some(f) => format!("{f:.3e} Hz"),
                None => "n/a".to_string(),
            }
        )
    }
}

/// The Fig. 8 oscilloscope-shot experiment.
#[derive(Debug, Clone)]
pub struct ScopeShotExperiment {
    /// Shot configuration.
    pub cfg: ScopeConfig,
}

impl Experiment for ScopeShotExperiment {
    type Artifact = ScopeShot;

    fn id(&self) -> &'static str {
        "fig8"
    }

    fn title(&self) -> &'static str {
        "Fig. 8: oscilloscope shot under max dI/dt stressmark"
    }

    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let sm = tb.max_stressmark(self.cfg.stim_freq_hz, Some(SyncSpec::paper_default()));
        let loads: [CoreLoad; NUM_CORES] =
            std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
        Ok(vec![SimJob::batch(tb.chip()).job(
            loads,
            NoiseRunConfig {
                window_s: Some(self.cfg.shot_s.max(4.0 / self.cfg.stim_freq_hz)),
                record_traces: true,
                seed: 1,
                ..NoiseRunConfig::default()
            },
        )])
    }

    fn assemble(
        &self,
        _tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<ScopeShot, PdnError> {
        let out = &outcomes[0];
        let traces = out.traces.as_ref().expect("traces requested");
        let window = traces[self.cfg.core].clone();
        let t_mid = window.times()[window.len() / 2];
        let single_period = window
            .single_period(self.cfg.stim_freq_hz, t_mid)
            .map_err(|e| PdnError::InvalidTimebase {
                reason: format!("single-period extraction failed: {e}"),
            })?;
        let dominant_freq_hz = window.dominant_frequency();
        Ok(ScopeShot {
            window,
            single_period,
            dominant_freq_hz,
        })
    }

    fn render(&self, artifact: &ScopeShot) -> String {
        artifact.render()
    }
}

/// Captures the Fig. 8 shots on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if the PDN solve fails, and propagates trace
/// extraction failures as `InvalidTimebase`.
pub fn run_scope_shot(tb: &Testbed, cfg: &ScopeConfig) -> Result<ScopeShot, PdnError> {
    ScopeShotExperiment { cfg: cfg.clone() }.run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shot_shows_periodic_noise_at_stimulus_frequency() {
        let tb = Testbed::fast();
        let shot = run_scope_shot(tb, &ScopeConfig::default()).unwrap();
        // Large peak-to-peak variations, repeating sinusoid-like form.
        assert!(
            shot.window.peak_to_peak() > 0.015,
            "p2p = {}",
            shot.window.peak_to_peak()
        );
        let f = shot.dominant_freq_hz.expect("oscillation present");
        assert!(
            (f - 2.5e6).abs() / 2.5e6 < 0.25,
            "dominant frequency {f:.3e} should track the 2.5 MHz stimulus"
        );
        // The single period spans ~1/f.
        let span = shot.single_period.times().last().unwrap() - shot.single_period.times()[0];
        assert!((span - 400e-9).abs() < 150e-9, "span = {span}");
    }

    #[test]
    fn render_mentions_window_and_period() {
        let tb = Testbed::fast();
        let shot = run_scope_shot(tb, &ScopeConfig::default()).unwrap();
        let text = shot.render();
        assert!(text.contains("window:"));
        assert!(text.contains("single period:"));
    }
}
