//! Regenerates the ROM error study: the drawer dI-step solved by the
//! reduced-order macromodel under several error budgets, tabulating the
//! order the calibration settles on, the calibrated worst-case error,
//! and the droop gap actually measured against the full-order solver.
//! Not part of the paper's evaluation, so it stays out of `full_report`.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("rom-error");
}
