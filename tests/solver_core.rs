//! Solver-core equivalence suite: the sparse backend must agree with the
//! dense backend on any netlist, and the golden reduced report must stay
//! byte-identical across solver-core changes.
//!
//! The dense path is the reference implementation (direct LU with
//! partial pivoting); the sparse path (CSR + Markowitz LU with pattern
//! reuse) is an optimization that must never change results. Random RLC
//! ladders exercise both transient and AC analysis on both backends.

#[path = "golden/mod.rs"]
mod golden;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use voltnoise::pdn::ac::{log_space, AcAnalysis};
use voltnoise::pdn::netlist::{Netlist, NodeId};
use voltnoise::pdn::transient::{ConstantDrive, Probe, TransientConfig, TransientSolver};
use voltnoise::pdn::SolverBackend;

/// Builds a random but well-posed RLC ladder: a voltage source feeding a
/// chain of series R (sometimes R+L) segments, each node shunted to
/// ground by a capacitor (sometimes with ESR), with a few branch
/// resistors for off-ladder fill and current-source loads at random
/// nodes. Every node has a resistive path to ground, so both backends
/// must factor it without pivoting trouble.
fn random_ladder(rng: &mut SmallRng, segments: usize, loads: usize) -> (Netlist, Vec<NodeId>) {
    let mut nl = Netlist::new();
    let vdd = nl.add_node("vdd");
    nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
    let mut nodes = Vec::with_capacity(segments);
    let mut prev = vdd;
    for i in 0..segments {
        let n = nl.add_node(format!("n{i}"));
        let r = 0.1e-3 + rng.gen::<f64>() * 2e-3;
        if rng.gen::<f64>() < 0.35 {
            let l = 0.05e-9 + rng.gen::<f64>() * 1e-9;
            nl.add_series_rl(prev, n, r, l).unwrap();
        } else {
            nl.add_resistor(prev, n, r).unwrap();
        }
        let c = 1e-9 + rng.gen::<f64>() * 100e-9;
        if rng.gen::<f64>() < 0.6 {
            let esr = 0.1e-3 + rng.gen::<f64>() * 1e-3;
            nl.add_capacitor_with_esr(n, NodeId::GROUND, c, esr)
                .unwrap();
        } else {
            nl.add_capacitor(n, NodeId::GROUND, c).unwrap();
        }
        nodes.push(n);
        prev = n;
    }
    // Off-ladder fill: a few resistive rungs between random node pairs.
    for _ in 0..segments / 3 {
        let a = nodes[rng.gen_range(0..segments)];
        let b = nodes[rng.gen_range(0..segments)];
        if a != b {
            nl.add_resistor(a, b, 0.5e-3 + rng.gen::<f64>() * 2e-3)
                .unwrap();
        }
    }
    for _ in 0..loads {
        let at = nodes[rng.gen_range(0..segments)];
        nl.add_current_source(at, NodeId::GROUND).unwrap();
    }
    (nl, nodes)
}

#[test]
fn transient_sparse_matches_dense_on_random_netlists() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_c0de);
    for trial in 0..6 {
        let segments = 10 + (trial % 3) * 6;
        let loads = 2 + trial % 3;
        let (nl, nodes) = random_ladder(&mut rng, segments, loads);
        let amps: Vec<f64> = (0..loads).map(|_| 1.0 + rng.gen::<f64>() * 20.0).collect();
        let drive = ConstantDrive::new(amps);
        let probes: Vec<Probe> = nodes
            .iter()
            .step_by(3)
            .map(|&n| Probe::NodeVoltage(n))
            .collect();
        let mut tc = TransientConfig::new(2e-6);
        tc.record_decimation = Some(1);

        let mut dense = TransientSolver::with_backend(&nl, SolverBackend::Dense).unwrap();
        let mut sparse = TransientSolver::with_backend(&nl, SolverBackend::Sparse).unwrap();
        assert!(!dense.uses_sparse() && sparse.uses_sparse());

        // DC operating points agree element-wise.
        let dc_d = dense.solve_dc(&drive).unwrap();
        let dc_s = sparse.solve_dc(&drive).unwrap();
        assert_eq!(dc_d.len(), dc_s.len());
        for (i, (a, b)) in dc_d.iter().zip(&dc_s).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "trial {trial} DC node {i}: dense {a} vs sparse {b}"
            );
        }

        // Full transient runs agree at every recorded sample.
        let rd = dense.run(&drive, &probes, &tc).unwrap();
        let rs = sparse.run(&drive, &probes, &tc).unwrap();
        assert_eq!(rd.steps, rs.steps, "trial {trial}: step counts differ");
        for (p, (td, ts)) in rd.traces.iter().zip(&rs.traces).enumerate() {
            for (k, (a, b)) in td.iter().zip(ts).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "trial {trial} probe {p} sample {k}: dense {a} vs sparse {b}"
                );
            }
        }
        for (p, (sd, ss)) in rd.stats.iter().zip(&rs.stats).enumerate() {
            assert!((sd.mean - ss.mean).abs() < 1e-9, "trial {trial} probe {p}");
            assert!((sd.min - ss.min).abs() < 1e-9, "trial {trial} probe {p}");
            assert!((sd.max - ss.max).abs() < 1e-9, "trial {trial} probe {p}");
        }
        // The forced-sparse run actually took the sparse path.
        assert!(rs.counters.sparse_solves > 0);
        assert_eq!(rd.counters.sparse_solves, 0);
        // And the nnz-aware cost model charged the sparse run less.
        assert!(rs.counters.est_flops < rd.counters.est_flops);
    }
}

#[test]
fn ac_sparse_matches_dense_on_random_netlists() {
    let mut rng = SmallRng::seed_from_u64(0xac5eed);
    for trial in 0..6 {
        let (nl, nodes) = random_ladder(&mut rng, 14, 2);
        let dense = AcAnalysis::with_backend(&nl, SolverBackend::Dense);
        let sparse = AcAnalysis::with_backend(&nl, SolverBackend::Sparse);
        assert!(!dense.uses_sparse() && sparse.uses_sparse());
        let freqs = log_space(1e4, 100e6, 25).unwrap();
        let inject = nodes[nodes.len() / 2];
        let pd = dense.sweep(inject, &freqs).unwrap();
        let ps = sparse.sweep(inject, &freqs).unwrap();
        assert_eq!(pd.len(), ps.len());
        for (k, (a, b)) in pd.iter().zip(&ps).enumerate() {
            assert!(
                (a.z.re - b.z.re).abs() < 1e-9 && (a.z.im - b.z.im).abs() < 1e-9,
                "trial {trial} point {k}: dense {}+{}j vs sparse {}+{}j",
                a.z.re,
                a.z.im,
                b.z.re,
                b.z.im
            );
        }
    }
}

#[test]
fn ac_batched_injections_match_looped_bitwise() {
    let mut rng = SmallRng::seed_from_u64(0x0ba7_c4ed);
    for trial in 0..4 {
        let (nl, nodes) = random_ladder(&mut rng, 12 + trial * 4, 2);
        let freqs = log_space(1e5, 50e6, 7).unwrap();
        let ports: Vec<NodeId> = nodes.iter().step_by(2).copied().collect();
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let batched = AcAnalysis::with_backend(&nl, backend);
            let looped = AcAnalysis::with_backend(&nl, backend);
            for &f in &freqs {
                let zb = batched.impedance_batch(&ports, f).unwrap();
                for (i, &node) in ports.iter().enumerate() {
                    let zl = looped.impedance_at(node, f).unwrap();
                    assert!(
                        zb[i].re.to_bits() == zl.re.to_bits()
                            && zb[i].im.to_bits() == zl.im.to_bits(),
                        "trial {trial} {backend:?} port {i} at {f} Hz: \
                         batched {}+{}j vs looped {}+{}j must be bitwise equal",
                        zb[i].re,
                        zb[i].im,
                        zl.re,
                        zl.im
                    );
                }
            }
            // The batched analyzer factored once per frequency; the
            // looped one refactored per (frequency, port) pair.
            let cb = batched.counters();
            let cl = looped.counters();
            assert_eq!(cb.lu_factorizations as usize, freqs.len());
            assert_eq!(
                cl.lu_factorizations as usize,
                freqs.len() * ports.len(),
                "looped path must factor per injection"
            );
            assert!(cb.batched_solves > 0 && cl.batched_solves == 0);
            assert!(cb.est_flops < cl.est_flops);
        }
    }
}

#[test]
fn rom_tracks_full_solver_across_drawer_topologies() {
    use voltnoise::pdn::{DrawerParams, RomSpec, SolveSpec};
    use voltnoise::system::{DrawerJob, DrawerStepConfig};
    let topologies = [
        DrawerParams {
            chips: 4,
            ..DrawerParams::default()
        },
        DrawerParams {
            chips: 8,
            r_spine: 0.05e-3,
            ..DrawerParams::default()
        },
    ];
    for (t, drawer) in topologies.into_iter().enumerate() {
        let base = DrawerStepConfig {
            drawer,
            window_s: 3e-6,
            ..DrawerStepConfig::default()
        };
        let full = DrawerJob::new(base.clone()).unwrap().solve().unwrap();
        let spec = RomSpec::default();
        let rom = DrawerJob::new(DrawerStepConfig {
            solve: SolveSpec::reduced(spec),
            ..base.clone()
        })
        .unwrap()
        .solve()
        .unwrap();
        assert!(
            rom.rom_states > 0,
            "topology {t}: ROM must report its order"
        );
        assert!(
            rom.rom_max_error_v <= spec.budget_v,
            "topology {t}: calibrated error {:.3e} V above budget {:.3e} V",
            rom.rom_max_error_v,
            spec.budget_v
        );
        assert!(
            rom.steps < full.steps,
            "topology {t}: reduced solve must take fewer steps ({} vs {})",
            rom.steps,
            full.steps
        );
        let gap = full
            .droop_depth_v
            .iter()
            .zip(&rom.droop_depth_v)
            .map(|(a, b)| (a - b).abs())
            .fold(
                (full.source_core_droop_v - rom.source_core_droop_v).abs(),
                f64::max,
            );
        assert!(
            gap <= 3.0 * spec.budget_v,
            "topology {t}: droop gap {:.3e} V far above the {:.3e} V budget",
            gap,
            spec.budget_v
        );
    }
}

#[test]
fn full_report_reduced_is_byte_identical_to_golden() {
    use voltnoise::analysis::{full_report_on, ReportScale};
    use voltnoise::system::{Engine, Testbed};
    let report = full_report_on(
        Testbed::fast(),
        &Engine::with_workers(2),
        ReportScale::Reduced,
    )
    .unwrap();
    // Solver-core changes must not alter figure bytes.
    golden::assert_golden("full_report_reduced.txt", &report);
}
