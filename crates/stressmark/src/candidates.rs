//! Step 1 of the maximum-power sequence search (paper Fig. 5):
//! instruction candidate selection.
//!
//! Instructions are categorized by functional unit, issue class, and
//! whether they branch; the top power consumer of each category is taken,
//! low-power / low-IPC categories are discarded, and the nine strongest
//! candidates remain — "avoiding a design space explosion problem"
//! (§IV-B).

use serde::{Deserialize, Serialize};
use voltnoise_uarch::epi::EpiProfile;
use voltnoise_uarch::isa::{Isa, Opcode};
use voltnoise_uarch::units::{IssueClass, UnitKind};

/// Number of candidates the selection keeps (paper: nine).
pub const NUM_CANDIDATES: usize = 9;

/// Category key: unit × issue class × branch-ness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Category {
    /// Executing unit.
    pub unit: UnitKind,
    /// Issue class.
    pub class: IssueClass,
    /// True for group-ending branches.
    pub branches: bool,
}

/// One selected candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The instruction.
    pub opcode: Opcode,
    /// Its mnemonic (for reports).
    pub mnemonic: String,
    /// Its category.
    pub category: Category,
    /// EPI loop power of the instruction, watts.
    pub power_w: f64,
    /// EPI loop IPC of the instruction.
    pub ipc: f64,
}

/// Selects the nine instruction candidates from an EPI profile.
///
/// Serializing categories are discarded outright (their loops cannot
/// sustain IPC), then categories are ranked by the loop power of their
/// strongest member and the top [`NUM_CANDIDATES`] survive.
///
/// # Examples
///
/// ```
/// use voltnoise_stressmark::candidates::select_candidates;
/// use voltnoise_uarch::{epi::EpiProfile, isa::Isa, pipeline::CoreConfig};
///
/// let isa = Isa::zlike();
/// let profile = EpiProfile::generate(&isa, &CoreConfig::default());
/// let cands = select_candidates(&isa, &profile);
/// assert_eq!(cands.len(), 9);
/// // The fused compare-and-branch leader is always among them.
/// assert!(cands.iter().any(|c| c.mnemonic == "CIB"));
/// ```
pub fn select_candidates(isa: &Isa, profile: &EpiProfile) -> Vec<Candidate> {
    use std::collections::HashMap;
    let mut best: HashMap<Category, Candidate> = HashMap::new();
    for entry in profile.entries() {
        let def = isa.def(entry.opcode);
        if def.serializing {
            continue; // low-IPC categories are discarded
        }
        let cat = Category {
            unit: def.unit,
            class: def.issue_class(),
            branches: def.ends_group,
        };
        // Entries arrive highest-power first, so the first of a category
        // is its strongest member.
        best.entry(cat).or_insert_with(|| Candidate {
            opcode: entry.opcode,
            mnemonic: entry.mnemonic.clone(),
            category: cat,
            power_w: entry.power_w,
            ipc: entry.ipc,
        });
    }
    let mut cands: Vec<Candidate> = best.into_values().collect();
    cands.sort_by(|a, b| {
        b.power_w
            .total_cmp(&a.power_w)
            .then_with(|| a.mnemonic.cmp(&b.mnemonic))
    });
    cands.truncate(NUM_CANDIDATES);
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use voltnoise_uarch::pipeline::CoreConfig;

    fn fixture() -> &'static (Isa, Vec<Candidate>) {
        static CELL: OnceLock<(Isa, Vec<Candidate>)> = OnceLock::new();
        CELL.get_or_init(|| {
            let isa = Isa::zlike();
            let profile = EpiProfile::generate(&isa, &CoreConfig::default());
            let cands = select_candidates(&isa, &profile);
            (isa, cands)
        })
    }

    #[test]
    fn exactly_nine_candidates() {
        assert_eq!(fixture().1.len(), NUM_CANDIDATES);
    }

    #[test]
    fn no_serializing_candidates() {
        let (isa, cands) = fixture();
        for c in cands {
            assert!(!isa.def(c.opcode).serializing, "{} serializes", c.mnemonic);
        }
    }

    #[test]
    fn candidates_span_multiple_units() {
        let (_, cands) = fixture();
        let units: std::collections::HashSet<_> = cands.iter().map(|c| c.category.unit).collect();
        assert!(units.len() >= 3, "only {units:?}");
    }

    #[test]
    fn one_candidate_per_category() {
        let (_, cands) = fixture();
        let cats: std::collections::HashSet<_> = cands.iter().map(|c| c.category).collect();
        assert_eq!(cats.len(), cands.len());
    }

    #[test]
    fn includes_branch_and_nonbranch_candidates() {
        let (_, cands) = fixture();
        assert!(cands.iter().any(|c| c.category.branches));
        assert!(cands.iter().any(|c| !c.category.branches));
    }

    #[test]
    fn sorted_by_descending_power() {
        let (_, cands) = fixture();
        assert!(cands.windows(2).all(|w| w[0].power_w >= w[1].power_w));
    }
}
