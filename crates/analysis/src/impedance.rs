//! The post-silicon impedance profile (paper Fig. 7b).

use crate::experiment::Experiment;
use crate::render::Table;
use crate::signal_summary::SignalSummary;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::ac::{log_space, AcAnalysis};
use voltnoise_pdn::PdnError;
use voltnoise_system::chip::Chip;
use voltnoise_system::noise::NoiseOutcome;
use voltnoise_system::testbed::Testbed;

/// Impedance-profile configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpedanceConfig {
    /// Lowest frequency of the sweep.
    pub f_lo_hz: f64,
    /// Highest frequency of the sweep.
    pub f_hi_hz: f64,
    /// Number of log-spaced points.
    pub points: usize,
    /// Core whose supply node is characterized.
    pub core: usize,
}

impl ImpedanceConfig {
    /// The paper-style profile: 1 kHz – 100 MHz.
    pub fn paper() -> Self {
        ImpedanceConfig {
            f_lo_hz: 1e3,
            f_hi_hz: 100e6,
            points: 400,
            core: 0,
        }
    }

    /// Reduced sweep for tests.
    pub fn reduced() -> Self {
        ImpedanceConfig {
            points: 120,
            ..ImpedanceConfig::paper()
        }
    }
}

/// The computed profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpedanceProfile {
    /// `(frequency_hz, |Z| ohms)` pairs in ascending frequency.
    pub points: Vec<(f64, f64)>,
    /// Resonance peaks `(frequency_hz, |Z| ohms)`, strongest first
    /// (mirrors `signal.peaks`; kept for compatibility and rendering).
    pub peaks: Vec<(f64, f64)>,
    /// The full spectral summary: peaks plus half-power Q and die-band
    /// `|Z|²` energy. Additive — nothing here enters the rendered
    /// figure, so Fig. 7b bytes are unchanged.
    pub signal: SignalSummary,
}

impl ImpedanceProfile {
    /// The die-band resonance (strongest peak above 500 kHz), if any.
    pub fn die_band(&self) -> Option<(f64, f64)> {
        self.peaks.iter().copied().find(|(f, _)| *f > 5e5)
    }

    /// The board/package band (strongest peak below 500 kHz), if any.
    pub fn board_band(&self) -> Option<(f64, f64)> {
        self.peaks.iter().copied().find(|(f, _)| *f <= 5e5)
    }

    /// Renders the Fig. 7b series.
    pub fn render(&self) -> String {
        let mut t = Table::new("Fig. 7b: die-level impedance profile |Z(f)|");
        t.columns(["freq_hz", "z_mohm"]);
        for (f, z) in &self.points {
            t.row([format!("{f:.4e}"), format!("{:.4}", z * 1e3)]);
        }
        for (f, z) in &self.peaks {
            t.note(&format!("peak: {:.3} mOhm at {f:.3e} Hz", z * 1e3));
        }
        t.finish()
    }
}

/// The Fig. 7b impedance-profile experiment: a pure AC analysis, so the
/// job list stays empty and `assemble` computes directly.
#[derive(Debug, Clone)]
pub struct ImpedanceExperiment {
    /// The sweep configuration.
    pub cfg: ImpedanceConfig,
}

impl Experiment for ImpedanceExperiment {
    type Artifact = ImpedanceProfile;

    fn id(&self) -> &'static str {
        "fig7b"
    }

    fn title(&self) -> &'static str {
        "Fig. 7b: die-level impedance profile"
    }

    fn assemble(
        &self,
        tb: &Testbed,
        _outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<ImpedanceProfile, PdnError> {
        run_impedance(tb.chip(), &self.cfg)
    }

    fn render(&self, artifact: &ImpedanceProfile) -> String {
        artifact.render()
    }
}

/// Computes the impedance profile of a chip.
///
/// # Errors
///
/// Returns [`PdnError`] on an invalid sweep or singular network.
pub fn run_impedance(chip: &Chip, cfg: &ImpedanceConfig) -> Result<ImpedanceProfile, PdnError> {
    let ac = AcAnalysis::new(chip.pdn().netlist());
    let freqs = log_space(cfg.f_lo_hz, cfg.f_hi_hz, cfg.points)?;
    let profile = ac.sweep(chip.pdn().core_node(cfg.core), &freqs)?;
    let signal = SignalSummary::of_profile(&profile)?;
    Ok(ImpedanceProfile {
        points: profile.iter().map(|p| (p.freq_hz, p.magnitude())).collect(),
        peaks: signal.peaks.clone(),
        signal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_shows_both_paper_bands() {
        let chip = Chip::paper_default();
        let prof = run_impedance(&chip, &ImpedanceConfig::reduced()).unwrap();
        let (f_die, z_die) = prof.die_band().expect("die band present");
        assert!((1e6..5e6).contains(&f_die), "die band at {f_die:.3e}");
        let (f_board, _) = prof.board_band().expect("board band present");
        assert!(f_board < 200e3, "board band at {f_board:.3e}");
        // Die band dominates after the deep-trench decap shift (paper §V-A).
        assert!(z_die > prof.board_band().unwrap().1);
    }

    #[test]
    fn render_contains_peak_annotations() {
        let chip = Chip::paper_default();
        let prof = run_impedance(&chip, &ImpedanceConfig::reduced()).unwrap();
        assert!(prof.render().contains("# peak:"));
    }

    #[test]
    fn signal_summary_agrees_with_legacy_peak_list() {
        let chip = Chip::paper_default();
        let prof = run_impedance(&chip, &ImpedanceConfig::reduced()).unwrap();
        // The summary's peak list is the rendered one, byte for byte.
        assert_eq!(prof.peaks, prof.signal.peaks);
        assert_eq!(prof.signal.peak_freq_hz, prof.peaks[0].0);
        // The die resonance is a real, reasonably sharp peak with
        // measurable band energy.
        let q = prof.signal.q_factor.expect("die resonance has a Q");
        assert!(q > 1.0 && q < 100.0, "q = {q}");
        assert!(prof.signal.die_band_energy > 0.0);
    }
}
