#![warn(missing_docs)]

//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Every binary accepts `--reduced` to run the fast configuration used in
//! CI, and `--json <path>` to additionally export the structured result.

use serde::Serialize;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone, Default)]
pub struct HarnessOpts {
    /// Run the reduced (fast) configuration.
    pub reduced: bool,
    /// Optional JSON export path.
    pub json: Option<PathBuf>,
}

impl HarnessOpts {
    /// Parses `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--reduced" => opts.reduced = true,
                "--json" => {
                    opts.json = args.next().map(PathBuf::from);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!("usage: <bin> [--reduced] [--json <path>]");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Prints the rendered result and optionally exports JSON.
    pub fn finish<T: Serialize>(&self, rendered: &str, value: &T) {
        print!("{rendered}");
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value).expect("results serialize");
            std::fs::write(path, json).expect("result file writable");
            eprintln!("# wrote {}", path.display());
        }
    }
}
