//! The routing-aware campaign client: consistent-hash dispatch, probe
//! driven circuit breakers, deterministic retry honoring `Retry-After`,
//! and failover (tail hedging) to the ring successor.
//!
//! A campaign is a list of wire [`JobSpec`]s. The client compiles each
//! spec against the *same testbed* the workers run, takes the resulting
//! job's `store_digest` — the exact key the workers use for their cache
//! and store — and routes it on the [`HashRing`]. Jobs sharing a
//! primary shard form one *wave*; waves dispatch sequentially in shard
//! order, so a campaign's request sequence is a pure function of its
//! specs and the observer's injected faults, never of wall-clock races.
//!
//! Mid-wave failures keep the partial results already streamed and
//! resend only the missing tail — to the respawned primary when the
//! observer recovered it, or hedged to the next shard in the key's
//! preference order when the primary's breaker is open. Either path is
//! duplicate-free: a resent job that was already solved anywhere in the
//! fleet resolves to a store or read-through hit, never a second solve.

use crate::breaker::CircuitBreaker;
use crate::ring::{fnv1a64, HashRing};
use std::io;
use std::time::{Duration, Instant};
use voltnoise_server::wire::{BatchRequest, JobSpec};
use voltnoise_server::HttpClient;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::SimJob;
use voltnoise_system::noise::NoiseRunConfig;
use voltnoise_system::testbed::Testbed;

/// Client knobs. Defaults suit an interactive fleet; the chaos tests
/// shrink the timeouts.
#[derive(Debug, Clone)]
pub struct FleetClientConfig {
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: usize,
    /// Consecutive probe failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// Open-state cooldown before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Health-probe timeout (kept short: a stalled shard must trip its
    /// breaker quickly, not hold the campaign).
    pub probe_timeout: Duration,
    /// Batch request timeout.
    pub request_timeout: Duration,
    /// Attempts per wave (counting 429 waits, hard retries and
    /// failovers) before the campaign errors out.
    pub max_attempts_per_wave: u32,
    /// Base/cap of the deterministic retry backoff, milliseconds.
    pub backoff_base_ms: u64,
    /// See [`FleetClientConfig::backoff_base_ms`].
    pub backoff_cap_ms: u64,
}

impl Default for FleetClientConfig {
    fn default() -> FleetClientConfig {
        FleetClientConfig {
            vnodes: 16,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(3),
            probe_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(300),
            max_attempts_per_wave: 8,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
        }
    }
}

/// What the client tells its observer as a campaign unfolds. The chaos
/// harness keys its fault plan off these.
#[derive(Debug)]
pub enum FleetEvent<'a> {
    /// A wave (all jobs whose primary is `shard`) is about to dispatch.
    WaveStart {
        /// Wave ordinal, 0-based, in dispatch order.
        wave: usize,
        /// Primary shard of every job in the wave.
        shard: usize,
        /// Jobs still missing in this wave.
        jobs: usize,
    },
    /// One streamed result line arrived from `shard`.
    Line {
        /// Shard the connection is attached to.
        shard: usize,
        /// Lines seen so far on this connection (1-based).
        lines_seen: usize,
        /// The raw line, newline stripped.
        line: &'a str,
    },
}

/// Observer verdict on each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Keep going.
    Continue,
    /// Abort the current connection (injected client-side reset).
    AbortConnection,
}

/// Campaign-lifecycle hooks. The chaos harness implements this; plain
/// runs use [`NoChaos`].
pub trait FleetObserver {
    /// Called on every [`FleetEvent`].
    fn on_event(&mut self, event: &FleetEvent<'_>) -> Directive {
        let _ = event;
        Directive::Continue
    }

    /// Called after a hard request failure on `shard`. A supervisor
    /// backed observer reaps/respawns the worker here and returns its
    /// new address; `None` leaves the address unchanged.
    fn recover(&mut self, shard: usize) -> Option<String> {
        let _ = shard;
        None
    }
}

/// The no-op observer.
pub struct NoChaos;

impl FleetObserver for NoChaos {}

/// What a campaign produced, plus the routing/robustness counters the
/// chaos proof asserts on.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Per job (campaign order): the outcome JSON exactly as the
    /// winning worker serialized it — the byte-identity payload.
    pub outcomes: Vec<Option<String>>,
    /// Per job: the fault line, for jobs that settled as faults.
    pub faults: Vec<Option<String>>,
    /// Jobs routed per shard (by the shard that finally answered).
    pub routed: Vec<u64>,
    /// Waves that hedged away from their primary shard.
    pub failovers: u64,
    /// `429` waits honored.
    pub retries_429: u64,
    /// Hard request failures retried (crashes, resets, timeouts).
    pub hard_retries: u64,
    /// Breaker trips observed across all shards during the campaign.
    pub breaker_opens: u64,
}

struct Endpoint {
    addr: String,
    probe: HttpClient,
    jobs: HttpClient,
    breaker: CircuitBreaker,
}

impl Endpoint {
    fn new(addr: String, cfg: &FleetClientConfig) -> Endpoint {
        Endpoint {
            probe: HttpClient::new(addr.clone(), cfg.probe_timeout),
            jobs: HttpClient::new(addr.clone(), cfg.request_timeout),
            breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown),
            addr,
        }
    }

    fn set_addr(&mut self, addr: String, cfg: &FleetClientConfig) {
        self.probe = HttpClient::new(addr.clone(), cfg.probe_timeout);
        self.jobs = HttpClient::new(addr.clone(), cfg.request_timeout);
        self.addr = addr;
    }
}

/// The fleet-facing campaign client.
pub struct FleetClient {
    cfg: FleetClientConfig,
    ring: HashRing,
    endpoints: Vec<Endpoint>,
    testbed: &'static Testbed,
}

impl FleetClient {
    /// A client over `addrs` (index = shard id), compiling job keys
    /// against `testbed` — which must match the workers' `--reduced`
    /// choice, or routing digests and worker digests disagree.
    pub fn new(
        addrs: Vec<String>,
        testbed: &'static Testbed,
        cfg: FleetClientConfig,
    ) -> FleetClient {
        let ring = HashRing::new(addrs.len(), cfg.vnodes);
        let endpoints = addrs
            .into_iter()
            .map(|addr| Endpoint::new(addr, &cfg))
            .collect();
        FleetClient {
            cfg,
            ring,
            endpoints,
            testbed,
        }
    }

    /// The routing ring (tests pick chaos targets from it).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Current address of a shard endpoint.
    pub fn addr(&self, shard: usize) -> &str {
        &self.endpoints[shard].addr
    }

    /// Points a shard endpoint at a new address (after a respawn),
    /// dropping its keep-alive connections.
    pub fn set_addr(&mut self, shard: usize, addr: String) {
        let cfg = self.cfg.clone();
        self.endpoints[shard].set_addr(addr, &cfg);
    }

    /// The store digest a worker will compute for `spec` — the routing
    /// key. Identical compilation to the server's `build_jobs`, minus
    /// the cancel token (which is deliberately outside the content key).
    pub fn digest_of(&self, spec: &JobSpec) -> String {
        let factory = SimJob::batch(self.testbed.chip());
        let sync = spec.sync.then(SyncSpec::paper_default);
        let loads = self
            .testbed
            .loads_of_mapping(&spec.mapping, spec.stim_freq_hz, sync);
        factory
            .job(
                loads,
                NoiseRunConfig {
                    window_s: spec.window_s,
                    record_traces: spec.record_traces,
                    seed: spec.seed,
                    max_steps: spec.max_steps,
                    ..NoiseRunConfig::default()
                },
            )
            .key()
            .store_digest()
    }

    /// Runs a campaign to completion under `observer`, returning the
    /// per-job outcomes and the robustness counters.
    ///
    /// # Errors
    ///
    /// Returns an error when a wave exhausts its attempt budget or no
    /// shard in a key's preference order is admissible.
    pub fn run_campaign(
        &mut self,
        specs: &[JobSpec],
        observer: &mut dyn FleetObserver,
    ) -> io::Result<CampaignReport> {
        let mut report = CampaignReport {
            outcomes: vec![None; specs.len()],
            faults: vec![None; specs.len()],
            routed: vec![0; self.endpoints.len()],
            ..CampaignReport::default()
        };
        let digests: Vec<String> = specs.iter().map(|s| self.digest_of(s)).collect();
        // Waves: campaign indices grouped by primary shard, dispatched
        // in ascending shard order — deterministic for a given spec
        // list and ring.
        let mut waves: Vec<(usize, Vec<usize>)> = Vec::new();
        for shard in 0..self.ring.shards() {
            let members: Vec<usize> = (0..specs.len())
                .filter(|&i| self.ring.shard_of(&digests[i]) == shard)
                .collect();
            if !members.is_empty() {
                waves.push((shard, members));
            }
        }
        for (wave_no, (primary, members)) in waves.iter().enumerate() {
            self.run_wave(
                wave_no,
                *primary,
                members,
                specs,
                &digests,
                observer,
                &mut report,
            )?;
        }
        report.breaker_opens = self.endpoints.iter().map(|e| e.breaker.opens()).sum();
        Ok(report)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_wave(
        &mut self,
        wave_no: usize,
        primary: usize,
        members: &[usize],
        specs: &[JobSpec],
        digests: &[String],
        observer: &mut dyn FleetObserver,
        report: &mut CampaignReport,
    ) -> io::Result<()> {
        let preference = self.ring.preference(&digests[members[0]]);
        let mut attempt: u32 = 0;
        loop {
            let pending: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&i| report.outcomes[i].is_none() && report.faults[i].is_none())
                .collect();
            if pending.is_empty() {
                return Ok(());
            }
            attempt += 1;
            if attempt > self.cfg.max_attempts_per_wave {
                return Err(io::Error::other(format!(
                    "wave {wave_no} (shard {primary}) exhausted {} attempts with {} jobs missing",
                    self.cfg.max_attempts_per_wave,
                    pending.len()
                )));
            }
            observer.on_event(&FleetEvent::WaveStart {
                wave: wave_no,
                shard: primary,
                jobs: pending.len(),
            });
            let Some(target) = self.select_shard(&preference) else {
                return Err(io::Error::other(format!(
                    "wave {wave_no}: no admissible shard in preference {preference:?}"
                )));
            };
            if target != primary {
                report.failovers += 1;
            }
            let batch = BatchRequest {
                jobs: pending.iter().map(|&i| specs[i].clone()).collect(),
                deadline_ms: None,
            };
            let body = batch.to_json();
            let seed = fnv1a64(body.as_bytes());
            // Stream results as they arrive; partial capture is what a
            // mid-batch crash leaves us to resume from.
            let mut lines_seen = 0usize;
            let mut delivered: Vec<(usize, Option<String>, Option<String>)> = Vec::new();
            let endpoint = &mut self.endpoints[target];
            let result =
                endpoint
                    .jobs
                    .request_streaming("POST", "/jobs", Some(&body), &mut |line| {
                        lines_seen += 1;
                        if let Some((local, payload)) = extract_outcome(line) {
                            if let Some(&global) = pending.get(local) {
                                delivered.push((global, Some(payload.to_string()), None));
                            }
                        } else if let Some(local) = fault_index(line) {
                            if let Some(&global) = pending.get(local) {
                                delivered.push((global, None, Some(line.to_string())));
                            }
                        }
                        observer.on_event(&FleetEvent::Line {
                            shard: target,
                            lines_seen,
                            line,
                        }) == Directive::Continue
                    });
            for (global, outcome, fault) in delivered {
                if report.outcomes[global].is_none() && report.faults[global].is_none() {
                    if outcome.is_some() {
                        report.routed[target] += 1;
                    }
                    report.outcomes[global] = outcome;
                    report.faults[global] = fault;
                }
            }
            match result {
                Ok(response) if response.status == 200 => {
                    self.endpoints[target].breaker.record_success();
                    // Anything still missing (peer dropped us mid-write
                    // without an error?) loops for another attempt.
                }
                Ok(response) if response.status == 429 => {
                    // Overloaded, not unhealthy: honor Retry-After as a
                    // floor under the seeded backoff and try again.
                    self.endpoints[target].breaker.record_success();
                    report.retries_429 += 1;
                    let hint_ms = response
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map_or(0, |secs| secs.saturating_mul(1000));
                    let policy = voltnoise_system::fault::RetryPolicy::attempts(
                        self.cfg.max_attempts_per_wave,
                    )
                    .with_backoff(self.cfg.backoff_base_ms, self.cfg.backoff_cap_ms);
                    std::thread::sleep(Duration::from_millis(
                        policy.delay_with_hint(seed, attempt, hint_ms),
                    ));
                }
                Ok(_draining_or_shed) => {
                    // 503: the shard is draining or shedding — count it
                    // against its breaker and reselect.
                    self.endpoints[target]
                        .breaker
                        .record_failure(Instant::now());
                }
                Err(_crash_or_reset) => {
                    report.hard_retries += 1;
                    self.endpoints[target]
                        .breaker
                        .record_failure(Instant::now());
                    self.endpoints[target].jobs.reset();
                    if let Some(addr) = observer.recover(target) {
                        self.set_addr(target, addr);
                    }
                }
            }
        }
    }

    /// First shard in `preference` whose breaker admits a request and
    /// whose `/readyz` probe answers 200. A failing probe feeds the
    /// breaker, so a stalled or draining shard is walked past after
    /// `breaker_threshold` consecutive probe failures.
    fn select_shard(&mut self, preference: &[usize]) -> Option<usize> {
        for &candidate in preference {
            let endpoint = &mut self.endpoints[candidate];
            while endpoint.breaker.allow(Instant::now()) {
                let healthy = matches!(
                    endpoint.probe.request("GET", "/readyz", None),
                    Ok(ref response) if response.status == 200
                );
                if healthy {
                    endpoint.breaker.record_success();
                    return Some(candidate);
                }
                endpoint.probe.reset();
                endpoint.breaker.record_failure(Instant::now());
            }
        }
        None
    }
}

/// Extracts `(index, outcome_json)` from an ok result line — textual
/// slicing, never a parse/re-serialize round trip, so the returned
/// bytes are exactly what the worker's engine serialized (float
/// formatting included). The byte-identity proof depends on this.
pub fn extract_outcome(line: &str) -> Option<(usize, &str)> {
    let rest = line.strip_prefix("{\"index\":")?;
    let cut = rest.find(',')?;
    let index: usize = rest[..cut].parse().ok()?;
    let rest = rest[cut..].strip_prefix(",\"status\":\"ok\",\"outcome\":")?;
    let payload = rest.strip_suffix('}')?;
    Some((index, payload))
}

/// The index of a fault result line, if `line` is one.
pub fn fault_index(line: &str) -> Option<usize> {
    let rest = line.strip_prefix("{\"index\":")?;
    let cut = rest.find(',')?;
    let index: usize = rest[..cut].parse().ok()?;
    rest[cut..]
        .starts_with(",\"status\":\"fault\"")
        .then_some(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_extraction_is_textual_and_exact() {
        let line = r#"{"index":3,"status":"ok","outcome":{"peak_droop_v":0.0625,"trace":null}}"#;
        let (index, payload) = extract_outcome(line).unwrap();
        assert_eq!(index, 3);
        assert_eq!(payload, r#"{"peak_droop_v":0.0625,"trace":null}"#);
        assert!(extract_outcome(r#"{"done":true,"jobs":4,"faults":0}"#).is_none());
        assert!(extract_outcome(
            r#"{"index":1,"status":"fault","kind":"deadline","attempts":1,"detail":"x"}"#
        )
        .is_none());
    }

    #[test]
    fn fault_lines_are_recognized() {
        let line = r#"{"index":2,"status":"fault","kind":"budget","attempts":1,"detail":"x"}"#;
        assert_eq!(fault_index(line), Some(2));
        assert_eq!(
            fault_index(r#"{"index":2,"status":"ok","outcome":{}}"#),
            None
        );
        assert_eq!(fault_index(r#"{"done":true,"jobs":1,"faults":0}"#), None);
    }
}
