#![warn(missing_docs)]

//! # voltnoise-server
//!
//! A hardened campaign daemon over the workspace's noise engine: a
//! std-only HTTP/1.1 service (plain TCP, a bounded thread pool, no
//! async runtime and no external dependencies) that accepts JSON batches
//! of simulation jobs and streams per-job results back as they settle.
//!
//! The robustness envelope — the reason this crate exists — is spelled
//! out in `DESIGN.md` ("Service model"):
//!
//! - **Admission control**: each batch carries a step-budget estimate;
//!   when the estimated in-flight step load would exceed a configurable
//!   ceiling the batch is rejected with `429` and a `Retry-After`
//!   hint instead of being queued into an unbounded backlog.
//! - **Backpressure**: the accept queue is bounded; connections beyond
//!   the bound are shed with `503` (and counted in
//!   [`voltnoise_system::engine::EngineStats::shed_total`]) rather than
//!   accumulated.
//! - **Deadlines**: every batch gets a wall-clock deadline wired into
//!   the engine's cooperative [`voltnoise_pdn::CancelToken`]; an
//!   expired batch is reaped mid-solve and reports a typed
//!   deadline fault, never a hung connection.
//! - **Dedup**: identical jobs from concurrent clients coalesce onto
//!   one solve via the engine's singleflight layer.
//! - **Graceful drain**: `SIGTERM`/`SIGINT` stop the accept loop,
//!   cancel in-flight batches through their tokens, flush the JSONL
//!   result store and exit 0. A restarted server resumes from the
//!   store with zero duplicate solves.
//!
//! Malformed input is a first-class citizen: the job-decode boundary
//! ([`wire`]) rejects truncated bodies, non-finite floats, duplicate
//! keys and unknown fields with a machine-readable `400` body — it
//! never panics and never silently drops a job.

pub mod admission;
pub mod client;
pub mod deadline;
pub mod http;
pub mod server;
pub mod signals;
pub mod wire;

pub use admission::{AdmissionControl, Permit};
pub use client::{http_request, HttpClient, Response};
pub use deadline::DeadlineReaper;
pub use server::{Server, ServerConfig};
pub use wire::{parse_signal_stats, BatchRequest, JobSpec, SignalStats, WireError};
