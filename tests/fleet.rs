//! The fleet chaos proof: a campaign run through a supervised
//! multi-process shard pool under a deterministic fault plan — SIGKILL
//! mid-batch, a stalled shard tripping its circuit breaker — must
//! produce results byte-identical to a direct single-engine run, with
//! zero duplicate solves across the union of shard stores.
//!
//! Workers run `--reduced` so the in-process golden baseline built with
//! [`Testbed::fast`] resolves to byte-identical content keys.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use voltnoise_fleet::chaos::{campaign_specs, ChaosDriver, ChaosPlan, FaultAction};
use voltnoise_fleet::client::{FleetClient, FleetClientConfig};
use voltnoise_fleet::supervisor::{store_files, FleetConfig, Supervisor};
use voltnoise_server::http_request;
use voltnoise_server::wire::JobSpec;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::NoiseRunConfig;
use voltnoise_system::testbed::Testbed;

const SHARDS: usize = 3;
const JOBS: usize = 9;
const CAMPAIGN_SEED: u64 = 7;

/// The worker binary, built alongside this test by a workspace build.
fn server_bin() -> PathBuf {
    if let Ok(path) = std::env::var("VOLTNOISE_SERVER_BIN") {
        return PathBuf::from(path);
    }
    let fleet = PathBuf::from(env!("CARGO_BIN_EXE_voltnoise-fleet"));
    let candidate = fleet
        .parent()
        .expect("bin path has a parent")
        .join("voltnoise-server");
    assert!(
        candidate.is_file(),
        "worker binary not found at {} — build it with `cargo build -p voltnoise-server` \
         or set VOLTNOISE_SERVER_BIN",
        candidate.display()
    );
    candidate
}

fn fresh_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "voltnoise-fleet-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The in-process twin of the workers' spec compilation (same path the
/// routing client uses for digests).
fn compile(tb: &Testbed, spec: &JobSpec) -> SimJob {
    let sync = spec.sync.then(SyncSpec::paper_default);
    let loads = tb.loads_of_mapping(&spec.mapping, spec.stim_freq_hz, sync);
    SimJob::new(
        Arc::new(tb.chip().clone()),
        loads,
        NoiseRunConfig {
            window_s: spec.window_s,
            record_traces: spec.record_traces,
            seed: spec.seed,
            max_steps: spec.max_steps,
            ..NoiseRunConfig::default()
        },
    )
}

/// Extracts an integer stats field from the `/stats` JSON.
fn stat_field(stats: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = stats
        .find(&needle)
        .unwrap_or_else(|| panic!("no {name} in {stats}"));
    stats[at + needle.len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {name} in {stats}"))
}

/// Store-record keys across the union of shard JSONL files, in file
/// order — read *before* drain-time compaction so duplicate appends
/// cannot be laundered away.
fn store_keys(store_dir: &Path) -> Vec<String> {
    let mut keys = Vec::new();
    for path in store_files(store_dir, SHARDS) {
        let data = std::fs::read_to_string(&path).expect("read shard store");
        for line in data.lines() {
            if let Some(rest) = line.strip_prefix("{\"key\":\"") {
                let key = rest.split('"').next().unwrap_or("").to_string();
                keys.push(key);
            }
        }
    }
    keys
}

#[test]
fn chaotic_campaign_is_byte_identical_with_zero_duplicate_solves() {
    let store_dir = fresh_store_dir("chaos");
    let mut supervisor = Supervisor::spawn(FleetConfig {
        shards: SHARDS,
        server_bin: server_bin(),
        store_dir: store_dir.clone(),
        reduced: true,
        spawn_timeout: Duration::from_secs(60),
        ..FleetConfig::default()
    })
    .expect("spawn fleet");

    let specs = campaign_specs(JOBS, CAMPAIGN_SEED);
    let tb = Testbed::fast();
    let mut client = FleetClient::new(
        supervisor.addrs(),
        tb,
        FleetClientConfig {
            probe_timeout: Duration::from_millis(300),
            breaker_threshold: 2,
            // Longer than the test: a tripped shard stays out, so the
            // stalled wave must hedge instead of waiting.
            breaker_cooldown: Duration::from_secs(120),
            ..FleetClientConfig::default()
        },
    );

    // Pin the fault plan to real campaign coordinates: kill the first
    // shard that owns >= 2 jobs (so the SIGKILL lands mid-batch with
    // work still missing) and stall a later-wave shard (so the kill
    // fires during the killed shard's own wave, and the stall forces a
    // breaker-driven failover).
    let mut per_shard = vec![0usize; SHARDS];
    for spec in &specs {
        per_shard[client.ring().shard_of(&client.digest_of(spec))] += 1;
    }
    let kill_shard = (0..SHARDS)
        .find(|&s| per_shard[s] >= 2 && (s + 1..SHARDS).any(|t| per_shard[t] >= 1))
        .unwrap_or_else(|| panic!("no killable shard; distribution {per_shard:?}"));
    let stall_shard = (kill_shard + 1..SHARDS)
        .find(|&s| per_shard[s] >= 1)
        .expect("a later shard with jobs");
    let wave_of = |shard: usize| (0..shard).filter(|&s| per_shard[s] > 0).count();
    let mut actions = vec![
        FaultAction::KillAfterLines {
            shard: kill_shard,
            lines: 1,
        },
        FaultAction::StallBeforeWave {
            wave: wave_of(stall_shard),
            shard: stall_shard,
        },
    ];
    // An injected mid-stream reset on whatever third shard has work.
    if let Some(reset_shard) =
        (0..SHARDS).find(|&s| s != kill_shard && s != stall_shard && per_shard[s] >= 1)
    {
        actions.push(FaultAction::ResetAfterLines {
            shard: reset_shard,
            lines: 1,
        });
    }
    let plan = ChaosPlan::new(actions);

    let mut driver = ChaosDriver::new(&mut supervisor, plan);
    let campaign = client.run_campaign(&specs, &mut driver);
    let chaos = driver.finish();
    let report = campaign.unwrap_or_else(|e| panic!("campaign failed: {e}; chaos {chaos:?}"));

    // The plan actually fired: a kill mid-batch, a stall, a respawn.
    assert!(chaos.kills >= 1, "no SIGKILL injected: {chaos:?}");
    assert!(chaos.stalls >= 1, "no stall injected: {chaos:?}");
    assert!(chaos.respawns >= 1, "no worker respawned: {chaos:?}");
    // And the client survived it the way the design claims: a hard
    // retry for the crash, an open breaker + failover for the stall.
    assert!(report.hard_retries >= 1, "no hard retry: {report:?}");
    assert!(
        report.breaker_opens >= 1,
        "stall never tripped a breaker: {report:?}"
    );
    assert!(
        report.failovers >= 1,
        "stalled wave never hedged: {report:?}"
    );
    assert_eq!(
        supervisor.restart_gen(kill_shard),
        1,
        "killed shard not respawned exactly once"
    );

    // Satellite: no leaked in-flight estimate after the respawn — the
    // fresh worker's admission gate reports zero admitted steps, under
    // its bumped restart generation and unchanged shard id.
    let stats = http_request(
        supervisor.addr(kill_shard),
        "GET",
        "/stats",
        None,
        Duration::from_secs(10),
    )
    .expect("stats from respawned worker")
    .body;
    assert_eq!(stat_field(&stats, "admitted_steps"), 0, "{stats}");
    assert_eq!(stat_field(&stats, "restart_gen"), 1, "{stats}");
    assert_eq!(stat_field(&stats, "shard_id"), kill_shard as u64, "{stats}");

    // Zero duplicate solves: across the union of shard stores (read
    // pre-compaction), every campaign digest appears exactly once —
    // crashes, retries, and failovers never re-solved anything.
    let digests: Vec<String> = specs.iter().map(|s| client.digest_of(s)).collect();
    let keys = store_keys(&store_dir);
    for digest in &digests {
        let hits = keys.iter().filter(|k| *k == digest).count();
        assert_eq!(
            hits, 1,
            "digest {digest} appears {hits} times in the store union"
        );
    }
    assert_eq!(
        keys.len(),
        digests.len(),
        "store union holds records outside the campaign: {keys:?}"
    );

    // Byte identity: every outcome matches a direct single-engine run.
    let jobs: Vec<SimJob> = specs.iter().map(|s| compile(tb, s)).collect();
    let direct = Engine::with_workers(2).run_jobs(&jobs).expect("direct run");
    for (i, outcome) in direct.iter().enumerate() {
        let direct_json = serde_json::to_string(&**outcome).expect("serialize outcome");
        assert_eq!(
            report.outcomes[i].as_deref(),
            Some(direct_json.as_str()),
            "job {i} differs from the direct engine run"
        );
    }

    // Graceful fleet drain: every worker exits cleanly (compacting its
    // store on the way out) and the stores remain valid afterwards.
    supervisor
        .drain(Duration::from_secs(60))
        .expect("fleet drain");
    let compacted = store_keys(&store_dir);
    assert_eq!(
        compacted.len(),
        digests.len(),
        "drain-time compaction changed the record count"
    );
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn clean_fleet_campaign_routes_across_shards_and_drains() {
    let store_dir = fresh_store_dir("clean");
    let supervisor = Supervisor::spawn(FleetConfig {
        shards: SHARDS,
        server_bin: server_bin(),
        store_dir: store_dir.clone(),
        reduced: true,
        spawn_timeout: Duration::from_secs(60),
        ..FleetConfig::default()
    })
    .expect("spawn fleet");

    let specs = campaign_specs(6, 21);
    let tb = Testbed::fast();
    let mut client = FleetClient::new(supervisor.addrs(), tb, FleetClientConfig::default());
    let report = client
        .run_campaign(&specs, &mut voltnoise_fleet::client::NoChaos)
        .expect("clean campaign");
    assert!(report.outcomes.iter().all(Option::is_some));
    assert_eq!(report.failovers, 0, "{report:?}");
    assert_eq!(report.hard_retries, 0, "{report:?}");
    assert_eq!(report.breaker_opens, 0, "{report:?}");
    // Work actually spread: more than one shard answered.
    let active = report.routed.iter().filter(|&&n| n > 0).count();
    assert!(active >= 2, "campaign never spread: {:?}", report.routed);
    supervisor
        .drain(Duration::from_secs(60))
        .expect("fleet drain");
    let _ = std::fs::remove_dir_all(&store_dir);
}
