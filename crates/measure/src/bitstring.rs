//! Skitter bit strings: the raw 129-latch edge-capture view.
//!
//! The hardware skitter "sampling latches take a snapshot of the state of
//! the inverter chain every cycle, forming a 129 bit string of 0's with
//! 1's where the edges are detected" (paper §III, refs \[13\]\[42\]). This
//! module models that raw view: given the instantaneous supply voltage,
//! successive clock edges sit at depths proportional to the inverter
//! speed, and sticky accumulation ORs the captured strings so the worst
//! case timing uncertainty is visible as a widened band of 1's.

use crate::skitter::Skitter;
use serde::{Deserialize, Serialize};

/// Number of latches in the modeled delay line.
pub const TAPS: usize = 129;

/// One captured (or sticky-accumulated) 129-bit latch snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BitString {
    words: [u64; 3],
}

impl BitString {
    /// The empty string (no edges captured).
    pub fn new() -> Self {
        BitString::default()
    }

    /// Sets latch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= TAPS`.
    pub fn set(&mut self, i: usize) {
        assert!(i < TAPS, "latch {i} out of range");
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// True when latch `i` captured an edge.
    ///
    /// # Panics
    ///
    /// Panics if `i >= TAPS`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < TAPS, "latch {i} out of range");
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// ORs another snapshot into this one (sticky mode).
    pub fn merge(&mut self, other: &BitString) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of latches that captured edges.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Lowest and highest set latch, or `None` when empty.
    pub fn span(&self) -> Option<(usize, usize)> {
        let mut lo = None;
        let mut hi = None;
        for i in 0..TAPS {
            if self.get(i) {
                if lo.is_none() {
                    lo = Some(i);
                }
                hi = Some(i);
            }
        }
        lo.zip(hi)
    }

    /// Renders the string as `0`s and `1`s, latch 0 first.
    pub fn render(&self) -> String {
        (0..TAPS)
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect()
    }
}

impl std::fmt::Display for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Captures the latch snapshot at supply voltage `v`: successive clock
/// edges (alternating rising/falling every half clock period) sit at
/// multiples of the first-edge depth along the line.
pub fn capture(skitter: &Skitter, v: f64) -> BitString {
    let mut bits = BitString::new();
    // Depth of the most recent half-period edge; older edges sit deeper
    // at integer multiples until they fall off the line.
    let first = skitter.edge_position(v) / 2.0;
    if first < 0.5 {
        return bits; // line starved: supply below threshold
    }
    let mut depth = first;
    while depth < TAPS as f64 {
        let idx = depth.round() as usize;
        if idx < TAPS {
            bits.set(idx);
        }
        depth += first;
    }
    bits
}

/// Sticky-mode accumulation of snapshots over a voltage sample stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StickyBitmap {
    acc: BitString,
    samples: usize,
}

impl StickyBitmap {
    /// Creates an empty sticky accumulator.
    pub fn new() -> Self {
        StickyBitmap::default()
    }

    /// Accumulates one voltage sample.
    pub fn observe(&mut self, skitter: &Skitter, v: f64) {
        self.acc.merge(&capture(skitter, v));
        self.samples += 1;
    }

    /// The accumulated string.
    pub fn bits(&self) -> &BitString {
        &self.acc
    }

    /// Samples observed.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Width of the first edge band in latches: the contiguous run of 1's
    /// containing the shallowest captured edge. On a quiet rail this is
    /// 1; supply noise widens it.
    pub fn first_band_width(&self) -> u32 {
        let Some((lo, _)) = self.acc.span() else {
            return 0;
        };
        let mut w = 0;
        let mut i = lo;
        while i < TAPS && self.acc.get(i) {
            w += 1;
            i += 1;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skitter::SkitterConfig;

    fn skitter() -> Skitter {
        Skitter::new(SkitterConfig::default())
    }

    #[test]
    fn bitstring_set_get_and_span() {
        let mut b = BitString::new();
        b.set(0);
        b.set(128);
        assert!(b.get(0) && b.get(128) && !b.get(64));
        assert_eq!(b.span(), Some((0, 128)));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn capture_places_periodic_edges() {
        let s = skitter();
        let bits = capture(&s, 1.05);
        // First edge at ~45 taps (half the nominal 90), then ~90, ~135>129.
        assert!(bits.get(45), "{}", bits.render());
        assert!(bits.get(90));
        assert_eq!(bits.count(), 2);
    }

    #[test]
    fn lower_voltage_pulls_edges_shallower() {
        let s = skitter();
        let nominal = capture(&s, 1.05).span().unwrap().0;
        let droopy = capture(&s, 0.98).span().unwrap().0;
        assert!(droopy < nominal, "droop {droopy} vs nominal {nominal}");
    }

    #[test]
    fn starved_line_captures_nothing() {
        let s = skitter();
        assert_eq!(capture(&s, 0.3).count(), 0);
    }

    #[test]
    fn sticky_band_widens_with_noise() {
        let s = skitter();
        let mut quiet = StickyBitmap::new();
        let mut noisy = StickyBitmap::new();
        for k in 0..200 {
            let phase = (k as f64) * 0.13;
            quiet.observe(&s, 1.05 + 0.001 * phase.sin());
            noisy.observe(&s, 1.05 + 0.045 * phase.sin());
        }
        assert!(quiet.first_band_width() <= 3);
        assert!(
            noisy.first_band_width() > quiet.first_band_width() + 3,
            "noisy {} vs quiet {}",
            noisy.first_band_width(),
            quiet.first_band_width()
        );
        assert_eq!(noisy.samples(), 200);
    }

    #[test]
    fn render_is_129_chars() {
        let s = skitter();
        let bits = capture(&s, 1.05);
        assert_eq!(bits.render().len(), TAPS);
        assert_eq!(bits.to_string(), bits.render());
    }

    #[test]
    fn merge_is_union() {
        let mut a = BitString::new();
        a.set(3);
        let mut b = BitString::new();
        b.set(7);
        a.merge(&b);
        assert!(a.get(3) && a.get(7));
        assert_eq!(a.count(), 2);
    }
}
