//! Regenerates the paper's Fig. 5 search funnel: candidate selection,
//! 531 441 combinations, microarchitectural and IPC filters, and the
//! winning maximum-power sequence.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig5");
}
