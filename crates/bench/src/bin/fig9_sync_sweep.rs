//! Regenerates paper Fig. 9: per-core noise vs stimulus frequency with
//! TOD synchronization every 4 ms.

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { SweepConfig::reduced() } else { SweepConfig::paper() };
    let res = run_sweep(tb, &cfg, true).expect("sweep runs");
    opts.finish(&res.render(), &res);
}
