//! Noise sensitivity to stimulus frequency (paper Figs. 7a and 9).
//!
//! Runs one maximum dI/dt stressmark per core over a spectrum of stimulus
//! frequencies — unsynchronized for Fig. 7a, TOD-synchronized for
//! Fig. 9 — and reports per-core %p2p skitter readings.

use crate::experiment::Experiment;
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::ac::log_space;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::{CoreLoad, NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Stimulus frequencies to explore.
    pub freqs_hz: Vec<f64>,
    /// Simulation window per point (`None` = auto).
    pub window_s: Option<f64>,
    /// Free-run phase seeds to average over (unsynchronized runs sample
    /// several relative alignments, like repeated runs on hardware).
    pub seeds: Vec<u64>,
}

impl SweepConfig {
    /// The paper-scale sweep: ~1.5 kHz to 15 MHz.
    pub fn paper() -> Self {
        SweepConfig {
            freqs_hz: log_space(1.5e3, 15e6, 28).expect("paper sweep bounds are valid"),
            window_s: None,
            seeds: vec![1, 2, 3],
        }
    }

    /// A reduced sweep for tests.
    pub fn reduced() -> Self {
        SweepConfig {
            freqs_hz: vec![25e3, 45e3, 300e3, 2.5e6, 10e6],
            window_s: Some(60e-6),
            seeds: vec![1],
        }
    }
}

/// One sweep point: per-core noise at one stimulus frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Stimulus frequency in hertz.
    pub freq_hz: f64,
    /// Seed-averaged per-core %p2p readings.
    pub per_core_pct: [f64; NUM_CORES],
}

impl SweepPoint {
    /// Highest per-core reading at this frequency.
    pub fn max_pct(&self) -> f64 {
        self.per_core_pct
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Result of a frequency sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Whether the stressmarks were TOD-synchronized.
    pub synced: bool,
    /// One point per frequency, in input order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The frequency with the highest worst-core reading and that
    /// reading, or `None` for an empty sweep.
    pub fn peak(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.freq_hz, p.max_pct()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Reading at the point closest to `freq_hz`.
    pub fn at(&self, freq_hz: f64) -> Option<&SweepPoint> {
        self.points.iter().min_by(|a, b| {
            (a.freq_hz - freq_hz)
                .abs()
                .total_cmp(&(b.freq_hz - freq_hz).abs())
        })
    }

    /// Renders the paper-style series: frequency, per-core %p2p.
    pub fn render(&self) -> String {
        let mut t = Table::new(if self.synced {
            "Fig. 9: per-core %p2p vs stimulus frequency (synchronized every 4 ms)"
        } else {
            "Fig. 7a: per-core %p2p vs stimulus frequency (no synchronization)"
        });
        t.columns(
            std::iter::once("freq_hz".to_string())
                .chain((0..NUM_CORES).map(|i| format!("core{i}_pct_p2p"))),
        );
        for p in &self.points {
            t.row(
                std::iter::once(format!("{:.4e}", p.freq_hz))
                    .chain(p.per_core_pct.iter().map(|v| format!("{v:.1}"))),
            );
        }
        if let Some((f, m)) = self.peak() {
            t.note(&format!("peak: {m:.1} %p2p at {f:.3e} Hz"));
        }
        t.finish()
    }
}

/// The frequency-sweep experiment: Fig. 7a (`synced = false`) or Fig. 9
/// (`synced = true`).
#[derive(Debug, Clone)]
pub struct SweepExperiment {
    /// The sweep grid.
    pub cfg: SweepConfig,
    /// TOD synchronization on/off.
    pub synced: bool,
}

impl Experiment for SweepExperiment {
    type Artifact = SweepResult;

    fn id(&self) -> &'static str {
        if self.synced {
            "fig9"
        } else {
            "fig7a"
        }
    }

    fn title(&self) -> &'static str {
        if self.synced {
            "Fig. 9: noise vs stimulus frequency, TOD-synchronized"
        } else {
            "Fig. 7a: noise vs stimulus frequency, unsynchronized"
        }
    }

    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let batch = SimJob::batch(tb.chip());
        let mut jobs = Vec::with_capacity(self.cfg.freqs_hz.len() * self.cfg.seeds.len().max(1));
        for &freq in &self.cfg.freqs_hz {
            let sync_spec = self.synced.then(SyncSpec::paper_default);
            let sm = tb.max_stressmark(freq, sync_spec);
            let loads: [CoreLoad; NUM_CORES] =
                std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
            for &seed in &self.cfg.seeds {
                jobs.push(batch.job(
                    loads.clone(),
                    NoiseRunConfig {
                        window_s: self.cfg.window_s,
                        record_traces: false,
                        seed,
                        ..NoiseRunConfig::default()
                    },
                ));
            }
        }
        Ok(jobs)
    }

    fn assemble(
        &self,
        _tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<SweepResult, PdnError> {
        let seeds = self.cfg.seeds.len().max(1);
        let points = self
            .cfg
            .freqs_hz
            .iter()
            .zip(outcomes.chunks(seeds))
            .map(|(&freq_hz, chunk)| {
                let mut acc = [0.0f64; NUM_CORES];
                for out in chunk {
                    for (a, v) in acc.iter_mut().zip(out.pct_p2p.iter().copied()) {
                        *a += v;
                    }
                }
                SweepPoint {
                    freq_hz,
                    per_core_pct: acc.map(|v| v / seeds as f64),
                }
            })
            .collect();
        Ok(SweepResult {
            synced: self.synced,
            points,
        })
    }

    fn render(&self, artifact: &SweepResult) -> String {
        artifact.render()
    }
}

/// Runs the sweep on the shared engine. `sync` selects Fig. 9 (true) or
/// Fig. 7a (false).
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_sweep(tb: &Testbed, cfg: &SweepConfig, sync: bool) -> Result<SweepResult, PdnError> {
    SweepExperiment {
        cfg: cfg.clone(),
        synced: sync,
    }
    .run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsync_sweep_peaks_in_die_band() {
        let tb = Testbed::fast();
        let res = run_sweep(tb, &SweepConfig::reduced(), false).unwrap();
        let (f_peak, m_peak) = res.peak().expect("non-empty sweep");
        assert!(
            (1e6..5e6).contains(&f_peak),
            "peak at {f_peak:.3e} ({m_peak:.1}%)"
        );
        // Floor is clearly below the peak.
        let floor = res.at(10e6).unwrap().max_pct();
        assert!(m_peak > floor + 5.0, "peak {m_peak} floor {floor}");
    }

    #[test]
    fn sync_sweep_exceeds_unsync_everywhere() {
        let tb = Testbed::fast();
        let cfg = SweepConfig::reduced();
        let unsync = run_sweep(tb, &cfg, false).unwrap();
        let synced = run_sweep(tb, &cfg, true).unwrap();
        for (u, s) in unsync.points.iter().zip(&synced.points) {
            assert!(
                s.max_pct() > u.max_pct() + 8.0,
                "at {:.3e}: sync {} vs unsync {}",
                u.freq_hz,
                s.max_pct(),
                u.max_pct()
            );
        }
    }

    #[test]
    fn sync_off_resonance_beats_unsync_resonance() {
        // The paper's key claim: synchronization matters more than
        // resonance (§V-B).
        let tb = Testbed::fast();
        let cfg = SweepConfig::reduced();
        let unsync = run_sweep(tb, &cfg, false).unwrap();
        let synced = run_sweep(tb, &cfg, true).unwrap();
        let unsync_peak = unsync.peak().expect("non-empty sweep").1;
        let sync_mid = synced.at(300e3).unwrap().max_pct();
        assert!(
            sync_mid > unsync_peak,
            "sync mid-band {sync_mid} vs unsync peak {unsync_peak}"
        );
    }

    #[test]
    fn empty_sweep_has_no_peak() {
        let res = SweepResult {
            synced: false,
            points: Vec::new(),
        };
        assert!(res.peak().is_none());
        assert!(res.at(1e6).is_none());
    }

    #[test]
    fn render_has_header_and_rows() {
        let tb = Testbed::fast();
        let mut cfg = SweepConfig::reduced();
        cfg.freqs_hz.truncate(2);
        let res = run_sweep(tb, &cfg, false).unwrap();
        let text = res.render();
        assert!(text.contains("Fig. 7a"));
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 3);
    }
}
