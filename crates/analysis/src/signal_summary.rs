//! Principled spectral summaries of resonance structure.
//!
//! [`SignalSummary`] is the single path the resonance experiments use
//! to characterize an impedance sweep: the peak list (delegating to
//! [`find_peaks`], whose plateau tie-break is the documented
//! contract, so figure bytes are unchanged), plus the quantities the
//! ad-hoc path never computed — half-power quality factor of the
//! strongest resonance and `|Z|²` band energy — backed by the
//! [`voltnoise_pdn::signal`] toolkit for anything trace-shaped.

use serde::{Deserialize, Serialize};
use voltnoise_pdn::ac::{find_peaks, ImpedancePoint};
use voltnoise_pdn::PdnError;

/// Frequency bound separating board/package resonances from die-level
/// ones — the same 500 kHz boundary the Fig. 7b bands use.
pub const DIE_BAND_MIN_HZ: f64 = 5e5;

/// Spectral summary of one swept impedance profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalSummary {
    /// Resonance peaks `(freq_hz, |Z| ohms)`, strongest first —
    /// byte-for-byte the [`find_peaks`] list.
    pub peaks: Vec<(f64, f64)>,
    /// Frequency of the strongest peak, Hz (`0.0` when there is none).
    pub peak_freq_hz: f64,
    /// Half-power quality factor of the strongest peak: peak frequency
    /// over the width of the interval where `|Z|` stays above
    /// `|Z|_peak / sqrt(2)`. `None` when the profile has no peak or
    /// never falls to half power around it.
    pub q_factor: Option<f64>,
    /// `|Z|²` energy integrated (trapezoidal) over the die band
    /// (≥ [`DIE_BAND_MIN_HZ`]), in Ω²·Hz.
    pub die_band_energy: f64,
}

impl SignalSummary {
    /// Summarizes a swept impedance profile.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::EmptyProfile`] for an empty profile, as
    /// [`find_peaks`] does.
    pub fn of_profile(profile: &[ImpedancePoint]) -> Result<SignalSummary, PdnError> {
        let peaks = find_peaks(profile)?;
        let peak_freq_hz = peaks.first().map(|p| p.0).unwrap_or(0.0);
        let q_factor = peaks.first().and_then(|&(f, m)| q_of(profile, f, m));
        let die_band_energy = band_energy(profile, DIE_BAND_MIN_HZ, f64::INFINITY);
        Ok(SignalSummary {
            peaks,
            peak_freq_hz,
            q_factor,
            die_band_energy,
        })
    }

    /// The strongest peak at or above `f_min_hz`, if any (peaks are
    /// already sorted strongest-first).
    pub fn strongest_at_or_above(&self, f_min_hz: f64) -> Option<(f64, f64)> {
        self.peaks.iter().copied().find(|(f, _)| *f >= f_min_hz)
    }
}

/// Trapezoidal `|Z|²` energy over `[f_lo, f_hi]`.
fn band_energy(profile: &[ImpedancePoint], f_lo: f64, f_hi: f64) -> f64 {
    profile
        .windows(2)
        .filter(|w| w[0].freq_hz >= f_lo && w[1].freq_hz <= f_hi)
        .map(|w| {
            let (a, b) = (w[0].magnitude(), w[1].magnitude());
            0.5 * (a * a + b * b) * (w[1].freq_hz - w[0].freq_hz)
        })
        .sum()
}

/// Half-power Q of the peak at `(f_peak, m_peak)` within a swept
/// profile: walk outward from the peak sample until `|Z|` crosses
/// `m_peak / sqrt(2)`, interpolating the crossing frequency linearly.
fn q_of(profile: &[ImpedancePoint], f_peak: f64, m_peak: f64) -> Option<f64> {
    let k_peak = profile.iter().position(|p| p.freq_hz == f_peak)?;
    let half = m_peak / std::f64::consts::SQRT_2;
    let crossing = |step: isize| -> Option<f64> {
        let mut k = k_peak;
        loop {
            let next = k as isize + step;
            if next < 0 || next as usize >= profile.len() {
                return None;
            }
            let nk = next as usize;
            let (ma, mb) = (profile[k].magnitude(), profile[nk].magnitude());
            if mb <= half {
                let frac = if ma > mb {
                    (ma - half) / (ma - mb)
                } else {
                    1.0
                };
                let (fa, fb) = (profile[k].freq_hz, profile[nk].freq_hz);
                return Some(fa + frac * (fb - fa));
            }
            k = nk;
        }
    };
    let f_lo = crossing(-1)?;
    let f_hi = crossing(1)?;
    let width = f_hi - f_lo;
    (width > 0.0).then(|| f_peak / width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltnoise_pdn::Complex;

    fn point(freq_hz: f64, mag: f64) -> ImpedancePoint {
        ImpedancePoint {
            freq_hz,
            z: Complex::from_real(mag),
        }
    }

    /// A synthetic single-pole resonance with a known analytic Q: a
    /// Lorentzian magnitude `m(f) = 1 / sqrt(1 + (2 Q (f-f0)/f0)^2)`
    /// falls to `1/sqrt(2)` exactly at `f0 (1 ± 1/(2Q))`.
    #[test]
    fn q_recovers_analytic_lorentzian() {
        let (f0, q_true) = (2.0e6, 8.0);
        let profile: Vec<ImpedancePoint> = (0..4001)
            .map(|i| {
                let f = 1e6 + i as f64 * 500.0;
                let x = 2.0 * q_true * (f - f0) / f0;
                point(f, 1.0 / (1.0 + x * x).sqrt())
            })
            .collect();
        let s = SignalSummary::of_profile(&profile).unwrap();
        assert_eq!(s.peak_freq_hz, f0);
        let q = s.q_factor.expect("peak falls to half power");
        assert!((q - q_true).abs() / q_true < 0.01, "q = {q}");
    }

    #[test]
    fn peaks_match_find_peaks_exactly() {
        let profile: Vec<ImpedancePoint> = [1.0, 4.0, 2.0, 6.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &m)| point(1e6 * (i + 1) as f64, m))
            .collect();
        let s = SignalSummary::of_profile(&profile).unwrap();
        assert_eq!(s.peaks, find_peaks(&profile).unwrap());
        assert_eq!(s.peak_freq_hz, 4e6);
        assert!(s.die_band_energy > 0.0);
        assert_eq!(s.strongest_at_or_above(3.5e6), Some((4e6, 6.0)));
    }

    #[test]
    fn empty_profile_is_rejected() {
        assert!(matches!(
            SignalSummary::of_profile(&[]),
            Err(PdnError::EmptyProfile)
        ));
    }

    #[test]
    fn monotone_profile_has_no_peak_and_no_q() {
        let profile: Vec<ImpedancePoint> =
            (1..6).map(|i| point(1e6 * i as f64, i as f64)).collect();
        let s = SignalSummary::of_profile(&profile).unwrap();
        assert!(s.peaks.is_empty());
        assert_eq!(s.peak_freq_hz, 0.0);
        assert_eq!(s.q_factor, None);
    }
}
