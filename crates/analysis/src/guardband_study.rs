//! Utilization-based dynamic guard-banding study (paper §VII-B).
//!
//! Builds the per-active-core-count worst-case noise table from measured
//! mappings (Fig. 11a's regions), then quantifies the energy saving of a
//! controller that tracks utilization against the static worst-case
//! voltage setting.

use crate::experiment::Experiment;
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::guardband::{energy_saving, GuardbandController, GuardbandTable};
use voltnoise_system::noise::{NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;
use voltnoise_system::workload::{mappings_of, Distribution, Mapping};

/// Study configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardbandConfig {
    /// Stimulus frequency used for the worst-case characterization.
    pub stim_freq_hz: f64,
    /// Simulation window per run.
    pub window_s: Option<f64>,
    /// Safety factor over measured worst-case noise.
    pub safety_factor: f64,
    /// Fraction of chip power that is dynamic (scales as V²).
    pub dynamic_fraction: f64,
    /// Mean utilizations (0..=1) of the synthetic traces to evaluate.
    pub utilizations: Vec<f64>,
    /// Length of each synthetic utilization trace.
    pub trace_len: usize,
}

impl GuardbandConfig {
    /// Paper-style study.
    pub fn paper() -> Self {
        GuardbandConfig {
            stim_freq_hz: 2.5e6,
            window_s: Some(50e-6),
            safety_factor: 1.1,
            dynamic_fraction: 0.6,
            utilizations: vec![0.1, 0.25, 0.5, 0.75, 1.0],
            trace_len: 512,
        }
    }

    /// Reduced for tests.
    pub fn reduced() -> Self {
        GuardbandConfig {
            window_s: Some(35e-6),
            utilizations: vec![0.25, 1.0],
            trace_len: 64,
            ..GuardbandConfig::paper()
        }
    }
}

/// Result of the guard-banding study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardbandStudy {
    /// Worst-case noise (volts, peak droop below nominal operating point)
    /// per number of active cores.
    pub worst_noise_v: [f64; NUM_CORES + 1],
    /// The derived margin table (volts per active count).
    pub margins_v: [f64; NUM_CORES + 1],
    /// `(mean utilization, energy saving fraction)` per evaluated trace.
    pub savings: Vec<(f64, f64)>,
    /// Voltage transitions performed by the controller on the densest
    /// trace (cost indicator).
    pub transitions: u64,
}

impl GuardbandStudy {
    /// Renders the §VII-B summary.
    pub fn render(&self) -> String {
        let mut t = Table::new("§VII-B: utilization-based dynamic guard-banding");
        t.columns(["active_cores", "worst_noise_mv", "margin_mv"]);
        for k in 0..=NUM_CORES {
            t.row([
                k.to_string(),
                format!("{:.1}", self.worst_noise_v[k] * 1e3),
                format!("{:.1}", self.margins_v[k] * 1e3),
            ]);
        }
        t.line("utilization,energy_saving_pct");
        for (u, s) in &self.savings {
            t.row([format!("{u:.2}"), format!("{:.2}", s * 100.0)]);
        }
        t.note(&format!("controller transitions: {}", self.transitions));
        t.finish()
    }
}

/// Deterministic synthetic utilization trace with a given mean.
fn utilization_trace(mean_util: f64, len: usize) -> Vec<usize> {
    (0..len)
        .map(|i| {
            // A deterministic sawtooth-ish pattern around the mean.
            let phase = (i as f64 * 0.37).sin() * 0.5 + 0.5;
            let target = mean_util * 2.0 * phase;
            (target * NUM_CORES as f64).round().min(NUM_CORES as f64) as usize
        })
        .collect()
}

/// The §VII-B dynamic guard-banding experiment.
///
/// One simulation per `(active-core count, mapping)` pair: the same
/// outcomes provide both the worst-case droop table and (through the
/// engine cache) any overlapping mapping studies, where the previous
/// implementation simulated every mapping twice.
#[derive(Debug, Clone)]
pub struct GuardbandExperiment {
    /// The study configuration.
    pub cfg: GuardbandConfig,
}

impl GuardbandExperiment {
    /// The deterministic plan: `(active count, mapping)` in run order.
    fn plan(&self) -> Vec<(usize, Mapping)> {
        let mut out = Vec::new();
        for k in 0..=NUM_CORES {
            let dist = Distribution {
                max_count: k,
                medium_count: 0,
            };
            for mapping in mappings_of(&dist) {
                out.push((k, mapping));
            }
        }
        out
    }
}

impl Experiment for GuardbandExperiment {
    type Artifact = GuardbandStudy;

    fn id(&self) -> &'static str {
        "guardband"
    }

    fn title(&self) -> &'static str {
        "§VII-B: utilization-based dynamic guard-banding"
    }

    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let run_cfg = NoiseRunConfig {
            window_s: self.cfg.window_s,
            record_traces: false,
            seed: 1,
            ..NoiseRunConfig::default()
        };
        let batch = SimJob::batch(tb.chip());
        Ok(self
            .plan()
            .iter()
            .map(|(_, mapping)| {
                batch.job(
                    tb.loads_of_mapping(
                        mapping,
                        self.cfg.stim_freq_hz,
                        Some(SyncSpec::paper_default()),
                    ),
                    run_cfg.clone(),
                )
            })
            .collect())
    }

    fn assemble(
        &self,
        tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<GuardbandStudy, PdnError> {
        let cfg = &self.cfg;
        let v_op = tb.chip().v_nom();
        // Worst-case noise as the deepest droop below nominal across all
        // mappings of k active cores — Fig. 11a's "regions".
        let mut worst_noise_v = [0.0f64; NUM_CORES + 1];
        for ((k, _), out) in self.plan().iter().zip(outcomes) {
            let v_min = out.v_min.iter().copied().fold(f64::INFINITY, f64::min);
            worst_noise_v[*k] = worst_noise_v[*k].max(v_op - v_min);
        }

        let table = GuardbandTable::from_worst_case_noise(worst_noise_v, cfg.safety_factor);
        let margins_v = std::array::from_fn(|k| table.margin_v(k));
        let v_fail = tb.chip().config().critical_path.failure_voltage();

        let mut savings = Vec::new();
        let mut transitions = 0;
        for &u in &cfg.utilizations {
            let trace = utilization_trace(u, cfg.trace_len);
            let mut controller = GuardbandController::new(table.clone(), v_fail);
            for &active in &trace {
                controller.step(active);
            }
            transitions = transitions.max(controller.transitions());
            let mean_u =
                trace.iter().sum::<usize>() as f64 / (trace.len().max(1) * NUM_CORES) as f64;
            savings.push((
                mean_u,
                energy_saving(&table, v_fail, &trace, cfg.dynamic_fraction),
            ));
        }

        Ok(GuardbandStudy {
            worst_noise_v,
            margins_v,
            savings,
            transitions,
        })
    }

    fn render(&self, artifact: &GuardbandStudy) -> String {
        artifact.render()
    }
}

/// Runs the study on the shared engine: characterize worst-case noise per
/// active-core count, build the margin table, and evaluate controller
/// savings.
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_guardband_study(
    tb: &Testbed,
    cfg: &GuardbandConfig,
) -> Result<GuardbandStudy, PdnError> {
    GuardbandExperiment { cfg: cfg.clone() }.run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margins_grow_with_utilization_and_save_energy_when_idle() {
        let tb = Testbed::fast();
        let mut cfg = GuardbandConfig::reduced();
        // Keep the mapping enumeration small in tests.
        cfg.window_s = Some(30e-6);
        let study = run_guardband_study(tb, &cfg).unwrap();
        // Noise with all 6 cores far exceeds the idle baseline.
        assert!(study.worst_noise_v[6] > 2.0 * study.worst_noise_v[0].max(1e-3));
        // Margins monotone.
        for k in 1..=NUM_CORES {
            assert!(study.margins_v[k] >= study.margins_v[k - 1]);
        }
        // A mostly-idle machine saves more than a busy one.
        let s_idle = study.savings[0].1;
        let s_busy = study.savings.last().unwrap().1;
        assert!(s_idle > s_busy, "idle {s_idle} vs busy {s_busy}");
        assert!(s_idle > 0.005, "saving {s_idle}");
    }

    #[test]
    fn trace_generator_respects_bounds() {
        for u in [0.0, 0.3, 1.0] {
            for v in utilization_trace(u, 100) {
                assert!(v <= NUM_CORES);
            }
        }
    }
}
