//! Regenerates paper Fig. 7b: the die-level impedance profile |Z(f)|
//! with its board and die resonance peaks.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig7b");
}
