//! Deterministic chaos harness: a seeded fault plan replayed against a
//! live fleet through the [`FleetObserver`] hooks.
//!
//! The harness never reads a clock or an RNG at injection time — every
//! fault is pinned to a *campaign coordinate* (a wave number, or the
//! Nth streamed line from a shard), so replaying the same plan against
//! the same campaign injects the same faults at the same points. That
//! is what makes the byte-identity proof in `tests/fleet.rs` a real
//! test instead of a flake: the chaotic run is as reproducible as the
//! clean one.
//!
//! Three fault shapes cover the failure modes the fleet claims to
//! survive:
//!
//! * [`FaultAction::KillAfterLines`] — SIGKILL the worker mid-batch,
//!   after it has streamed (and therefore durably appended) some
//!   results. Exercises crash detection, bounded respawn, and resume
//!   from the shard store.
//! * [`FaultAction::StallBeforeWave`] — SIGSTOP the worker so accepts
//!   stall. Health probes time out, the shard's breaker trips, and the
//!   wave hedges to the ring successor.
//! * [`FaultAction::ResetAfterLines`] — abort the client connection
//!   mid-stream (an injected connection reset). Exercises partial
//!   capture + retry of only the missing tail.

use crate::client::{Directive, FleetEvent, FleetObserver};
use crate::supervisor::{send_signal, Supervisor, SIGCONT, SIGKILL, SIGSTOP};
use std::time::{Duration, Instant};
use voltnoise_server::wire::JobSpec;
use voltnoise_system::workload::WorkloadKind;

/// splitmix64 — the same tiny deterministic generator the engine's
/// retry backoff uses; seeds the fault plan.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One scheduled fault, pinned to a campaign coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// SIGKILL `shard`'s worker once `lines` result lines have streamed
    /// from it (so the kill lands mid-batch, after durable appends).
    KillAfterLines {
        /// Target shard.
        shard: usize,
        /// 1-based streamed-line count that triggers the kill.
        lines: usize,
    },
    /// SIGSTOP `shard`'s worker just before wave `wave` dispatches; the
    /// harness SIGCONTs it at the next distinct wave (or at
    /// [`ChaosDriver::finish`]).
    StallBeforeWave {
        /// Wave ordinal whose dispatch the stall precedes.
        wave: usize,
        /// Target shard.
        shard: usize,
    },
    /// Abort the client connection to `shard` after `lines` streamed
    /// lines — an injected reset on an otherwise healthy worker.
    ResetAfterLines {
        /// Target shard.
        shard: usize,
        /// 1-based streamed-line count that triggers the abort.
        lines: usize,
    },
}

/// A deterministic fault plan: an ordered set of [`FaultAction`]s.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    actions: Vec<FaultAction>,
}

impl ChaosPlan {
    /// A plan from an explicit action list.
    pub fn new(actions: Vec<FaultAction>) -> ChaosPlan {
        ChaosPlan { actions }
    }

    /// A seeded plan over a `shards`-wide fleet: one mid-batch SIGKILL,
    /// one pre-wave stall, one mid-stream reset, with shards and
    /// trigger coordinates drawn from splitmix64(`seed`). The stall
    /// always targets a different shard than the kill so both failure
    /// modes are exercised in one campaign.
    pub fn seeded(seed: u64, shards: usize) -> ChaosPlan {
        let shards = shards.max(1);
        let mut state = seed;
        let kill_shard = (splitmix64(&mut state) as usize) % shards;
        let stall_shard = if shards > 1 {
            (kill_shard + 1 + (splitmix64(&mut state) as usize) % (shards - 1)) % shards
        } else {
            kill_shard
        };
        let reset_shard = (splitmix64(&mut state) as usize) % shards;
        ChaosPlan::new(vec![
            FaultAction::KillAfterLines {
                shard: kill_shard,
                lines: 1 + (splitmix64(&mut state) as usize) % 2,
            },
            FaultAction::StallBeforeWave {
                wave: (splitmix64(&mut state) as usize) % shards,
                shard: stall_shard,
            },
            FaultAction::ResetAfterLines {
                shard: reset_shard,
                lines: 1,
            },
        ])
    }

    /// The scheduled actions.
    pub fn actions(&self) -> &[FaultAction] {
        &self.actions
    }
}

/// What a chaos run actually injected — asserted on by the tests so a
/// plan that silently stopped firing fails loudly.
#[derive(Debug, Default, Clone)]
pub struct ChaosReport {
    /// SIGKILLs delivered.
    pub kills: u64,
    /// SIGSTOP stalls injected.
    pub stalls: u64,
    /// Client-side connection aborts injected.
    pub resets: u64,
    /// Worker respawns performed during recovery.
    pub respawns: u64,
    /// Human-readable injection log, in order.
    pub log: Vec<String>,
}

/// Replays a [`ChaosPlan`] against a live [`Supervisor`] while a
/// campaign runs, via the [`FleetObserver`] hooks.
pub struct ChaosDriver<'a> {
    supervisor: &'a mut Supervisor,
    /// `(action, fired)` — every action fires at most once.
    actions: Vec<(FaultAction, bool)>,
    /// Shards currently SIGSTOPped, with the wave that stalled them.
    stalled: Vec<(usize, usize)>,
    /// Shards SIGKILLed but not yet reaped+respawned. A kill is
    /// asynchronous: the client's connection resets a moment before the
    /// process becomes waitable, so recovery polls until these drain.
    killed: Vec<usize>,
    report: ChaosReport,
}

impl<'a> ChaosDriver<'a> {
    /// A driver replaying `plan` against `supervisor`.
    pub fn new(supervisor: &'a mut Supervisor, plan: ChaosPlan) -> ChaosDriver<'a> {
        ChaosDriver {
            supervisor,
            actions: plan.actions.into_iter().map(|a| (a, false)).collect(),
            stalled: Vec::new(),
            killed: Vec::new(),
            report: ChaosReport::default(),
        }
    }

    /// Resumes any still-stalled workers, reaps and respawns any
    /// still-dead ones, and returns the injection report. Must be
    /// called after the campaign so no worker is left frozen or dead
    /// (a kill whose batch completed anyway never triggers recovery
    /// mid-campaign).
    pub fn finish(mut self) -> ChaosReport {
        self.resume_stalled_except(usize::MAX);
        self.reap_killed();
        self.report
    }

    /// Polls the supervisor until every SIGKILLed shard has been reaped
    /// and respawned (bounded — a killed process always becomes
    /// waitable, the wait is only for the kernel to finish the exit).
    fn reap_killed(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.supervisor.check() {
                Ok(respawned) => {
                    self.report.respawns += respawned.len() as u64;
                    for s in &respawned {
                        self.killed.retain(|k| k != s);
                        self.report.log.push(format!(
                            "respawned shard {s} (gen {})",
                            self.supervisor.restart_gen(*s)
                        ));
                    }
                }
                Err(err) => {
                    self.report.log.push(format!("recover failed: {err}"));
                    return;
                }
            }
            if self.killed.is_empty() || Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn resume_stalled_except(&mut self, wave: usize) {
        let mut keep = Vec::new();
        for (shard, stalled_wave) in std::mem::take(&mut self.stalled) {
            if stalled_wave == wave {
                keep.push((shard, stalled_wave));
                continue;
            }
            let _ = send_signal(self.supervisor.pid(shard), SIGCONT);
            self.report.log.push(format!("resume shard {shard}"));
        }
        self.stalled = keep;
    }
}

impl FleetObserver for ChaosDriver<'_> {
    fn on_event(&mut self, event: &FleetEvent<'_>) -> Directive {
        match *event {
            FleetEvent::WaveStart { wave, .. } => {
                // A stall only spans its own wave: by the time a later
                // wave dispatches, the frozen worker thaws (the breaker
                // stays open until its cooldown anyway).
                self.resume_stalled_except(wave);
                let mut to_stall = Vec::new();
                for (action, fired) in &mut self.actions {
                    if let FaultAction::StallBeforeWave { wave: at, shard } = *action {
                        if at == wave && !*fired {
                            *fired = true;
                            to_stall.push(shard);
                        }
                    }
                }
                for shard in to_stall {
                    if send_signal(self.supervisor.pid(shard), SIGSTOP).is_ok() {
                        self.report.stalls += 1;
                        self.report
                            .log
                            .push(format!("stall shard {shard} before wave {wave}"));
                        self.stalled.push((shard, wave));
                    }
                }
                Directive::Continue
            }
            FleetEvent::Line {
                shard, lines_seen, ..
            } => {
                let mut directive = Directive::Continue;
                let mut kill = false;
                let mut reset = false;
                for (action, fired) in &mut self.actions {
                    match *action {
                        FaultAction::KillAfterLines { shard: s, lines } => {
                            if s == shard && lines_seen >= lines && !*fired {
                                *fired = true;
                                kill = true;
                            }
                        }
                        FaultAction::ResetAfterLines { shard: s, lines } => {
                            if s == shard && lines_seen >= lines && !*fired {
                                *fired = true;
                                reset = true;
                            }
                        }
                        FaultAction::StallBeforeWave { .. } => {}
                    }
                }
                if kill && send_signal(self.supervisor.pid(shard), SIGKILL).is_ok() {
                    self.report.kills += 1;
                    self.killed.push(shard);
                    self.report
                        .log
                        .push(format!("SIGKILL shard {shard} after {lines_seen} lines"));
                }
                if reset {
                    self.report.resets += 1;
                    self.report.log.push(format!(
                        "reset connection to shard {shard} after {lines_seen} lines"
                    ));
                    directive = Directive::AbortConnection;
                }
                directive
            }
        }
    }

    fn recover(&mut self, shard: usize) -> Option<String> {
        // Reap and respawn whatever died (bounded by the supervisor's
        // restart budget). When the driver knows it killed something,
        // poll until the corpse is actually waitable — the connection
        // reset races the process exit by a few milliseconds. Then hand
        // the client the shard's current address, unchanged if the
        // worker never died (e.g. an injected reset on a healthy one).
        self.reap_killed();
        Some(self.supervisor.addr(shard).to_string())
    }
}

/// A deterministic campaign of `jobs` specs: rotating core mappings
/// over the workload kinds, alternating sync, distinct seeds derived
/// from `base_seed`. The same `(jobs, base_seed)` always yields the
/// same spec list — and therefore the same digests, routing, and
/// outcomes.
pub fn campaign_specs(jobs: usize, base_seed: u64) -> Vec<JobSpec> {
    let kinds = WorkloadKind::ALL;
    (0..jobs)
        .map(|i| {
            let mut mapping = [WorkloadKind::Idle; 6];
            for (core, slot) in mapping.iter_mut().enumerate() {
                *slot = kinds[(i + core) % kinds.len()];
            }
            JobSpec {
                mapping,
                stim_freq_hz: 2.5e6,
                sync: i % 2 == 0,
                window_s: Some(4e-6),
                seed: base_seed.wrapping_add(i as u64),
                record_traces: false,
                max_steps: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_cover_all_fault_kinds() {
        let a = ChaosPlan::seeded(42, 3);
        let b = ChaosPlan::seeded(42, 3);
        assert_eq!(a.actions(), b.actions());
        assert_eq!(a.actions().len(), 3);
        let kill = a.actions().iter().find_map(|f| match f {
            FaultAction::KillAfterLines { shard, .. } => Some(*shard),
            _ => None,
        });
        let stall = a.actions().iter().find_map(|f| match f {
            FaultAction::StallBeforeWave { shard, .. } => Some(*shard),
            _ => None,
        });
        assert!(kill.is_some() && stall.is_some());
        assert_ne!(kill, stall, "kill and stall must hit different shards");
    }

    #[test]
    fn campaign_specs_are_deterministic_and_varied() {
        let a = campaign_specs(8, 7);
        let b = campaign_specs(8, 7);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mapping, y.mapping);
            assert_eq!(x.seed, y.seed);
        }
        // Seeds are distinct, mappings rotate.
        assert_ne!(a[0].seed, a[1].seed);
        assert_ne!(a[0].mapping, a[1].mapping);
    }
}
