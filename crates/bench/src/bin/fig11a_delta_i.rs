//! Regenerates paper Fig. 11a: maximum noise vs the fraction of the
//! chip's maximum possible dI each mapping generates.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig11a");
}
