//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! value-tree serde model in the vendored `serde` crate, with no external
//! dependencies (no `syn`/`quote`): the item is parsed directly from the
//! `proc_macro` token stream. Supported shapes cover everything this
//! workspace derives on — non-generic named-field structs, tuple structs,
//! and enums whose variants are unit, tuple, or struct-like. `#[serde]`
//! attributes are not supported (none are used in the workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Body {
    /// Named-field struct: field identifiers in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with the given arity.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum: `(variant name, variant body)` in declaration order.
    Enum(Vec<(String, VariantBody)>),
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility; find `struct` or `enum`.
    let is_enum = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group that follows.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Restricted visibility: consume `(crate)` etc.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => {}
            None => panic!("derive input has no struct or enum"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the vendored serde derive");
        }
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Body::Enum(parse_variants(g.stream()))
            } else {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(count_top_level_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
        other => panic!("unsupported item body: {other:?}"),
    };
    Item { name, body }
}

/// Extracts field names from a named-field body, skipping attributes,
/// visibility, and the type after each `:` (tracking `<...>` nesting so
/// commas inside generic arguments don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("expected field name, found {tok:?}");
        };
        fields.push(id.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "expected ':' after field {}, found {other:?}",
                fields.last().unwrap()
            ),
        }
        // Consume the type up to a top-level comma.
        let mut angle = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts comma-separated fields at the top level of a tuple body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tok in stream {
        any = true;
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantBody)> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("expected variant name, found {tok:?}");
        };
        let name = id.to_string();
        let body = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                toks.next();
                VariantBody::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantBody::Struct(fields)
            }
            _ => VariantBody::Unit,
        };
        variants.push((name, body));
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
    }
    variants
}

fn str_lit(s: &str) -> String {
    format!("\"{s}\"")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({}), ::serde::Serialize::to_value(&self.{f}))",
                        str_lit(f)
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vb)| match vb {
                    VariantBody::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({})),",
                        str_lit(v)
                    ),
                    VariantBody::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from({}), ::serde::Serialize::to_value(f0))]),",
                        str_lit(v)
                    ),
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({}), ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            str_lit(v),
                            elems.join(", ")
                        )
                    }
                    VariantBody::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({}), ::serde::Serialize::to_value({f}))",
                                    str_lit(f)
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({}), ::serde::Value::Object(::std::vec![{}]))]),",
                            str_lit(v),
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let err =
        |what: &str| format!("::serde::Error::msg(::std::format!(\"expected {what} for {name}\"))");
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, {})?", str_lit(f)))
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| {})?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                err("object"),
                inits.join(", ")
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| {})?;\n\
                 if arr.len() != {n} {{ return ::std::result::Result::Err({}); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                err("array"),
                err(&format!("array of length {n}")),
                inits.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, vb)| matches!(vb, VariantBody::Unit))
                .map(|(v, _)| format!("{} => ::std::result::Result::Ok({name}::{v}),", str_lit(v)))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, vb)| match vb {
                    VariantBody::Unit => None,
                    VariantBody::Tuple(1) => Some(format!(
                        "{} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),",
                        str_lit(v)
                    )),
                    VariantBody::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        Some(format!(
                            "{} => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| {})?;\n\
                                 if arr.len() != {n} {{ return ::std::result::Result::Err({}); }}\n\
                                 ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            str_lit(v),
                            err("variant array"),
                            err(&format!("variant array of length {n}")),
                            inits.join(", ")
                        ))
                    }
                    VariantBody::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(obj, {})?", str_lit(f)))
                            .collect();
                        Some(format!(
                            "{} => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| {})?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                             }}",
                            str_lit(v),
                            err("variant object"),
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         _ => ::std::result::Result::Err({}),\n\
                     }},\n\
                     ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                         let (k, inner) = &o[0];\n\
                         let _ = inner;\n\
                         match k.as_str() {{\n\
                             {}\n\
                             _ => ::std::result::Result::Err({}),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err({}),\n\
                 }}",
                unit_arms.join("\n"),
                err("known unit variant"),
                data_arms.join("\n"),
                err("known data variant"),
                err("enum value")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
