//! The [`Experiment`] abstraction and the experiment registry.
//!
//! Every paper artifact (table, figure, study) is an [`Experiment`]: a
//! configuration that expands into pure [`SimJob`]s, an `assemble` step
//! that folds the solved outcomes into a serializable artifact, and a
//! `render` step producing the figure's text document. The default
//! [`Experiment::run`] routes the jobs through an [`Engine`], so every
//! experiment transparently gets parallel execution and content-keyed
//! memoization; experiments whose job list depends on previous outcomes
//! (e.g. the Vmin descent of Fig. 12) override `run` and use
//! [`Engine::run_one`] / [`Engine::par_map`] directly.
//!
//! The [`registry`] lists one entry per artifact. The full report and
//! the per-figure binaries both walk it, so adding an experiment in one
//! place surfaces it everywhere.

use serde::{Serialize, Value};
use std::sync::Arc;
use voltnoise_pdn::PdnError;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::NoiseOutcome;
use voltnoise_system::testbed::Testbed;

/// One reproducible paper artifact.
pub trait Experiment {
    /// The structured result: serializable for JSON export and for the
    /// byte-exact parallel-vs-serial determinism checks.
    type Artifact: Serialize;

    /// Stable identifier (`fig7a`, `table1`, ...), used by the registry
    /// and the per-figure binaries.
    fn id(&self) -> &'static str;

    /// Human-readable one-line title.
    fn title(&self) -> &'static str;

    /// Expands the configuration into pure simulation jobs. Experiments
    /// that don't run the noise kernel (AC analyses, pure computations)
    /// keep the default empty list.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when job construction requires a solve that
    /// fails.
    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let _ = tb;
        Ok(Vec::new())
    }

    /// Folds solved outcomes (parallel to [`Experiment::jobs`]'s order)
    /// into the artifact.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when a non-job computation inside the
    /// experiment fails.
    fn assemble(
        &self,
        tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<Self::Artifact, PdnError>;

    /// Renders the artifact as the figure's text document.
    fn render(&self, artifact: &Self::Artifact) -> String;

    /// Runs the experiment end to end on an engine.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when a solve fails.
    fn run(&self, tb: &Testbed, engine: &Engine) -> Result<Self::Artifact, PdnError> {
        let jobs = self.jobs(tb)?;
        let outcomes = engine.run_jobs(&jobs)?;
        self.assemble(tb, &outcomes)
    }
}

/// A finished experiment: rendered text plus the serialized artifact.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The experiment's registry id.
    pub id: &'static str,
    /// The experiment's title.
    pub title: &'static str,
    /// The rendered figure document.
    pub rendered: String,
    /// The artifact as a serde value tree (for `--json` export).
    pub value: Value,
}

/// Runs an experiment and captures both its renderings.
///
/// # Errors
///
/// Returns [`PdnError`] when the experiment fails.
pub fn run_to_output<E: Experiment>(
    exp: &E,
    tb: &Testbed,
    engine: &Engine,
) -> Result<ExperimentOutput, PdnError> {
    let artifact = exp.run(tb, engine)?;
    Ok(ExperimentOutput {
        id: exp.id(),
        title: exp.title(),
        rendered: exp.render(&artifact),
        value: artifact.to_value(),
    })
}

pub(crate) type EntryRun = fn(&Testbed, &Engine, bool) -> Result<ExperimentOutput, PdnError>;

/// One registry entry: an artifact the workspace can regenerate.
pub struct RegistryEntry {
    /// Stable identifier, matching the experiment's [`Experiment::id`].
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Whether [`crate::report::full_report`] includes this artifact (in
    /// registry order).
    pub in_report: bool,
    pub(crate) run: EntryRun,
}

impl RegistryEntry {
    /// Runs the entry's experiment at paper (`reduced = false`) or
    /// reduced scale on the given engine.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the experiment fails.
    pub fn run(
        &self,
        tb: &Testbed,
        engine: &Engine,
        reduced: bool,
    ) -> Result<ExperimentOutput, PdnError> {
        (self.run)(tb, engine, reduced)
    }
}

impl std::fmt::Debug for RegistryEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryEntry")
            .field("id", &self.id)
            .field("title", &self.title)
            .field("in_report", &self.in_report)
            .finish()
    }
}

/// The experiment registry, in full-report order.
pub fn registry() -> &'static [RegistryEntry] {
    crate::catalog::ENTRIES
}

/// Looks up a registry entry by id.
pub fn find(id: &str) -> Option<&'static RegistryEntry> {
    registry().iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let entries = registry();
        assert!(!entries.is_empty());
        for (i, e) in entries.iter().enumerate() {
            assert!(find(e.id).is_some(), "{} not findable", e.id);
            for later in &entries[i + 1..] {
                assert_ne!(e.id, later.id, "duplicate id {}", e.id);
            }
        }
        assert!(find("no-such-experiment").is_none());
    }
}
