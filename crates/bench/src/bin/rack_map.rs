//! Regenerates the rack mapping study: naive vs noise-aware placement
//! of a synthetic job trace over a process-variated chip population
//! (≥2 drawers × ≥4 chips). Extends the paper's §VII-A opportunity to
//! rack scale, so it stays out of `full_report`.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("rack-map");
}
