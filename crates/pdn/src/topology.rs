//! The modeled multi-core chip PDN topology.
//!
//! Mirrors the zEC12-style hierarchy of the paper's Figures 1–3: a VRM
//! feeds the motherboard, which feeds the package through board
//! inductance; C4s feed **two on-die voltage domains** (the upper core row
//! {0, 2, 4} and the lower row {1, 3, 5} of Fig. 3) that share the single
//! package domain; the large deep-trench eDRAM L3 sits between the rows
//! and bridges the domains with a big damping capacitance. Cores attach to
//! their domain rail through the on-die grid and couple resistively to
//! their row neighbours.

use crate::error::PdnError;
use crate::netlist::{Netlist, NodeId, SourceId};
use serde::{Deserialize, Serialize};

/// Number of cores on the modeled chip.
pub const NUM_CORES: usize = 6;

/// On-die voltage domain of a core: cores {0, 2, 4} sit on domain 0 (upper
/// row), cores {1, 3, 5} on domain 1 (lower row).
pub fn core_domain(core: usize) -> usize {
    core % 2
}

/// Row-adjacent core pairs of the modeled floorplan (Fig. 3): upper row
/// 0–2–4, lower row 1–3–5.
pub const NEIGHBOR_PAIRS: [(usize, usize); 4] = [(0, 2), (2, 4), (1, 3), (3, 5)];

/// Electrical parameters of the chip/package/board model.
///
/// Defaults are calibrated so the die-level impedance profile shows the
/// paper's two resonant bands (≈40 kHz board/package and ≈2 MHz
/// die/package after the deep-trench eDRAM decap increase) with realistic
/// milliohm-scale magnitudes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnParams {
    /// Nominal VRM output voltage (volts).
    pub v_nom: f64,
    /// VRM output resistance (ohms).
    pub r_vrm: f64,
    /// VRM output inductance (henries).
    pub l_vrm: f64,
    /// Board bulk capacitance (farads) and its ESR (ohms).
    pub c_bulk: f64,
    /// ESR of the board bulk capacitance.
    pub esr_bulk: f64,
    /// Board spreading resistance (ohms).
    pub r_board: f64,
    /// Board + socket inductance (henries).
    pub l_board: f64,
    /// Package decap (farads) and ESR (ohms).
    pub c_pkg: f64,
    /// ESR of the package decap.
    pub esr_pkg: f64,
    /// C4/package-via resistance per on-die domain (ohms).
    pub r_c4: f64,
    /// C4/package-via inductance per on-die domain (henries).
    pub l_c4: f64,
    /// Per-domain on-die decap (farads) and ESR (ohms).
    pub c_domain: f64,
    /// ESR of the per-domain decap.
    pub esr_domain: f64,
    /// Domain-to-L3 bridge resistance (ohms).
    pub r_l3: f64,
    /// Domain-to-L3 bridge inductance (henries).
    pub l_l3: f64,
    /// L3/eDRAM deep-trench decap (farads) and ESR (ohms).
    pub c_l3: f64,
    /// ESR of the L3 decap.
    pub esr_l3: f64,
    /// On-die grid resistance from domain rail to each core (ohms).
    pub r_grid: f64,
    /// On-die grid inductance from domain rail to each core (henries).
    pub l_grid: f64,
    /// Local per-core decap (farads) and ESR (ohms).
    pub c_core: f64,
    /// ESR of the per-core decap.
    pub esr_core: f64,
    /// Resistive coupling between row-adjacent cores (ohms).
    pub r_neighbor: f64,
    /// Per-core multiplier on the grid resistance, modeling process and
    /// layout variation (index = core id).
    pub grid_variation: [f64; NUM_CORES],
}

impl Default for PdnParams {
    fn default() -> Self {
        PdnParams {
            v_nom: 1.05,
            r_vrm: 0.017e-3,
            l_vrm: 0.67e-9,
            c_bulk: 60e-3,
            esr_bulk: 0.067e-3,
            r_board: 0.027e-3,
            l_board: 1.0e-9,
            c_pkg: 15e-3,
            esr_pkg: 0.18e-3,
            r_c4: 0.025e-3,
            l_c4: 22e-12,
            c_domain: 316e-6,
            esr_domain: 0.004e-3,
            r_l3: 0.05e-3,
            l_l3: 30e-12,
            c_l3: 555e-6,
            esr_l3: 0.012e-3,
            r_grid: 0.017e-3,
            l_grid: 0.1e-12,
            c_core: 4.4e-6,
            esr_core: 0.267e-3,
            r_neighbor: 0.04e-3,
            grid_variation: [1.0; NUM_CORES],
        }
    }
}

impl PdnParams {
    /// Parameters of a legacy (pre-deep-trench) design: 40× less on-die
    /// decap, which moves the first-droop resonance back into the
    /// 30–100 MHz band the paper describes for older systems (§V-A).
    pub fn legacy_decap() -> Self {
        let mut p = PdnParams::default();
        p.c_domain /= 40.0;
        p.c_l3 /= 40.0;
        p.c_core /= 40.0;
        p
    }
}

/// Handles to one chip's observable nodes, as returned by
/// [`attach_chip`]. Shared by the single-chip [`ChipPdn`] and the
/// multi-chip [`DrawerPdn`].
#[derive(Debug, Clone)]
struct ChipNodes {
    pkg: NodeId,
    domains: [NodeId; 2],
    l3: NodeId,
    cores: [NodeId; NUM_CORES],
    core_sources: [SourceId; NUM_CORES],
}

/// Builds one package-and-below chip subtree hanging off `attach`
/// (a board-plane node): package, two on-die domains, L3 bridge, six
/// cores with loads, and the neighbor coupling resistors.
///
/// The element and node creation sequence here is byte-identity
/// critical: auto-generated intermediate node names (`rl_mid_N`,
/// `esr_mid_N`) derive from the running node count, and dense stamping
/// order follows element insertion order, so [`ChipPdn::build`] calling
/// this with an empty prefix must reproduce the historical netlist
/// exactly.
fn attach_chip(
    nl: &mut Netlist,
    attach: NodeId,
    params: &PdnParams,
    prefix: &str,
) -> Result<ChipNodes, PdnError> {
    let pkg = nl.add_node(format!("{prefix}pkg"));
    nl.add_series_rl(attach, pkg, params.r_board, params.l_board)?;
    nl.add_capacitor_with_esr(pkg, NodeId::GROUND, params.c_pkg, params.esr_pkg)?;

    let mut domains = [NodeId::GROUND; 2];
    for (d, dom) in domains.iter_mut().enumerate() {
        let node = nl.add_node(format!("{prefix}domain{d}"));
        nl.add_series_rl(pkg, node, params.r_c4, params.l_c4)?;
        nl.add_capacitor_with_esr(node, NodeId::GROUND, params.c_domain, params.esr_domain)?;
        *dom = node;
    }

    let l3 = nl.add_node(format!("{prefix}l3"));
    for dom in domains {
        nl.add_series_rl(dom, l3, params.r_l3, params.l_l3)?;
    }
    nl.add_capacitor_with_esr(l3, NodeId::GROUND, params.c_l3, params.esr_l3)?;

    let mut cores = [NodeId::GROUND; NUM_CORES];
    let mut core_sources = [SourceId(0); NUM_CORES];
    for i in 0..NUM_CORES {
        let node = nl.add_node(format!("{prefix}core{i}"));
        let dom = domains[core_domain(i)];
        nl.add_series_rl(
            dom,
            node,
            params.r_grid * params.grid_variation[i],
            params.l_grid,
        )?;
        nl.add_capacitor_with_esr(node, NodeId::GROUND, params.c_core, params.esr_core)?;
        core_sources[i] = nl.add_current_source(node, NodeId::GROUND)?;
        cores[i] = node;
    }
    for (a, b) in NEIGHBOR_PAIRS {
        nl.add_resistor(cores[a], cores[b], params.r_neighbor)?;
    }

    Ok(ChipNodes {
        pkg,
        domains,
        l3,
        cores,
        core_sources,
    })
}

/// A built chip PDN: the netlist plus handles to every observable node.
#[derive(Debug, Clone)]
pub struct ChipPdn {
    netlist: Netlist,
    params: PdnParams,
    board: NodeId,
    pkg: NodeId,
    domains: [NodeId; 2],
    l3: NodeId,
    cores: [NodeId; NUM_CORES],
    core_sources: [SourceId; NUM_CORES],
}

impl ChipPdn {
    /// Builds the chip PDN from parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidElement`] if any parameter is
    /// non-positive or non-finite.
    pub fn build(params: &PdnParams) -> Result<Self, PdnError> {
        let mut nl = Netlist::new();
        let vrm = nl.add_node("vrm");
        nl.add_voltage_source(vrm, NodeId::GROUND, params.v_nom)?;

        let board = nl.add_node("board");
        nl.add_series_rl(vrm, board, params.r_vrm, params.l_vrm)?;
        nl.add_capacitor_with_esr(board, NodeId::GROUND, params.c_bulk, params.esr_bulk)?;

        let chip = attach_chip(&mut nl, board, params, "")?;

        Ok(ChipPdn {
            netlist: nl,
            params: params.clone(),
            board,
            pkg: chip.pkg,
            domains: chip.domains,
            l3: chip.l3,
            cores: chip.cores,
            core_sources: chip.core_sources,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable netlist access (e.g. to undervolt via
    /// [`Netlist::scale_voltage_sources`]).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Parameters the PDN was built from.
    pub fn params(&self) -> &PdnParams {
        &self.params
    }

    /// Node of the board plane.
    pub fn board_node(&self) -> NodeId {
        self.board
    }

    /// Node of the package plane.
    pub fn package_node(&self) -> NodeId {
        self.pkg
    }

    /// Node of on-die voltage domain `d` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `d > 1`.
    pub fn domain_node(&self, d: usize) -> NodeId {
        self.domains[d]
    }

    /// Node of the L3/eDRAM decap plane.
    pub fn l3_node(&self) -> NodeId {
        self.l3
    }

    /// Supply node of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_CORES`.
    pub fn core_node(&self, i: usize) -> NodeId {
        self.cores[i]
    }

    /// Current-source id of core `i`'s load.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_CORES`.
    pub fn core_source(&self, i: usize) -> SourceId {
        self.core_sources[i]
    }

    /// All six core supply nodes in core order.
    pub fn core_nodes(&self) -> [NodeId; NUM_CORES] {
        self.cores
    }
}

/// Parameters of a multi-chip drawer: N zEC12-like chips sharing one
/// board PDN, joined by a resistive/inductive board spine.
///
/// Models the paper's drawer/book hierarchy above the single-chip
/// substrate: one VRM and bulk capacitance feed a chain of board plane
/// segments, and each segment carries one full chip (package, domains,
/// L3, six cores). A 6-chip drawer assembles 200+ MNA unknowns —
/// deliberately past [`crate::mna::SPARSE_THRESHOLD`], so drawer
/// studies exercise the sparse solver path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrawerParams {
    /// Number of chips on the drawer (>= 1).
    pub chips: usize,
    /// Per-chip electrical parameters (shared by every chip).
    pub chip: PdnParams,
    /// Board spine resistance between adjacent chip sites (ohms).
    pub r_spine: f64,
    /// Board spine inductance between adjacent chip sites (henries).
    pub l_spine: f64,
}

impl Default for DrawerParams {
    fn default() -> Self {
        DrawerParams {
            chips: 6,
            chip: PdnParams::default(),
            r_spine: 0.02e-3,
            l_spine: 0.5e-9,
        }
    }
}

/// A built multi-chip drawer PDN: the netlist plus handles to every
/// chip's observable nodes.
#[derive(Debug, Clone)]
pub struct DrawerPdn {
    netlist: Netlist,
    params: DrawerParams,
    boards: Vec<NodeId>,
    chips: Vec<ChipNodes>,
}

impl DrawerPdn {
    /// Builds the drawer PDN: a VRM feeding board segment 0, spine
    /// segments chaining to board `i`, and one chip subtree per
    /// segment. Chip `i`'s core loads occupy drive slots
    /// `NUM_CORES*i .. NUM_CORES*(i+1)` in chip/core order.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidElement`] for a zero chip count or
    /// any non-positive/non-finite electrical parameter.
    pub fn build(params: &DrawerParams) -> Result<Self, PdnError> {
        if params.chips == 0 {
            return Err(PdnError::InvalidElement {
                element: "drawer chip count".to_string(),
                value: 0.0,
            });
        }
        let p = &params.chip;
        let mut nl = Netlist::new();
        let vrm = nl.add_node("vrm");
        nl.add_voltage_source(vrm, NodeId::GROUND, p.v_nom)?;

        let mut boards = Vec::with_capacity(params.chips);
        let board0 = nl.add_node("board0");
        nl.add_series_rl(vrm, board0, p.r_vrm, p.l_vrm)?;
        nl.add_capacitor_with_esr(board0, NodeId::GROUND, p.c_bulk, p.esr_bulk)?;
        boards.push(board0);
        for i in 1..params.chips {
            let board = nl.add_node(format!("board{i}"));
            nl.add_series_rl(boards[i - 1], board, params.r_spine, params.l_spine)?;
            boards.push(board);
        }

        let mut chips = Vec::with_capacity(params.chips);
        for (i, &board) in boards.iter().enumerate() {
            chips.push(attach_chip(&mut nl, board, p, &format!("c{i}_"))?);
        }

        Ok(DrawerPdn {
            netlist: nl,
            params: params.clone(),
            boards,
            chips,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Parameters the drawer was built from.
    pub fn params(&self) -> &DrawerParams {
        &self.params
    }

    /// Number of chips on the drawer.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// Board plane node of chip site `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()`.
    pub fn board_node(&self, chip: usize) -> NodeId {
        self.boards[chip]
    }

    /// Package node of chip `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()`.
    pub fn package_node(&self, chip: usize) -> NodeId {
        self.chips[chip].pkg
    }

    /// On-die domain node `d` (0 or 1) of chip `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()` or `d > 1`.
    pub fn domain_node(&self, chip: usize, d: usize) -> NodeId {
        self.chips[chip].domains[d]
    }

    /// L3 decap node of chip `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()`.
    pub fn l3_node(&self, chip: usize) -> NodeId {
        self.chips[chip].l3
    }

    /// Supply node of core `core` on chip `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()` or `core >= NUM_CORES`.
    pub fn core_node(&self, chip: usize, core: usize) -> NodeId {
        self.chips[chip].cores[core]
    }

    /// Current-source id of core `core` on chip `chip` (equals
    /// `NUM_CORES * chip + core`).
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()` or `core >= NUM_CORES`.
    pub fn core_source(&self, chip: usize, core: usize) -> SourceId {
        self.chips[chip].core_sources[core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{find_peaks, log_space, AcAnalysis};
    use crate::transient::{ConstantDrive, Probe, TransientConfig, TransientSolver};

    #[test]
    fn domains_partition_cores_by_row() {
        assert_eq!(core_domain(0), 0);
        assert_eq!(core_domain(2), 0);
        assert_eq!(core_domain(4), 0);
        assert_eq!(core_domain(1), 1);
        assert_eq!(core_domain(3), 1);
        assert_eq!(core_domain(5), 1);
    }

    #[test]
    fn build_produces_expected_sources() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        assert_eq!(chip.netlist().current_source_count(), NUM_CORES);
        assert_eq!(chip.netlist().voltage_source_count(), 1);
        for i in 0..NUM_CORES {
            assert_eq!(chip.core_source(i).index(), i);
        }
    }

    #[test]
    fn dc_droop_is_small_and_ordered() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let mut solver = TransientSolver::new(chip.netlist()).unwrap();
        // All six cores drawing 20 A.
        let sol = solver.solve_dc(&ConstantDrive::new(vec![20.0; 6])).unwrap();
        let v_nom = chip.params().v_nom;
        for i in 0..NUM_CORES {
            let v = sol[chip.core_node(i).unknown_index().unwrap()];
            let droop = v_nom - v;
            assert!(droop > 0.0, "core {i} droop must be positive");
            assert!(droop < 0.06 * v_nom, "core {i} droop {droop} too large");
        }
        // Package sits above the core nodes.
        let v_pkg = sol[chip.package_node().unknown_index().unwrap()];
        let v_core0 = sol[chip.core_node(0).unknown_index().unwrap()];
        assert!(v_pkg > v_core0);
    }

    #[test]
    fn impedance_profile_shows_two_bands() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let ac = AcAnalysis::new(chip.netlist());
        let freqs = log_space(1e3, 50e6, 400).unwrap();
        let profile = ac.sweep(chip.core_node(0), &freqs).unwrap();
        let peaks = find_peaks(&profile).unwrap();
        assert!(peaks.len() >= 2, "expected at least two resonance peaks");
        let mut freqs_sorted: Vec<f64> = peaks.iter().take(2).map(|p| p.0).collect();
        freqs_sorted.sort_by(|a, b| a.total_cmp(b));
        let (f_lo, f_hi) = (freqs_sorted[0], freqs_sorted[1]);
        assert!(
            (10e3..120e3).contains(&f_lo),
            "low band at {f_lo:.3e}, expected tens of kHz"
        );
        assert!(
            (1e6..5e6).contains(&f_hi),
            "high band at {f_hi:.3e}, expected ~2 MHz"
        );
    }

    #[test]
    fn no_resonance_above_5mhz_with_deep_trench() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let ac = AcAnalysis::new(chip.netlist());
        let freqs = log_space(5e6, 500e6, 200).unwrap();
        let profile = ac.sweep(chip.core_node(0), &freqs).unwrap();
        let peaks = find_peaks(&profile).unwrap();
        // Any peak above 5 MHz must be small relative to the 2 MHz band.
        let z_2mhz = ac.impedance_at(chip.core_node(0), 2e6).unwrap().abs();
        for (f, m) in peaks {
            assert!(
                m < z_2mhz,
                "unexpected strong high-frequency resonance at {f:.3e} ({m:.3e} ohm)"
            );
        }
    }

    #[test]
    fn legacy_decap_moves_first_droop_up() {
        let modern = ChipPdn::build(&PdnParams::default()).unwrap();
        let legacy = ChipPdn::build(&PdnParams::legacy_decap()).unwrap();
        let freqs = log_space(1e5, 500e6, 400).unwrap();
        let find_top_band = |chip: &ChipPdn| {
            let ac = AcAnalysis::new(chip.netlist());
            let profile = ac.sweep(chip.core_node(0), &freqs).unwrap();
            find_peaks(&profile)
                .unwrap()
                .first()
                .map(|p| p.0)
                .unwrap_or(0.0)
        };
        let f_modern = find_top_band(&modern);
        let f_legacy = find_top_band(&legacy);
        assert!(
            f_legacy > 4.0 * f_modern,
            "legacy {f_legacy:.3e} should sit far above modern {f_modern:.3e}"
        );
        assert!(f_legacy > 5e6, "legacy first droop should exceed 5 MHz");
    }

    #[test]
    fn same_domain_transfer_impedance_exceeds_cross_domain() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let ac = AcAnalysis::new(chip.netlist());
        // Inject at core 0: response at core 2 (same row) vs core 1 (other row).
        let f = 2e6;
        let z_same = ac
            .transfer_impedance(chip.core_node(0), chip.core_node(2), f)
            .unwrap()
            .abs();
        let z_cross = ac
            .transfer_impedance(chip.core_node(0), chip.core_node(1), f)
            .unwrap()
            .abs();
        assert!(
            z_same > z_cross,
            "same-domain coupling {z_same:.3e} should exceed cross-domain {z_cross:.3e}"
        );
    }

    #[test]
    fn grid_variation_changes_core_droop() {
        let mut params = PdnParams::default();
        params.grid_variation[2] = 2.0;
        let chip = ChipPdn::build(&params).unwrap();
        let mut solver = TransientSolver::new(chip.netlist()).unwrap();
        let sol = solver.solve_dc(&ConstantDrive::new(vec![20.0; 6])).unwrap();
        let v2 = sol[chip.core_node(2).unknown_index().unwrap()];
        let v4 = sol[chip.core_node(4).unknown_index().unwrap()];
        assert!(v2 < v4, "core with higher grid resistance droops more");
    }

    #[test]
    fn transient_on_full_chip_runs() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let mut solver = TransientSolver::new(chip.netlist()).unwrap();
        let cfg = TransientConfig::new(20e-6);
        let probes: Vec<Probe> = (0..NUM_CORES)
            .map(|i| Probe::NodeVoltage(chip.core_node(i)))
            .collect();
        let res = solver
            .run(&ConstantDrive::new(vec![10.0; 6]), &probes, &cfg)
            .unwrap();
        for st in &res.stats {
            assert!(st.mean > 0.9 * chip.params().v_nom);
            assert!(st.peak_to_peak() < 1e-6);
        }
    }

    #[test]
    fn drawer_rejects_zero_chips() {
        let params = DrawerParams {
            chips: 0,
            ..DrawerParams::default()
        };
        assert!(matches!(
            DrawerPdn::build(&params),
            Err(PdnError::InvalidElement { .. })
        ));
    }

    #[test]
    fn drawer_scale_exceeds_sparse_threshold() {
        let drawer = DrawerPdn::build(&DrawerParams::default()).unwrap();
        assert_eq!(drawer.num_chips(), 6);
        let nl = drawer.netlist();
        assert_eq!(nl.current_source_count(), 6 * NUM_CORES);
        assert_eq!(nl.voltage_source_count(), 1);
        let size = nl.system_size();
        assert!(
            size >= 150,
            "drawer must be drawer-scale, got {size} unknowns"
        );
        assert!(size > crate::mna::SPARSE_THRESHOLD);
        let solver = TransientSolver::new(nl).unwrap();
        assert!(solver.uses_sparse(), "drawer must take the sparse path");
    }

    #[test]
    fn drawer_dc_droop_grows_down_the_spine() {
        let drawer = DrawerPdn::build(&DrawerParams::default()).unwrap();
        let mut solver = TransientSolver::new(drawer.netlist()).unwrap();
        let amps = vec![10.0; drawer.num_chips() * NUM_CORES];
        let sol = solver.solve_dc(&ConstantDrive::new(amps)).unwrap();
        let volt = |n: NodeId| sol[n.unknown_index().unwrap()];
        // Under a uniform load, chips farther along the spine see more
        // board-level IR drop than chip 0.
        let v_first = volt(drawer.package_node(0));
        let v_last = volt(drawer.package_node(drawer.num_chips() - 1));
        assert!(
            v_last < v_first,
            "far chip {v_last} should droop below near chip {v_first}"
        );
        // Every chip still lands near nominal.
        for c in 0..drawer.num_chips() {
            let v = volt(drawer.core_node(c, 0));
            assert!(v > 0.9 * drawer.params().chip.v_nom, "chip {c} at {v}");
        }
    }

    #[test]
    fn drawer_chips_are_electrically_identical_chips() {
        // A 1-chip drawer's chip subtree matches the standalone chip: the
        // only difference is the board spine (absent for chip 0).
        let params = DrawerParams {
            chips: 1,
            ..DrawerParams::default()
        };
        let drawer = DrawerPdn::build(&params).unwrap();
        let chip = ChipPdn::build(&params.chip).unwrap();
        assert_eq!(drawer.netlist().system_size(), chip.netlist().system_size());
        let mut ds = TransientSolver::new(drawer.netlist()).unwrap();
        let mut cs = TransientSolver::new(chip.netlist()).unwrap();
        let drive = ConstantDrive::new(vec![15.0; NUM_CORES]);
        let dv = ds.solve_dc(&drive).unwrap();
        let cv = cs.solve_dc(&drive).unwrap();
        for core in 0..NUM_CORES {
            let a = dv[drawer.core_node(0, core).unknown_index().unwrap()];
            let b = cv[chip.core_node(core).unknown_index().unwrap()];
            assert!((a - b).abs() < 1e-12, "core {core}: {a} vs {b}");
        }
    }
}
