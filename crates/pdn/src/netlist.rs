//! Circuit description: nodes and lumped elements.
//!
//! A [`Netlist`] is the shared input of both analyses: the transient
//! solver ([`crate::transient`]) and the AC solver ([`crate::ac`]).
//! Elements use the standard SPICE-like conventions: every two-terminal
//! element connects node `a` to node `b`, with branch voltage
//! `v_ab = v(a) - v(b)` and branch current flowing from `a` to `b`.

use crate::error::PdnError;
use serde::{Deserialize, Serialize};

/// Identifier of a circuit node.
///
/// [`NodeId::GROUND`] is the reference node; all other ids are created by
/// [`Netlist::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The reference (ground) node, fixed at 0 V.
    pub const GROUND: NodeId = NodeId(0);

    /// True for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Index of this node among the MNA unknowns — i.e. its position in
    /// solution vectors returned by the solvers — or `None` for ground.
    pub fn unknown_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

/// Identifier of a time-varying current source within a netlist.
///
/// The transient solver asks its drive callback for one current value per
/// source, indexed by this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceId(pub(crate) usize);

impl SourceId {
    /// Position of this source in the drive vector.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A lumped circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Resistor of `ohms` between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Capacitor of `farads` between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Inductor of `henries` between `a` and `b`.
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries.
        henries: f64,
    },
    /// Ideal DC voltage source holding `v(plus) - v(minus) = volts`.
    VoltageSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source voltage in volts.
        volts: f64,
    },
    /// Time-varying current source drawing current from `from` into `to`.
    ///
    /// For a load (e.g. a core) `from` is the supply node and `to` is
    /// ground: positive drive current discharges the supply node.
    CurrentSource {
        /// Node the current is drawn out of.
        from: NodeId,
        /// Node the current is returned to.
        to: NodeId,
        /// Drive-vector index of this source.
        source: SourceId,
    },
}

/// A circuit under construction.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::netlist::{Netlist, NodeId};
///
/// let mut nl = Netlist::new();
/// let vdd = nl.add_node("vdd");
/// nl.add_voltage_source(vdd, NodeId::GROUND, 1.05).unwrap();
/// let die = nl.add_node("die");
/// nl.add_resistor(vdd, die, 1e-3).unwrap();
/// nl.add_capacitor(die, NodeId::GROUND, 10e-6).unwrap();
/// assert_eq!(nl.node_count(), 3); // ground + vdd + die
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    node_names: Vec<String>,
    elements: Vec<Element>,
    n_vsources: usize,
    n_isources: usize,
}

impl Netlist {
    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        Netlist {
            node_names: vec!["gnd".to_string()],
            elements: Vec::new(),
            n_vsources: 0,
            n_isources: 0,
        }
    }

    /// Adds a named node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.node_names.push(name.into());
        NodeId(self.node_names.len() - 1)
    }

    /// Total number of nodes, including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::UnknownNode`] for an out-of-range id.
    pub fn node_name(&self, node: NodeId) -> Result<&str, PdnError> {
        self.node_names
            .get(node.0)
            .map(String::as_str)
            .ok_or(PdnError::UnknownNode { node: node.0 })
    }

    /// All elements added so far.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of independent voltage sources.
    pub fn voltage_source_count(&self) -> usize {
        self.n_vsources
    }

    /// Number of time-varying current sources.
    pub fn current_source_count(&self) -> usize {
        self.n_isources
    }

    /// Size of the MNA system: non-ground nodes plus one branch-current
    /// unknown per voltage source.
    pub fn system_size(&self) -> usize {
        (self.node_count() - 1) + self.n_vsources
    }

    fn check_node(&self, node: NodeId) -> Result<(), PdnError> {
        if node.0 < self.node_names.len() {
            Ok(())
        } else {
            Err(PdnError::UnknownNode { node: node.0 })
        }
    }

    fn check_value(element: &str, value: f64) -> Result<(), PdnError> {
        if value.is_finite() && value > 0.0 {
            Ok(())
        } else {
            Err(PdnError::InvalidElement {
                element: element.to_string(),
                value,
            })
        }
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance and unknown nodes.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<(), PdnError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_value("resistor", ohms)?;
        self.elements.push(Element::Resistor { a, b, ohms });
        Ok(())
    }

    /// Adds a negative-resistance element (an idealized active device).
    ///
    /// Regular elements reject non-positive values because a passive PDN
    /// is unconditionally stable. This escape hatch deliberately builds
    /// an *unstable* network for solver-robustness and fault-injection
    /// testing: paired with a capacitor, a negative resistor produces
    /// exponential growth that must trip the transient solver's
    /// divergence guard ([`crate::PdnError::Diverged`]) rather than leak
    /// NaN into results.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-negative resistance and unknown nodes.
    pub fn add_negative_resistor(
        &mut self,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), PdnError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(ohms.is_finite() && ohms < 0.0) {
            return Err(PdnError::InvalidElement {
                element: "negative resistor".to_string(),
                value: ohms,
            });
        }
        self.elements.push(Element::Resistor { a, b, ohms });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite capacitance and unknown nodes.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> Result<(), PdnError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_value("capacitor", farads)?;
        self.elements.push(Element::Capacitor { a, b, farads });
        Ok(())
    }

    /// Adds a capacitor with equivalent series resistance by creating an
    /// internal node, returning that node's id.
    ///
    /// # Errors
    ///
    /// Rejects non-positive values and unknown nodes.
    pub fn add_capacitor_with_esr(
        &mut self,
        a: NodeId,
        b: NodeId,
        farads: f64,
        esr_ohms: f64,
    ) -> Result<NodeId, PdnError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_value("capacitor", farads)?;
        Self::check_value("capacitor esr", esr_ohms)?;
        let mid = self.add_node(format!("esr_mid_{}", self.node_names.len()));
        self.add_resistor(a, mid, esr_ohms)?;
        self.add_capacitor(mid, b, farads)?;
        Ok(mid)
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite inductance and unknown nodes.
    pub fn add_inductor(&mut self, a: NodeId, b: NodeId, henries: f64) -> Result<(), PdnError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_value("inductor", henries)?;
        self.elements.push(Element::Inductor { a, b, henries });
        Ok(())
    }

    /// Adds a series resistor-inductor branch between `a` and `b` by
    /// creating an internal node, returning that node's id.
    ///
    /// This is the natural model of an interconnect segment (board trace,
    /// C4 path, on-die grid), whose resistance and inductance act in
    /// series.
    ///
    /// # Errors
    ///
    /// Rejects non-positive values and unknown nodes.
    pub fn add_series_rl(
        &mut self,
        a: NodeId,
        b: NodeId,
        ohms: f64,
        henries: f64,
    ) -> Result<NodeId, PdnError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_value("series rl resistor", ohms)?;
        Self::check_value("series rl inductor", henries)?;
        let mid = self.add_node(format!("rl_mid_{}", self.node_names.len()));
        self.add_resistor(a, mid, ohms)?;
        self.add_inductor(mid, b, henries)?;
        Ok(mid)
    }

    /// Adds an ideal DC voltage source.
    ///
    /// # Errors
    ///
    /// Rejects non-finite voltage and unknown nodes. Zero and negative
    /// voltages are allowed (useful for probes and undervolting studies).
    pub fn add_voltage_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        volts: f64,
    ) -> Result<usize, PdnError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        if !volts.is_finite() {
            return Err(PdnError::InvalidElement {
                element: "voltage source".to_string(),
                value: volts,
            });
        }
        self.elements
            .push(Element::VoltageSource { plus, minus, volts });
        self.n_vsources += 1;
        Ok(self.n_vsources - 1)
    }

    /// Adds a time-varying current source and returns its drive id.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn add_current_source(&mut self, from: NodeId, to: NodeId) -> Result<SourceId, PdnError> {
        self.check_node(from)?;
        self.check_node(to)?;
        let source = SourceId(self.n_isources);
        self.elements
            .push(Element::CurrentSource { from, to, source });
        self.n_isources += 1;
        Ok(source)
    }

    /// Rescales the DC voltage of every voltage source by `factor`
    /// (used by the Vmin harness to undervolt the whole network).
    ///
    /// # Errors
    ///
    /// Rejects non-finite or negative factors with
    /// [`PdnError::InvalidElement`] — a NaN or negative scale would
    /// silently corrupt every downstream solve.
    pub fn scale_voltage_sources(&mut self, factor: f64) -> Result<(), PdnError> {
        if !(factor.is_finite() && factor >= 0.0) {
            return Err(PdnError::InvalidElement {
                element: "voltage source scale factor".to_string(),
                value: factor,
            });
        }
        for el in &mut self.elements {
            if let Element::VoltageSource { volts, .. } = el {
                *volts *= factor;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_sequential_and_named() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        let b = nl.add_node("b");
        assert_eq!(nl.node_name(a).unwrap(), "a");
        assert_eq!(nl.node_name(b).unwrap(), "b");
        assert_eq!(nl.node_name(NodeId::GROUND).unwrap(), "gnd");
        assert!(a != b && !a.is_ground());
    }

    #[test]
    fn unknown_index_maps_ground_to_none() {
        assert_eq!(NodeId::GROUND.unknown_index(), None);
        assert_eq!(NodeId(3).unknown_index(), Some(2));
    }

    #[test]
    fn rejects_invalid_values() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        assert!(nl.add_resistor(a, NodeId::GROUND, 0.0).is_err());
        assert!(nl.add_capacitor(a, NodeId::GROUND, -1.0).is_err());
        assert!(nl.add_inductor(a, NodeId::GROUND, f64::NAN).is_err());
        assert!(nl
            .add_voltage_source(a, NodeId::GROUND, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn rejects_unknown_nodes() {
        let mut nl = Netlist::new();
        let bogus = NodeId(42);
        assert!(matches!(
            nl.add_resistor(bogus, NodeId::GROUND, 1.0),
            Err(PdnError::UnknownNode { node: 42 })
        ));
    }

    #[test]
    fn system_size_counts_vsources() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        let b = nl.add_node("b");
        nl.add_voltage_source(a, NodeId::GROUND, 1.0).unwrap();
        nl.add_resistor(a, b, 1.0).unwrap();
        assert_eq!(nl.system_size(), 3); // 2 nodes + 1 vsource branch
    }

    #[test]
    fn esr_capacitor_creates_internal_node() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        let before = nl.node_count();
        let mid = nl
            .add_capacitor_with_esr(a, NodeId::GROUND, 1e-6, 1e-3)
            .unwrap();
        assert_eq!(nl.node_count(), before + 1);
        assert!(!mid.is_ground());
        assert_eq!(nl.elements().len(), 2);
    }

    #[test]
    fn current_sources_get_sequential_ids() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        let s0 = nl.add_current_source(a, NodeId::GROUND).unwrap();
        let s1 = nl.add_current_source(a, NodeId::GROUND).unwrap();
        assert_eq!(s0.index(), 0);
        assert_eq!(s1.index(), 1);
        assert_eq!(nl.current_source_count(), 2);
    }

    #[test]
    fn scale_voltage_sources_scales_all() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        nl.add_voltage_source(a, NodeId::GROUND, 1.0).unwrap();
        nl.scale_voltage_sources(0.95).unwrap();
        match &nl.elements()[0] {
            Element::VoltageSource { volts, .. } => assert!((volts - 0.95).abs() < 1e-12),
            other => panic!("unexpected element {other:?}"),
        }
    }

    #[test]
    fn scale_voltage_sources_rejects_bad_factors() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        nl.add_voltage_source(a, NodeId::GROUND, 1.0).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
            let err = nl.scale_voltage_sources(bad).unwrap_err();
            assert!(matches!(err, PdnError::InvalidElement { .. }), "{bad}");
        }
        // A rejected factor must leave the netlist untouched.
        match &nl.elements()[0] {
            Element::VoltageSource { volts, .. } => assert_eq!(*volts, 1.0),
            other => panic!("unexpected element {other:?}"),
        }
    }
}
