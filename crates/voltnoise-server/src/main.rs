//! `voltnoise-server` — the campaign daemon's entry point.
//!
//! ```text
//! voltnoise-server [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!                  [--step-ceiling STEPS] [--deadline-ms MS]
//!                  [--max-body BYTES] [--reduced]
//!                  [--store PATH] [--read-store PATH]...
//!                  [--shard-id N] [--restart-gen N]
//!                  [--drain-grace-ms MS]
//!                  [--keep-alive-requests N] [--keep-alive-idle-ms MS]
//! ```
//!
//! Environment: `VOLTNOISE_STORE` (persistent JSONL result store — the
//! resume substrate; `--store` overrides it), `VOLTNOISE_THREADS`
//! (engine worker count). The worker-mode flags are what the fleet
//! supervisor passes when it spawns this binary as a shard: its own
//! `--store`, every sibling's store as a `--read-store` (read-only
//! failover substrate), its ring position as `--shard-id`, and a
//! `--restart-gen` that counts respawns. The chosen address is printed
//! on stdout as `voltnoise-server listening on HOST:PORT`; a graceful
//! drain prints `voltnoise-server drained cleanly` and exits 0.

use std::process::ExitCode;
use voltnoise_server::{Server, ServerConfig};

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_of = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value_of("--addr")?,
            "--workers" => {
                cfg.workers = value_of("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--queue-cap" => {
                cfg.queue_cap = value_of("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap must be a positive integer".to_string())?;
            }
            "--step-ceiling" => {
                cfg.step_ceiling = value_of("--step-ceiling")?
                    .parse()
                    .map_err(|_| "--step-ceiling must be a non-negative integer".to_string())?;
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = value_of("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms must be a positive integer".to_string())?;
            }
            "--max-body" => {
                cfg.max_body = value_of("--max-body")?
                    .parse()
                    .map_err(|_| "--max-body must be a positive integer".to_string())?;
            }
            "--reduced" => cfg.reduced = true,
            "--store" => cfg.store = Some(value_of("--store")?),
            "--read-store" => cfg.read_stores.push(value_of("--read-store")?),
            "--shard-id" => {
                cfg.shard_id = value_of("--shard-id")?
                    .parse()
                    .map_err(|_| "--shard-id must be a non-negative integer".to_string())?;
            }
            "--restart-gen" => {
                cfg.restart_gen = value_of("--restart-gen")?
                    .parse()
                    .map_err(|_| "--restart-gen must be a non-negative integer".to_string())?;
            }
            "--drain-grace-ms" => {
                cfg.drain_grace_ms = value_of("--drain-grace-ms")?
                    .parse()
                    .map_err(|_| "--drain-grace-ms must be a non-negative integer".to_string())?;
            }
            "--keep-alive-requests" => {
                cfg.keep_alive_requests = value_of("--keep-alive-requests")?
                    .parse()
                    .map_err(|_| "--keep-alive-requests must be a positive integer".to_string())?;
                if cfg.keep_alive_requests == 0 {
                    return Err("--keep-alive-requests must be at least 1".to_string());
                }
            }
            "--keep-alive-idle-ms" => {
                cfg.keep_alive_idle_ms = value_of("--keep-alive-idle-ms")?
                    .parse()
                    .map_err(|_| "--keep-alive-idle-ms must be a positive integer".to_string())?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: voltnoise-server [--addr HOST:PORT] [--workers N] [--queue-cap N] \
                     [--step-ceiling STEPS] [--deadline-ms MS] [--max-body BYTES] [--reduced] \
                     [--store PATH] [--read-store PATH]... [--shard-id N] [--restart-gen N] \
                     [--drain-grace-ms MS] [--keep-alive-requests N] [--keep-alive-idle-ms MS]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(why) => {
            eprintln!("voltnoise-server: {why}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("voltnoise-server: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("voltnoise-server: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}
