//! Regenerates paper Fig. 7a: per-core noise vs stimulus frequency,
//! without synchronization.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig7a");
}
