//! The experiment catalog: one [`RegistryEntry`] per paper artifact, in
//! full-report order.
//!
//! Entries sharing a job list (the ΔI campaign behind Figs. 11a, 11b and
//! 13a) run the same [`crate::experiment::Experiment`] with different
//! views, so when a report walks the registry with one engine the later
//! views assemble entirely from the memo cache.

use crate::experiment::{
    run_to_output_settled, ExperimentFailure, ExperimentOutput, RegistryEntry,
};
use voltnoise_system::engine::Engine;
use voltnoise_system::testbed::Testbed;

fn table1(
    tb: &Testbed,
    engine: &Engine,
    _reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    run_to_output_settled(&crate::table1::Table1Experiment, tb, engine)
}

fn fig5(
    tb: &Testbed,
    engine: &Engine,
    _reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    run_to_output_settled(&crate::funnel::FunnelExperiment, tb, engine)
}

fn fig7a(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::freq_sweep::SweepConfig::reduced()
    } else {
        crate::freq_sweep::SweepConfig::paper()
    };
    run_to_output_settled(
        &crate::freq_sweep::SweepExperiment { cfg, synced: false },
        tb,
        engine,
    )
}

fn fig7b(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::impedance::ImpedanceConfig::reduced()
    } else {
        crate::impedance::ImpedanceConfig::paper()
    };
    run_to_output_settled(&crate::impedance::ImpedanceExperiment { cfg }, tb, engine)
}

fn fig8(
    tb: &Testbed,
    engine: &Engine,
    _reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = crate::scope_shot::ScopeConfig::default();
    run_to_output_settled(&crate::scope_shot::ScopeShotExperiment { cfg }, tb, engine)
}

fn fig9(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::freq_sweep::SweepConfig::reduced()
    } else {
        crate::freq_sweep::SweepConfig::paper()
    };
    run_to_output_settled(
        &crate::freq_sweep::SweepExperiment { cfg, synced: true },
        tb,
        engine,
    )
}

fn fig10(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::misalignment::MisalignConfig::reduced()
    } else {
        crate::misalignment::MisalignConfig::paper()
    };
    run_to_output_settled(&crate::misalignment::MisalignExperiment { cfg }, tb, engine)
}

fn delta_i_view(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
    view: crate::delta_i::DeltaIView,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::delta_i::DeltaIConfig::reduced()
    } else {
        crate::delta_i::DeltaIConfig::paper()
    };
    run_to_output_settled(&crate::delta_i::DeltaIExperiment { cfg, view }, tb, engine)
}

fn fig11a(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    delta_i_view(tb, engine, reduced, crate::delta_i::DeltaIView::Fig11a)
}

fn fig11b(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    delta_i_view(tb, engine, reduced, crate::delta_i::DeltaIView::Fig11b)
}

fn fig12(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::margin::MarginConfig::reduced()
    } else {
        crate::margin::MarginConfig::paper()
    };
    run_to_output_settled(&crate::margin::MarginExperiment { cfg }, tb, engine)
}

fn fig13a(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    delta_i_view(tb, engine, reduced, crate::delta_i::DeltaIView::Correlation)
}

fn fig13b(
    tb: &Testbed,
    engine: &Engine,
    _reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let exp = crate::propagation::StepResponseExperiment {
        source_core: 0,
        step_amps: None,
    };
    run_to_output_settled(&exp, tb, engine)
}

fn fig14(
    tb: &Testbed,
    engine: &Engine,
    _reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let exp = crate::propagation::MappingComparisonExperiment {
        stim_freq_hz: 2.5e6,
    };
    run_to_output_settled(&exp, tb, engine)
}

fn fig15(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::mapping_gain::MappingGainConfig::reduced()
    } else {
        crate::mapping_gain::MappingGainConfig::paper()
    };
    run_to_output_settled(
        &crate::mapping_gain::MappingGainExperiment { cfg },
        tb,
        engine,
    )
}

fn drawer_prop(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        voltnoise_system::noise::DrawerStepConfig {
            window_s: 2e-6,
            ..voltnoise_system::noise::DrawerStepConfig::default()
        }
    } else {
        voltnoise_system::noise::DrawerStepConfig::default()
    };
    run_to_output_settled(
        &crate::propagation::DrawerPropagationExperiment { cfg },
        tb,
        engine,
    )
}

fn rom_error(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::rom_error::RomErrorConfig::reduced()
    } else {
        crate::rom_error::RomErrorConfig::paper()
    };
    run_to_output_settled(&crate::rom_error::RomErrorExperiment { cfg }, tb, engine)
}

fn resonance_entropy(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::resonance_entropy::ResonanceEntropyConfig::reduced()
    } else {
        crate::resonance_entropy::ResonanceEntropyConfig::paper()
    };
    run_to_output_settled(
        &crate::resonance_entropy::ResonanceEntropyExperiment { cfg },
        tb,
        engine,
    )
}

fn guardband(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::guardband_study::GuardbandConfig::reduced()
    } else {
        crate::guardband_study::GuardbandConfig::paper()
    };
    run_to_output_settled(
        &crate::guardband_study::GuardbandExperiment { cfg },
        tb,
        engine,
    )
}

fn rack_map(
    tb: &Testbed,
    engine: &Engine,
    reduced: bool,
) -> Result<ExperimentOutput, ExperimentFailure> {
    let cfg = if reduced {
        crate::rack_map::RackMapConfig::reduced()
    } else {
        crate::rack_map::RackMapConfig::paper()
    };
    run_to_output_settled(&crate::rack_map::RackMapExperiment { cfg }, tb, engine)
}

/// All registered experiments, in full-report order.
pub(crate) static ENTRIES: &[RegistryEntry] = &[
    RegistryEntry {
        id: "table1",
        title: "Table I: EPI profile extremes",
        in_report: true,
        run: table1,
    },
    RegistryEntry {
        id: "fig5",
        title: "Fig. 5: maximum-power sequence search funnel",
        in_report: true,
        run: fig5,
    },
    RegistryEntry {
        id: "fig7a",
        title: "Fig. 7a: noise vs stimulus frequency, unsynchronized",
        in_report: true,
        run: fig7a,
    },
    RegistryEntry {
        id: "fig7b",
        title: "Fig. 7b: die-level impedance profile",
        in_report: true,
        run: fig7b,
    },
    RegistryEntry {
        id: "fig8",
        title: "Fig. 8: oscilloscope shot under max dI/dt stressmark",
        in_report: true,
        run: fig8,
    },
    RegistryEntry {
        id: "fig9",
        title: "Fig. 9: noise vs stimulus frequency, TOD-synchronized",
        in_report: true,
        run: fig9,
    },
    RegistryEntry {
        id: "fig10",
        title: "Fig. 10: noise vs maximum stressmark misalignment",
        in_report: true,
        run: fig10,
    },
    RegistryEntry {
        id: "fig11a",
        title: "Fig. 11a: max noise vs dI fraction",
        in_report: true,
        run: fig11a,
    },
    RegistryEntry {
        id: "fig11b",
        title: "Fig. 11b: average noise by workload distribution",
        in_report: true,
        run: fig11b,
    },
    RegistryEntry {
        id: "fig12",
        title: "Fig. 12: available voltage margin (Vmin campaign)",
        in_report: true,
        run: fig12,
    },
    RegistryEntry {
        id: "fig13a",
        title: "Fig. 13a: inter-core noise correlation",
        in_report: true,
        run: fig13a,
    },
    RegistryEntry {
        id: "fig13b",
        title: "Fig. 13b: simulated dI step propagation to all cores",
        in_report: true,
        run: fig13b,
    },
    RegistryEntry {
        id: "fig14",
        title: "Fig. 14: split vs clustered mapping of 3 stressmarks",
        in_report: true,
        run: fig14,
    },
    RegistryEntry {
        id: "fig15",
        title: "Fig. 15: noise-aware mapping opportunity",
        in_report: true,
        run: fig15,
    },
    RegistryEntry {
        id: "guardband",
        title: "§VII-B: utilization-based dynamic guard-banding",
        in_report: true,
        run: guardband,
    },
    // Drawer-scale study: not part of the golden report (figure bytes
    // stay fixed); runnable on demand and exercised by the bench harness.
    RegistryEntry {
        id: "drawer-prop",
        title: "Drawer study: dI step propagation across chips on a shared board PDN",
        in_report: false,
        run: drawer_prop,
    },
    // ROM accuracy study: backs the macromodel's error-budget contract;
    // like the drawer study it stays out of the golden report.
    RegistryEntry {
        id: "rom-error",
        title: "ROM study: macromodel error vs budget on the drawer step",
        in_report: false,
        run: rom_error,
    },
    // Signal study: spectral + entropy assessment of the die resonance
    // band. Out of the golden report (figure bytes stay fixed); it has
    // its own golden file under tests/golden/.
    RegistryEntry {
        id: "resonance-entropy",
        title: "Signal study: entropy carried by the die resonance band",
        in_report: false,
        run: resonance_entropy,
    },
    // Rack-scale §VII placement study: naive vs noise-aware placement
    // over a process-variated chip population. Out of the golden report
    // (figure bytes stay fixed); exercised by the bench harness.
    RegistryEntry {
        id: "rack-map",
        title: "Rack study: noise-aware placement over a variated chip population",
        in_report: false,
        run: rack_map,
    },
];
