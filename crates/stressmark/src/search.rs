//! Steps 4–5 of the sequence search (paper Fig. 5): IPC filtering and
//! power evaluation, plus the minimum- and medium-power sequence
//! construction of §IV-B/V-D.

use crate::candidates::{select_candidates, Candidate};
use crate::filter::{filter_combinations, FilterConfig, SEQ_LEN};
use serde::{Deserialize, Serialize};
use voltnoise_uarch::epi::EpiProfile;
use voltnoise_uarch::isa::{Isa, Opcode};
use voltnoise_uarch::kernel::Kernel;
use voltnoise_uarch::pipeline::{estimate_throughput, CoreConfig};

/// A power-evaluated sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceEval {
    /// The instruction sequence (one loop iteration).
    pub body: Vec<Opcode>,
    /// Mnemonics, for reports.
    pub mnemonics: Vec<String>,
    /// Measured micro-ops per cycle.
    pub ipc: f64,
    /// Measured loop power in watts.
    pub power_w: f64,
    /// Measured supply current in amperes.
    pub current_a: f64,
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Candidates that survive the IPC filter and get power-evaluated
    /// (the paper keeps the "top thousand").
    pub ipc_keep: usize,
    /// Loop iterations used for each power evaluation.
    pub eval_iterations: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            ipc_keep: 1000,
            eval_iterations: 300,
        }
    }
}

/// Funnel counts and the winning sequence of a search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The nine selected candidates.
    pub candidates: Vec<Candidate>,
    /// Combinations enumerated (9^6 = 531 441 for nine candidates).
    pub total_combinations: usize,
    /// Sequences surviving the microarchitectural filter.
    pub after_microarch: usize,
    /// Sequences surviving the IPC filter (≤ `ipc_keep`).
    pub after_ipc: usize,
    /// The maximum-power sequence.
    pub best: SequenceEval,
    /// The next-best evaluated sequences (for validation on "different
    /// processors" and ablation studies).
    pub runners_up: Vec<SequenceEval>,
}

fn evaluate(isa: &Isa, core: &CoreConfig, body: &[Opcode], iterations: usize) -> SequenceEval {
    let kernel = Kernel::from_sequence("seq_eval", body.to_vec(), iterations);
    let m = kernel.run(isa, core);
    SequenceEval {
        body: body.to_vec(),
        mnemonics: body
            .iter()
            .map(|&op| isa.def(op).mnemonic.clone())
            .collect(),
        ipc: m.ipc,
        power_w: m.avg_power_w,
        current_a: m.avg_current_a,
    }
}

/// Runs the full maximum-power sequence search (paper Fig. 5):
/// candidate selection → 9^6 combinations → microarchitectural filter →
/// IPC filter → power evaluation.
///
/// # Examples
///
/// ```no_run
/// use voltnoise_stressmark::search::{find_max_power_sequence, SearchConfig};
/// use voltnoise_uarch::{epi::EpiProfile, isa::Isa, pipeline::CoreConfig};
///
/// let isa = Isa::zlike();
/// let core = CoreConfig::default();
/// let profile = EpiProfile::generate(&isa, &core);
/// let outcome = find_max_power_sequence(&isa, &core, &profile, &SearchConfig::default());
/// assert!(outcome.best.power_w > 2.0 * core.static_power_w * 0.8);
/// ```
pub fn find_max_power_sequence(
    isa: &Isa,
    core: &CoreConfig,
    profile: &EpiProfile,
    cfg: &SearchConfig,
) -> SearchOutcome {
    let candidates = select_candidates(isa, profile);
    let cand_ops: Vec<Opcode> = candidates.iter().map(|c| c.opcode).collect();
    let filtered = filter_combinations(isa, core, &FilterConfig::default(), &cand_ops);
    let after_microarch = filtered.survivors.len();

    // IPC filter: fast analytic throughput, keep the top `ipc_keep`.
    // Many sequences tie at the dispatch-width bound, so ties are broken
    // by the static energy sum — a free proxy that keeps the
    // highest-power candidates in the evaluated set.
    let mut scored: Vec<(f64, f64, [Opcode; SEQ_LEN])> = filtered
        .survivors
        .into_iter()
        .map(|seq| {
            let energy: f64 = seq.iter().map(|&op| isa.def(op).energy_pj).sum();
            (estimate_throughput(isa, core, &seq), energy, seq)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.total_cmp(&a.1)));
    scored.truncate(cfg.ipc_keep);
    let after_ipc = scored.len();

    // Power evaluation of the survivors.
    let mut evals: Vec<SequenceEval> = scored
        .iter()
        .map(|(_, _, seq)| evaluate(isa, core, seq, cfg.eval_iterations))
        .collect();
    evals.sort_by(|a, b| b.power_w.total_cmp(&a.power_w));
    let best = evals.remove(0);
    evals.truncate(8);

    SearchOutcome {
        candidates,
        total_combinations: filtered.total,
        after_microarch,
        after_ipc,
        best,
        runners_up: evals,
    }
}

/// The minimum-power sequence: the last instruction of the EPI rank,
/// repeated (paper §IV-B — long-latency serializing instructions beat
/// `nop` because "they stall all parts of the processor").
pub fn min_power_sequence(isa: &Isa, core: &CoreConfig, profile: &EpiProfile) -> SequenceEval {
    let op = profile.min_power_opcode();
    // A single serializing op per loop iteration; its loop power is
    // iteration-count independent.
    evaluate(isa, core, &[op], 40.max(core.dispatch_width))
}

/// Composes a sequence whose loop power approximates `target_w` by mixing
/// instructions of the maximum-power sequence with low-energy filler —
/// used for the paper's "medium dI/dt" workload, which "consumes exactly
/// the average between the maximum and the minimum power sequence" (§V-D).
pub fn find_sequence_with_power(
    isa: &Isa,
    core: &CoreConfig,
    max_seq: &SequenceEval,
    target_w: f64,
    iterations: usize,
) -> SequenceEval {
    // Filler: the cheapest single-cycle FXU op keeps IPC high while
    // contributing little energy. An ISA with no such op (impossible for
    // z-like ISAs, but profiles are data) degrades to the max sequence.
    let Some(filler) = isa
        .iter()
        .filter(|(_, d)| d.latency <= 1 && !d.ends_group && !d.serializing && d.occupancy == 1)
        .min_by(|a, b| a.1.energy_pj.total_cmp(&b.1.energy_pj))
        .map(|(op, _)| op)
    else {
        return max_seq.clone();
    };

    // Replace 0..=len positions of the max sequence with filler and pick
    // the mix closest to the target power. k = 0 (the unmodified max
    // sequence) seeds the comparison, so `best` always exists.
    let mut best = evaluate(isa, core, &max_seq.body, iterations);
    for k in 1..=max_seq.body.len() {
        let mut body = max_seq.body.clone();
        // Replace the highest-energy non-branch positions first so group
        // structure (branches at group ends) survives.
        let mut order: Vec<usize> = (0..body.len()).collect();
        order.sort_by(|&a, &b| {
            let ea = isa.def(max_seq.body[a]).energy_pj;
            let eb = isa.def(max_seq.body[b]).energy_pj;
            let ba = isa.def(max_seq.body[a]).ends_group;
            let bb = isa.def(max_seq.body[b]).ends_group;
            ba.cmp(&bb).then(eb.total_cmp(&ea))
        });
        for &pos in order.iter().take(k) {
            body[pos] = filler;
        }
        let eval = evaluate(isa, core, &body, iterations);
        if (eval.power_w - target_w).abs() < (best.power_w - target_w).abs() {
            best = eval;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    struct Fixture {
        isa: Isa,
        core: CoreConfig,
        profile: EpiProfile,
        outcome: SearchOutcome,
    }

    fn fixture() -> &'static Fixture {
        static CELL: OnceLock<Fixture> = OnceLock::new();
        CELL.get_or_init(|| {
            let isa = Isa::zlike();
            let core = CoreConfig::default();
            let profile = EpiProfile::generate(&isa, &core);
            let outcome = find_max_power_sequence(
                &isa,
                &core,
                &profile,
                &SearchConfig {
                    ipc_keep: 200,
                    eval_iterations: 150,
                },
            );
            Fixture {
                isa,
                core,
                profile,
                outcome,
            }
        })
    }

    #[test]
    fn funnel_shape_matches_paper() {
        let f = fixture();
        let o = &f.outcome;
        assert_eq!(o.total_combinations, 531_441);
        assert!(
            o.after_microarch > 5_000 && o.after_microarch < 120_000,
            "after_microarch = {}",
            o.after_microarch
        );
        assert_eq!(o.after_ipc, 200);
    }

    #[test]
    fn best_sequence_sustains_high_ipc() {
        let f = fixture();
        assert!(f.outcome.best.ipc > 2.5, "ipc = {}", f.outcome.best.ipc);
    }

    #[test]
    fn best_beats_every_single_instruction_loop() {
        let f = fixture();
        let top_single = f.profile.top(1)[0].power_w;
        assert!(
            f.outcome.best.power_w > top_single,
            "best {} vs single {}",
            f.outcome.best.power_w,
            top_single
        );
    }

    #[test]
    fn min_power_sequence_uses_rank_tail() {
        let f = fixture();
        let min = min_power_sequence(&f.isa, &f.core, &f.profile);
        assert_eq!(min.body[0], f.profile.min_power_opcode());
        assert!(min.power_w < f.outcome.best.power_w / 1.8);
    }

    #[test]
    fn medium_sequence_hits_average_power() {
        let f = fixture();
        let min = min_power_sequence(&f.isa, &f.core, &f.profile);
        let target = (f.outcome.best.power_w + min.power_w) / 2.0;
        let med = find_sequence_with_power(&f.isa, &f.core, &f.outcome.best, target, 150);
        let rel = (med.power_w - target).abs() / target;
        assert!(rel < 0.08, "medium {} vs target {target}", med.power_w);
    }

    #[test]
    fn runners_up_are_ordered_and_close() {
        let f = fixture();
        let best = f.outcome.best.power_w;
        let rs = &f.outcome.runners_up;
        assert!(!rs.is_empty());
        assert!(rs.windows(2).all(|w| w[0].power_w >= w[1].power_w));
        assert!(rs[0].power_w <= best);
        assert!(rs[0].power_w > best * 0.9);
    }
}
