//! Register dependencies between instructions (paper §IV-C).
//!
//! The paper's stressmark sequences are dependency-free, but the authors
//! "explored the addition of instruction dependencies between high and
//! low power sequences to ensure a sharper activity change" and found
//! "results were similar". This module adds an optional register-level
//! dependency model — a register file, operand assignment policies, and
//! RAW-hazard-aware issue timing — so that exploration can be reproduced.

use crate::isa::{Isa, Opcode};
use crate::pipeline::{form_groups, CoreConfig, SimOutcome};
use crate::units::UnitKind;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Number of architected general registers in the model.
pub const NUM_REGS: usize = 16;

/// How operands are assigned to a kernel's instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandPolicy {
    /// Round-robin destinations, sources never read a recent destination:
    /// the paper's dependency-free micro-benchmark style.
    Independent,
    /// Each instruction reads the previous instruction's destination — a
    /// serial dependency chain.
    Chained,
    /// Instructions at the start of each high/low phase read the last
    /// destination of the previous phase: the paper's "sharper activity
    /// change" experiment (dependencies only across the phase boundary).
    PhaseLinked {
        /// Body offset at which the second phase begins.
        phase_boundary: usize,
    },
}

/// One instruction with assigned operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperandInstr {
    /// The instruction.
    pub opcode: Opcode,
    /// Destination register.
    pub dst: u8,
    /// Source registers.
    pub srcs: [u8; 2],
}

/// Assigns operands to a body according to a policy.
pub fn assign_operands(body: &[Opcode], policy: OperandPolicy) -> Vec<OperandInstr> {
    let n = NUM_REGS as u8;
    body.iter()
        .enumerate()
        .map(|(i, &opcode)| {
            let dst = (i as u8) % n;
            let srcs = match policy {
                OperandPolicy::Independent => {
                    // Sources far from any recent destination.
                    let s = (i as u8 + n / 2) % n;
                    [s, (s + 1) % n]
                }
                OperandPolicy::Chained => {
                    let prev = if i == 0 { n - 1 } else { (i as u8 - 1) % n };
                    [prev, prev]
                }
                OperandPolicy::PhaseLinked { phase_boundary } => {
                    if i == 0 || i == phase_boundary {
                        // Read the last destination of the other phase.
                        let link = if i == 0 {
                            (body.len() as u8).wrapping_sub(1) % n
                        } else {
                            (phase_boundary as u8).wrapping_sub(1) % n
                        };
                        [link, link]
                    } else {
                        let s = (i as u8 + n / 2) % n;
                        [s, (s + 1) % n]
                    }
                }
            };
            OperandInstr { opcode, dst, srcs }
        })
        .collect()
}

/// Cycle-level simulation with RAW-hazard tracking: an instruction issues
/// no earlier than the ready time of its source registers.
///
/// Structural modeling matches [`crate::pipeline::PipelineSim`]; the only
/// addition is the register scoreboard.
pub fn run_with_deps(
    isa: &Isa,
    cfg: &CoreConfig,
    body: &[OperandInstr],
    iterations: usize,
) -> SimOutcome {
    let opcode_body: Vec<Opcode> = body.iter().map(|oi| oi.opcode).collect();
    let groups = form_groups(isa, cfg, &opcode_body);
    let mut port_free: Vec<Vec<u64>> = UnitKind::ALL
        .iter()
        .map(|u| vec![0u64; u.ports()])
        .collect();
    let mut reg_ready = [0u64; NUM_REGS];
    let mut inflight: VecDeque<u64> = VecDeque::new();
    let mut retire_watermark = 0u64;
    let mut max_completion = 0u64;
    let mut dispatch_cycle = 0u64;
    let mut serialize_until = 0u64;
    let mut uops = 0u64;
    let mut energy = 0.0f64;

    for _ in 0..iterations {
        for group in &groups {
            dispatch_cycle = (dispatch_cycle + 1).max(serialize_until);
            let is_serializing = group.iter().any(|&i| isa.def(body[i].opcode).serializing);
            if is_serializing {
                dispatch_cycle = dispatch_cycle.max(max_completion + 1);
            }
            while inflight.len() + group.len() > cfg.rob_uops {
                let done = inflight.pop_front().expect("rob accounting");
                retire_watermark = retire_watermark.max(done);
                dispatch_cycle = dispatch_cycle.max(retire_watermark + 1);
            }
            for &i in group {
                let oi = &body[i];
                let def = isa.def(oi.opcode);
                let ports = &mut port_free[def.unit.index()];
                let (best, &free_at) = ports
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .expect("unit has ports");
                // RAW hazards: wait for the sources.
                let src_ready = oi
                    .srcs
                    .iter()
                    .map(|&r| reg_ready[r as usize])
                    .max()
                    .unwrap_or(0);
                let issue = dispatch_cycle.max(free_at).max(src_ready);
                ports[best] = issue + def.occupancy as u64;
                let completion = issue + def.latency as u64;
                reg_ready[oi.dst as usize] = completion;
                max_completion = max_completion.max(completion);
                inflight.push_back(completion);
                uops += 1;
                energy += def.energy_pj;
            }
            if is_serializing {
                serialize_until = max_completion + 1;
            }
        }
    }

    SimOutcome {
        cycles: max_completion.max(dispatch_cycle),
        uops,
        energy_pj: energy,
        cycle_energy_pj: None,
    }
}

/// The §IV-C dependency study: IPC and power of one sequence under the
/// three operand policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DependencyStudy {
    /// Dependency-free metrics (IPC, power W).
    pub independent: (f64, f64),
    /// Fully chained metrics.
    pub chained: (f64, f64),
    /// Phase-linked metrics (the paper's experiment).
    pub phase_linked: (f64, f64),
}

impl DependencyStudy {
    /// Runs the study on a sequence.
    pub fn run(isa: &Isa, cfg: &CoreConfig, body: &[Opcode], iterations: usize) -> Self {
        let eval = |policy: OperandPolicy| -> (f64, f64) {
            let operands = assign_operands(body, policy);
            let out = run_with_deps(isa, cfg, &operands, iterations);
            (out.ipc(), out.avg_power_w(cfg))
        };
        DependencyStudy {
            independent: eval(OperandPolicy::Independent),
            chained: eval(OperandPolicy::Chained),
            phase_linked: eval(OperandPolicy::PhaseLinked {
                phase_boundary: body.len() / 2,
            }),
        }
    }

    /// The paper's conclusion: phase-boundary dependencies barely change
    /// power ("results were similar").
    pub fn phase_link_power_delta(&self) -> f64 {
        (self.phase_linked.1 - self.independent.1).abs() / self.independent.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Isa;

    fn body(isa: &Isa) -> Vec<Opcode> {
        ["CHHSI", "L", "CIB", "CHHSI", "MADBR", "CIB"]
            .iter()
            .map(|m| isa.opcode(m).unwrap())
            .collect()
    }

    #[test]
    fn independent_operands_match_structural_sim() {
        let isa = Isa::zlike();
        let cfg = CoreConfig::default();
        let b = body(&isa);
        let operands = assign_operands(&b, OperandPolicy::Independent);
        let with_regs = run_with_deps(&isa, &cfg, &operands, 300);
        let structural = crate::pipeline::PipelineSim::new(&isa, &cfg).run(&b, 300, false);
        let rel = (with_regs.ipc() - structural.ipc()).abs() / structural.ipc();
        assert!(
            rel < 0.05,
            "dep-free {} vs structural {}",
            with_regs.ipc(),
            structural.ipc()
        );
    }

    #[test]
    fn chained_operands_serialize_execution() {
        let isa = Isa::zlike();
        let cfg = CoreConfig::default();
        let b = body(&isa);
        let indep = run_with_deps(
            &isa,
            &cfg,
            &assign_operands(&b, OperandPolicy::Independent),
            300,
        );
        let chained = run_with_deps(
            &isa,
            &cfg,
            &assign_operands(&b, OperandPolicy::Chained),
            300,
        );
        assert!(
            chained.ipc() < indep.ipc() * 0.6,
            "chained {} vs independent {}",
            chained.ipc(),
            indep.ipc()
        );
    }

    #[test]
    fn paper_finding_phase_links_change_little() {
        // §IV-C: "results were similar".
        let isa = Isa::zlike();
        let cfg = CoreConfig::default();
        let study = DependencyStudy::run(&isa, &cfg, &body(&isa), 300);
        assert!(
            study.phase_link_power_delta() < 0.05,
            "phase-link delta {:.3}",
            study.phase_link_power_delta()
        );
    }

    #[test]
    fn operand_assignment_uses_valid_registers() {
        let isa = Isa::zlike();
        let b = body(&isa);
        for policy in [
            OperandPolicy::Independent,
            OperandPolicy::Chained,
            OperandPolicy::PhaseLinked { phase_boundary: 3 },
        ] {
            for oi in assign_operands(&b, policy) {
                assert!((oi.dst as usize) < NUM_REGS);
                assert!(oi.srcs.iter().all(|&s| (s as usize) < NUM_REGS));
            }
        }
    }

    #[test]
    fn chained_sources_reference_previous_destination() {
        let isa = Isa::zlike();
        let b = body(&isa);
        let ops = assign_operands(&b, OperandPolicy::Chained);
        for pair in ops.windows(2) {
            assert_eq!(pair[1].srcs[0], pair[0].dst);
        }
    }
}
