//! `voltnoise-server` — the campaign daemon's entry point.
//!
//! ```text
//! voltnoise-server [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!                  [--step-ceiling STEPS] [--deadline-ms MS]
//!                  [--max-body BYTES] [--reduced]
//! ```
//!
//! Environment: `VOLTNOISE_STORE` (persistent JSONL result store — the
//! resume substrate), `VOLTNOISE_THREADS` (engine worker count).
//! The chosen address is printed on stdout as
//! `voltnoise-server listening on HOST:PORT`; a graceful drain prints
//! `voltnoise-server drained cleanly` and exits 0.

use std::process::ExitCode;
use voltnoise_server::{Server, ServerConfig};

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_of = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value_of("--addr")?,
            "--workers" => {
                cfg.workers = value_of("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--queue-cap" => {
                cfg.queue_cap = value_of("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap must be a positive integer".to_string())?;
            }
            "--step-ceiling" => {
                cfg.step_ceiling = value_of("--step-ceiling")?
                    .parse()
                    .map_err(|_| "--step-ceiling must be a non-negative integer".to_string())?;
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = value_of("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms must be a positive integer".to_string())?;
            }
            "--max-body" => {
                cfg.max_body = value_of("--max-body")?
                    .parse()
                    .map_err(|_| "--max-body must be a positive integer".to_string())?;
            }
            "--reduced" => cfg.reduced = true,
            "--help" | "-h" => {
                return Err(
                    "usage: voltnoise-server [--addr HOST:PORT] [--workers N] [--queue-cap N] \
                     [--step-ceiling STEPS] [--deadline-ms MS] [--max-body BYTES] [--reduced]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(why) => {
            eprintln!("voltnoise-server: {why}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("voltnoise-server: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("voltnoise-server: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}
