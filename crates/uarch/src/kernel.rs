//! Micro-benchmark kernels: looped instruction sequences with measured
//! power, IPC and current.
//!
//! A [`Kernel`] is the paper's micro-benchmark skeleton: "an endless loop
//! with 4000 repetitions of the instruction, without dependencies"
//! (§IV-A), generalized to arbitrary bodies for sequence search and
//! stressmark construction.

use crate::isa::{Isa, Opcode};
use crate::pipeline::{CoreConfig, PipelineSim};
use serde::{Deserialize, Serialize};

/// Default repetition count of the EPI micro-benchmark skeleton.
pub const EPI_REPETITIONS: usize = 4000;

/// A looped instruction sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Display name.
    pub name: String,
    /// One loop iteration's instructions.
    pub body: Vec<Opcode>,
    /// Number of loop iterations to simulate.
    pub iterations: usize,
}

impl Kernel {
    /// Builds the EPI micro-benchmark for one instruction: `reps`
    /// dependency-free repetitions, split into loop iterations of at most
    /// 400 body instructions.
    pub fn single_instruction(isa: &Isa, op: Opcode, reps: usize) -> Self {
        let unroll = reps.clamp(1, 400);
        let iterations = reps.div_ceil(unroll);
        Kernel {
            name: format!("epi_{}", isa.def(op).mnemonic),
            body: vec![op; unroll],
            iterations,
        }
    }

    /// Builds a kernel from a sequence body, repeated enough times to
    /// reach a steady state (at least 200 iterations).
    pub fn from_sequence(name: impl Into<String>, body: Vec<Opcode>, iterations: usize) -> Self {
        Kernel {
            name: name.into(),
            body,
            iterations: iterations.max(1),
        }
    }

    /// Micro-ops per loop iteration.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Simulates the kernel and reports aggregate metrics.
    pub fn run(&self, isa: &Isa, cfg: &CoreConfig) -> RunMetrics {
        let out = PipelineSim::new(isa, cfg).run(&self.body, self.iterations, false);
        RunMetrics {
            cycles: out.cycles,
            uops: out.uops,
            ipc: out.ipc(),
            avg_power_w: out.avg_power_w(cfg),
            avg_current_a: out.avg_current_a(cfg),
            energy_per_uop_pj: if out.uops == 0 {
                0.0
            } else {
                out.energy_pj / out.uops as f64
            },
        }
    }

    /// Simulates the kernel and additionally returns the per-cycle supply
    /// current in amperes (static + dynamic).
    pub fn run_traced(&self, isa: &Isa, cfg: &CoreConfig) -> (RunMetrics, Vec<f64>) {
        let out = PipelineSim::new(isa, cfg).run(&self.body, self.iterations, true);
        let metrics = RunMetrics {
            cycles: out.cycles,
            uops: out.uops,
            ipc: out.ipc(),
            avg_power_w: out.avg_power_w(cfg),
            avg_current_a: out.avg_current_a(cfg),
            energy_per_uop_pj: if out.uops == 0 {
                0.0
            } else {
                out.energy_pj / out.uops as f64
            },
        };
        let static_current = cfg.static_power_w / cfg.v_nom;
        let trace = out
            .cycle_energy_pj
            .unwrap_or_default()
            .iter()
            .map(|e_pj| static_current + e_pj * 1e-12 * cfg.freq_hz / cfg.v_nom)
            .collect();
        (metrics, trace)
    }
}

/// Aggregate measurements of one kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Simulated cycles.
    pub cycles: u64,
    /// Micro-ops executed.
    pub uops: u64,
    /// Micro-ops per cycle.
    pub ipc: f64,
    /// Average power in watts (static + dynamic).
    pub avg_power_w: f64,
    /// Average supply current in amperes.
    pub avg_current_a: f64,
    /// Average dynamic energy per micro-op in picojoules.
    pub energy_per_uop_pj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Isa, CoreConfig) {
        (Isa::zlike(), CoreConfig::default())
    }

    #[test]
    fn single_instruction_kernel_covers_requested_reps() {
        let (isa, _) = setup();
        let op = isa.opcode("CHHSI").unwrap();
        let k = Kernel::single_instruction(&isa, op, EPI_REPETITIONS);
        assert_eq!(k.body_len() * k.iterations, EPI_REPETITIONS);
    }

    #[test]
    fn high_power_loop_beats_low_power_loop() {
        let (isa, cfg) = setup();
        let cib = Kernel::single_instruction(&isa, isa.opcode("CIB").unwrap(), 4000);
        let srnm = Kernel::single_instruction(&isa, isa.opcode("SRNM").unwrap(), 400);
        let p_hi = cib.run(&isa, &cfg).avg_power_w;
        let p_lo = srnm.run(&isa, &cfg).avg_power_w;
        assert!(p_hi > 1.4 * p_lo, "hi {p_hi} lo {p_lo}");
    }

    #[test]
    fn current_is_power_over_voltage() {
        let (isa, cfg) = setup();
        let k = Kernel::single_instruction(&isa, isa.opcode("L").unwrap(), 2000);
        let m = k.run(&isa, &cfg);
        assert!((m.avg_current_a - m.avg_power_w / cfg.v_nom).abs() < 1e-12);
    }

    #[test]
    fn traced_run_matches_untraced_metrics() {
        let (isa, cfg) = setup();
        let k = Kernel::single_instruction(&isa, isa.opcode("AR").unwrap(), 1200);
        let plain = k.run(&isa, &cfg);
        let (traced, trace) = k.run_traced(&isa, &cfg);
        assert_eq!(plain, traced);
        assert!(!trace.is_empty());
        // Trace average should approximate the mean current (trailing
        // cycles without issues drag it slightly).
        let avg: f64 = trace.iter().sum::<f64>() / trace.len() as f64;
        assert!((avg - traced.avg_current_a).abs() / traced.avg_current_a < 0.1);
    }

    #[test]
    fn nop_like_cheap_loop_is_not_minimum_power() {
        // Paper §IV-B: "the no-operation instruction (nop) is not the
        // optimal candidate. Instead, long-latency instructions ... are
        // better candidates because they stall all parts of the processor."
        let (isa, cfg) = setup();
        let cheap = isa
            .iter()
            .filter(|(_, d)| d.latency <= 1 && d.unit == crate::units::UnitKind::Fxu)
            .min_by(|a, b| a.1.energy_pj.total_cmp(&b.1.energy_pj))
            .unwrap()
            .0;
        let nop_like = Kernel::single_instruction(&isa, cheap, 4000).run(&isa, &cfg);
        let srnm =
            Kernel::single_instruction(&isa, isa.opcode("SRNM").unwrap(), 400).run(&isa, &cfg);
        assert!(
            srnm.avg_power_w < nop_like.avg_power_w,
            "srnm {} vs nop-like {}",
            srnm.avg_power_w,
            nop_like.avg_power_w
        );
    }
}
