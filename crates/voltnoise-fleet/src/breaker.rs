//! Per-shard circuit breaker, driven by health-probe outcomes.
//!
//! State machine (see `DESIGN.md` §2i):
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ──────────────────────────────────▶ Open
//!     ▲                                          │ cooldown elapsed:
//!     │ probe succeeds                           │ allow() admits ONE
//!     │                                          ▼ probe
//!     └────────────────────────────────────── HalfOpen
//!                  probe fails: back to Open, cooldown restarts
//! ```
//!
//! Time is injected through every transition ([`std::time::Instant`]
//! parameters), never read from a clock inside — so the scripted-probe
//! unit tests and the chaos harness replay transitions deterministically.

use std::time::{Duration, Instant};

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are refused until the cooldown elapses.
    Open,
    /// One probe is out; its outcome decides Closed vs Open.
    HalfOpen,
}

/// A circuit breaker for one shard endpoint.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive failures while Closed.
    failures: u32,
    /// Failures (connect errors, probe timeouts) that trip Closed→Open.
    threshold: u32,
    /// How long Open refuses before admitting a half-open probe.
    cooldown: Duration,
    /// When the breaker last opened.
    opened_at: Option<Instant>,
    /// Closed→Open transitions, lifetime (surfaced in fleet stats).
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive
    /// failures (clamped to ≥ 1) and cooling down for `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            failures: 0,
            threshold: threshold.max(1),
            cooldown,
            opened_at: None,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime count of trips to Open.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Whether a request may be sent now. Closed: always. Open: only
    /// once the cooldown has elapsed — which transitions to HalfOpen
    /// and admits exactly one probe; further calls refuse until that
    /// probe's outcome is recorded.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let cooled = self
                    .opened_at
                    .is_none_or(|at| now.duration_since(at) >= self.cooldown);
                if cooled {
                    self.state = BreakerState::HalfOpen;
                }
                cooled
            }
        }
    }

    /// Records a successful probe/request: any state closes.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.failures = 0;
        self.opened_at = None;
    }

    /// Records a failed probe/request at `now`. Closed trips to Open at
    /// the threshold; a HalfOpen probe failure reopens immediately and
    /// restarts the cooldown.
    pub fn record_failure(&mut self, now: Instant) {
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.failures = 0;
        self.opened_at = Some(now);
        self.opens += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COOLDOWN: Duration = Duration::from_millis(100);

    #[test]
    fn scripted_probe_sequence_walks_the_state_machine() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(3, COOLDOWN);
        // Closed: two failures stay under the threshold.
        assert!(b.allow(t0));
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        // Third consecutive failure trips it.
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Open refuses inside the cooldown window.
        assert!(!b.allow(t0 + Duration::from_millis(50)));
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown elapsed: exactly one half-open probe is admitted.
        assert!(b.allow(t0 + COOLDOWN));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(t0 + COOLDOWN), "second probe must wait");
        // The probe succeeds: closed again, failure count reset.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(t0 + COOLDOWN);
        b.record_failure(t0 + COOLDOWN);
        assert_eq!(b.state(), BreakerState::Closed, "count was reset");
    }

    #[test]
    fn failed_half_open_probe_reopens_and_restarts_cooldown() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(1, COOLDOWN);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(t0 + COOLDOWN));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe fails at t0+cooldown: reopen, cooldown restarts there.
        b.record_failure(t0 + COOLDOWN);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(
            !b.allow(t0 + COOLDOWN + Duration::from_millis(50)),
            "old cooldown must not carry over"
        );
        assert!(b.allow(t0 + COOLDOWN + COOLDOWN));
    }

    #[test]
    fn success_interleaved_with_failures_never_trips() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(2, COOLDOWN);
        for _ in 0..10 {
            b.record_failure(t0);
            b.record_success();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 0);
    }
}
