//! Utilization-based dynamic voltage guard-banding (paper §VII-B).
//!
//! Worst-case noise is bounded by the number of cores that can execute a
//! workload (Fig. 11a's regions). A controller that tracks how many
//! cores are active can therefore shrink the supply margin when the chip
//! is partially utilized, raising it again before new cores start.

use serde::{Deserialize, Serialize};
use voltnoise_pdn::topology::NUM_CORES;

/// Guard-band margin table: worst-case noise margin (volts) required for
/// each possible number of active cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardbandTable {
    margin_v: [f64; NUM_CORES + 1],
}

impl GuardbandTable {
    /// Builds the table from per-active-count worst-case noise voltages,
    /// inflated by a multiplicative safety factor.
    ///
    /// # Panics
    ///
    /// Panics if the noise values are not non-decreasing in the active
    /// count (more active cores can never need less margin) after a small
    /// tolerance, or if the safety factor is below 1.
    pub fn from_worst_case_noise(noise_v: [f64; NUM_CORES + 1], safety_factor: f64) -> Self {
        assert!(safety_factor >= 1.0, "safety factor must be >= 1");
        let mut margin_v = [0.0; NUM_CORES + 1];
        let mut running_max = 0.0f64;
        for (m, n) in margin_v.iter_mut().zip(noise_v.iter()) {
            // Enforce monotonicity: a count's margin covers all smaller counts.
            running_max = running_max.max(*n);
            *m = running_max * safety_factor;
        }
        GuardbandTable { margin_v }
    }

    /// Margin for a given number of active cores.
    ///
    /// # Panics
    ///
    /// Panics if `active > NUM_CORES`.
    pub fn margin_v(&self, active: usize) -> f64 {
        self.margin_v[active]
    }

    /// Supply voltage to program for `active` cores, given the failure
    /// voltage of the critical path.
    pub fn voltage_for(&self, active: usize, v_fail: f64) -> f64 {
        v_fail + self.margin_v(active)
    }

    /// The static (worst-case, all cores) setting a conventional design
    /// ships with.
    pub fn static_voltage(&self, v_fail: f64) -> f64 {
        self.voltage_for(NUM_CORES, v_fail)
    }
}

/// The dynamic guard-band controller: raises voltage *before* admitting a
/// new core and lowers it after releasing one, so the margin always
/// covers the worst case of the current utilization.
#[derive(Debug, Clone)]
pub struct GuardbandController {
    table: GuardbandTable,
    v_fail: f64,
    active: usize,
    voltage: f64,
    transitions: u64,
}

impl GuardbandController {
    /// Creates a controller starting with all cores assumed active
    /// (safe default).
    pub fn new(table: GuardbandTable, v_fail: f64) -> Self {
        let voltage = table.static_voltage(v_fail);
        GuardbandController {
            table,
            v_fail,
            active: NUM_CORES,
            voltage,
            transitions: 0,
        }
    }

    /// Currently programmed supply voltage.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Number of voltage transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Updates the active-core count and returns the (possibly changed)
    /// supply voltage. Raising utilization raises voltage first; the
    /// caller must only start the new work after this returns.
    ///
    /// # Panics
    ///
    /// Panics if `active > NUM_CORES`.
    pub fn step(&mut self, active: usize) -> f64 {
        assert!(active <= NUM_CORES, "at most {NUM_CORES} cores");
        let target = self.table.voltage_for(active, self.v_fail);
        if (target - self.voltage).abs() > 1e-12 {
            self.voltage = target;
            self.transitions += 1;
        }
        self.active = active;
        self.voltage
    }
}

/// Energy saving of dynamic guard-banding over the static worst-case
/// setting, for a utilization trace of active-core counts. Dynamic power
/// scales as V², and only active cores burn dynamic power; static
/// (leakage) power scales as V for all cores.
///
/// Returns the fractional saving in `[0, 1)`.
pub fn energy_saving(
    table: &GuardbandTable,
    v_fail: f64,
    utilization_trace: &[usize],
    dynamic_fraction: f64,
) -> f64 {
    if utilization_trace.is_empty() {
        return 0.0;
    }
    let v_static = table.static_voltage(v_fail);
    let mut e_static = 0.0;
    let mut e_dynamic = 0.0;
    for &active in utilization_trace {
        let v = table.voltage_for(active, v_fail);
        let util = active as f64 / NUM_CORES as f64;
        let energy_at = |volts: f64| {
            dynamic_fraction * util * (volts / v_static).powi(2)
                + (1.0 - dynamic_fraction) * (volts / v_static)
        };
        e_static += energy_at(v_static);
        e_dynamic += energy_at(v);
    }
    1.0 - e_dynamic / e_static
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> GuardbandTable {
        GuardbandTable::from_worst_case_noise([0.01, 0.03, 0.05, 0.06, 0.07, 0.08, 0.09], 1.1)
    }

    #[test]
    fn margins_grow_with_active_cores() {
        let t = table();
        for k in 1..=NUM_CORES {
            assert!(t.margin_v(k) >= t.margin_v(k - 1));
        }
        assert!((t.margin_v(6) - 0.09 * 1.1).abs() < 1e-12);
    }

    #[test]
    fn monotonicity_is_enforced_on_noisy_input() {
        let t =
            GuardbandTable::from_worst_case_noise([0.02, 0.05, 0.04, 0.06, 0.06, 0.07, 0.08], 1.0);
        assert!(
            (t.margin_v(2) - 0.05).abs() < 1e-12,
            "dip must be flattened"
        );
    }

    #[test]
    fn controller_raises_before_admitting() {
        let mut c = GuardbandController::new(table(), 0.93);
        let v_all = c.voltage();
        let v_two = c.step(2);
        assert!(v_two < v_all);
        let v_five = c.step(5);
        assert!(v_five > v_two);
        assert_eq!(c.transitions(), 2);
        // Re-stepping the same count changes nothing.
        assert_eq!(c.step(5), v_five);
        assert_eq!(c.transitions(), 2);
    }

    #[test]
    fn saving_is_zero_at_full_utilization() {
        let t = table();
        let s = energy_saving(&t, 0.93, &[6; 100], 0.6);
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn saving_grows_with_idleness() {
        let t = table();
        let busy = energy_saving(&t, 0.93, &[5, 6, 5, 6], 0.6);
        let idle = energy_saving(&t, 0.93, &[1, 2, 1, 2], 0.6);
        assert!(idle > busy);
        assert!(idle > 0.01 && idle < 0.5, "saving = {idle}");
    }

    #[test]
    fn empty_trace_saves_nothing() {
        assert_eq!(energy_saving(&table(), 0.93, &[], 0.6), 0.0);
    }
}
