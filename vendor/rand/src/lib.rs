//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a cargo registry, so
//! the workspace vendors the thin slice of the rand 0.8 API it actually
//! uses: `SmallRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction rand
//! 0.8 uses for `SmallRng` on 64-bit targets — so streams are of high
//! statistical quality and fully deterministic for a given seed.
//!
//! Determinism contract: for a fixed seed the emitted stream is part of
//! the workspace's reproducibility guarantee. Do not change the
//! generator or the sampling arithmetic without re-baselining every
//! seeded experiment.

#![warn(missing_docs)]

use std::ops::Range;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value from the [`Standard`] distribution
    /// (e.g. `rng.gen::<f64>()` for a uniform value in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// The standard (maximum-entropy) distribution for a type.
pub struct Standard;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Debiased multiply-shift rejection (Lemire).
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span.wrapping_neg() % span {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for seed_from_u64.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Snapshots the generator's internal state. Together with
        /// [`SmallRng::from_state`] this allows a seeded stream to be
        /// checkpointed to disk and resumed bit-identically — the
        /// restored generator emits exactly the values the snapshotted
        /// one would have emitted next.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state snapshot taken with
        /// [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_without_bias() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((800..1200).contains(c), "bucket {i}: {c}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..5);
            assert!((-3..5).contains(&v));
        }
    }

    #[test]
    fn state_snapshot_resumes_bit_identically() {
        let mut a = SmallRng::seed_from_u64(1234);
        for _ in 0..17 {
            a.gen::<f64>();
        }
        let snapshot = a.state();
        let mut b = SmallRng::from_state(snapshot);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.08f64..0.20);
            assert!((-0.08..0.20).contains(&x));
        }
    }
}
