//! Criterion benchmarks: one per paper table/figure (reduced-size
//! configurations so the whole suite completes in minutes), plus the
//! DESIGN.md ablation comparisons.
//!
//! These measure the cost of regenerating each artifact; the full-size
//! regeneration binaries live in `src/bin/`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use voltnoise::analysis::{
    ablation, run_delta_i, run_guardband_study, run_impedance, run_mapping_comparison,
    run_mapping_gain, run_margin, run_misalignment, run_scope_shot, run_step_response, run_sweep,
    CorrelationAnalysis, DeltaIConfig, GuardbandConfig, ImpedanceConfig, MappingGainConfig,
    MarginConfig, MisalignConfig, ScopeConfig, SweepConfig,
};
use voltnoise::prelude::*;
use voltnoise::uarch::EpiProfile;

fn configured<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(6));
    g.warm_up_time(Duration::from_secs(1));
    g
}

fn bench_table1_epi(c: &mut Criterion) {
    let isa = Isa::zlike();
    let core = CoreConfig::default();
    let mut g = configured(c, "table1");
    g.bench_function("epi_profile_1301_instructions", |b| {
        b.iter(|| EpiProfile::generate(&isa, &core))
    });
    g.finish();
}

fn bench_sequence_search(c: &mut Criterion) {
    let isa = Isa::zlike();
    let core = CoreConfig::default();
    let profile = EpiProfile::generate(&isa, &core);
    let mut g = configured(c, "fig5_funnel");
    g.bench_function("search_funnel_reduced", |b| {
        b.iter(|| {
            find_max_power_sequence(
                &isa,
                &core,
                &profile,
                &SearchConfig {
                    ipc_keep: 20,
                    eval_iterations: 60,
                },
            )
        })
    });
    g.finish();
}

fn sweep_cfg() -> SweepConfig {
    SweepConfig {
        freqs_hz: vec![45e3, 2.5e6],
        window_s: Some(30e-6),
        seeds: vec![1],
    }
}

fn bench_fig7a(c: &mut Criterion) {
    let tb = Testbed::fast();
    let mut g = configured(c, "fig7a_freq_sweep");
    g.bench_function("unsync_two_band_sweep", |b| {
        b.iter(|| run_sweep(tb, &sweep_cfg(), false).unwrap())
    });
    g.finish();
}

fn bench_fig7b(c: &mut Criterion) {
    let tb = Testbed::fast();
    let mut g = configured(c, "fig7b_impedance");
    g.bench_function("impedance_profile", |b| {
        b.iter(|| run_impedance(tb.chip(), &ImpedanceConfig::reduced()).unwrap())
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let tb = Testbed::fast();
    let cfg = ScopeConfig {
        shot_s: 8e-6,
        ..ScopeConfig::default()
    };
    let mut g = configured(c, "fig8_scope");
    g.bench_function("scope_shot", |b| b.iter(|| run_scope_shot(tb, &cfg).unwrap()));
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let tb = Testbed::fast();
    let mut g = configured(c, "fig9_sync_sweep");
    g.bench_function("sync_two_band_sweep", |b| {
        b.iter(|| run_sweep(tb, &sweep_cfg(), true).unwrap())
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let tb = Testbed::fast();
    let cfg = MisalignConfig {
        max_ticks: vec![0, 1],
        rotations: 1,
        window_s: Some(30e-6),
        ..MisalignConfig::reduced()
    };
    let mut g = configured(c, "fig10_misalignment");
    g.bench_function("misalignment_pair", |b| {
        b.iter(|| run_misalignment(tb, &cfg).unwrap())
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let tb = Testbed::fast();
    let cfg = DeltaIConfig {
        mappings_per_distribution: 1,
        window_s: Some(25e-6),
        ..DeltaIConfig::reduced()
    };
    let mut g = configured(c, "fig11_delta_i");
    g.bench_function("delta_i_campaign", |b| b.iter(|| run_delta_i(tb, &cfg).unwrap()));
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let tb = Testbed::fast();
    let cfg = MarginConfig {
        freqs_hz: vec![2.5e6],
        event_counts: vec![Some(1000), None],
        window_s: 20e-6,
        ..MarginConfig::reduced()
    };
    let mut g = configured(c, "fig12_vmin");
    g.bench_function("vmin_margin_pair", |b| b.iter(|| run_margin(tb, &cfg).unwrap()));
    g.finish();
}

fn bench_fig13a(c: &mut Criterion) {
    let tb = Testbed::fast();
    let cfg = DeltaIConfig {
        mappings_per_distribution: 1,
        window_s: Some(25e-6),
        ..DeltaIConfig::reduced()
    };
    let data = run_delta_i(tb, &cfg).unwrap();
    let mut g = configured(c, "fig13a_correlation");
    g.bench_function("correlation_matrix", |b| {
        b.iter(|| CorrelationAnalysis::from_dataset(&data))
    });
    g.finish();
}

fn bench_fig13b(c: &mut Criterion) {
    let tb = Testbed::fast();
    let mut g = configured(c, "fig13b_step");
    g.bench_function("step_response", |b| {
        b.iter(|| run_step_response(tb.chip(), 0, 12.0).unwrap())
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let tb = Testbed::fast();
    let mut g = configured(c, "fig14_mappings");
    g.bench_function("mapping_comparison", |b| {
        b.iter(|| run_mapping_comparison(tb, 2.5e6).unwrap())
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let tb = Testbed::fast();
    let cfg = MappingGainConfig {
        counts: vec![2],
        window_s: Some(25e-6),
        ..MappingGainConfig::reduced()
    };
    let mut g = configured(c, "fig15_mapping_gain");
    g.bench_function("mapping_gain_k2", |b| b.iter(|| run_mapping_gain(tb, &cfg).unwrap()));
    g.finish();
}

fn bench_guardband(c: &mut Criterion) {
    let tb = Testbed::fast();
    let cfg = GuardbandConfig {
        window_s: Some(20e-6),
        utilizations: vec![0.5],
        trace_len: 32,
        ..GuardbandConfig::reduced()
    };
    let mut g = configured(c, "sec7b_guardband");
    g.bench_function("guardband_study", |b| {
        b.iter(|| run_guardband_study(tb, &cfg).unwrap())
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let tb = Testbed::fast();
    let mut g = configured(c, "ablations");
    g.bench_function("step_refinement_comparison", |b| {
        b.iter(|| ablation::run_step_ablation(tb.chip()).unwrap())
    });
    g.bench_function("decap_comparison", |b| {
        b.iter(|| ablation::run_decap_ablation().unwrap())
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1_epi,
    bench_sequence_search,
    bench_fig7a,
    bench_fig7b,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13a,
    bench_fig13b,
    bench_fig14,
    bench_fig15,
    bench_guardband,
    bench_ablations
);
criterion_main!(figures);
