#!/usr/bin/env bash
# Server smoke test: start voltnoise-server, serve a real batch over
# HTTP, exercise the health/stats routes and the malformed-input path,
# then SIGTERM it and require a clean graceful drain (exit 0, the
# "drained cleanly" line, a compacted store left behind).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT
store="$workdir/results.jsonl"

echo "-- building release voltnoise-server + voltnoise-client"
cargo build -q --release --bin voltnoise-server --bin voltnoise-client

server=target/release/voltnoise-server
client=target/release/voltnoise-client

echo "-- starting the server (reduced testbed, ephemeral port)"
VOLTNOISE_STORE="$store" "$server" --reduced --addr 127.0.0.1:0 \
  >"$workdir/server.out" 2>"$workdir/server.err" &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^voltnoise-server listening on //p' "$workdir/server.out")
  [[ -n "$addr" ]] && break
  kill -0 "$server_pid" 2>/dev/null || {
    echo "FAIL: server died before announcing its address" >&2
    cat "$workdir/server.err" >&2
    exit 1
  }
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "FAIL: server never announced its address" >&2
  exit 1
fi
echo "   listening on $addr"

echo "-- health check"
"$client" "$addr" health | grep -q '^ok$' || {
  echo "FAIL: /healthz did not answer ok" >&2
  exit 1
}

echo "-- posting a 2-job batch"
cat >"$workdir/batch.json" <<'EOF'
{"jobs":[
  {"mapping":["max","idle","idle","idle","idle","idle"],
   "stim_freq_hz":2.5e6,"sync":true,"window_s":5e-6,"seed":7},
  {"mapping":["max","med","idle","idle","idle","idle"],
   "stim_freq_hz":2.5e6,"sync":true,"window_s":5e-6,"seed":7}
]}
EOF
"$client" "$addr" jobs "$workdir/batch.json" >"$workdir/jobs.out"
grep -q '"done":true,"jobs":2,"faults":0' "$workdir/jobs.out" || {
  echo "FAIL: batch did not settle cleanly" >&2
  cat "$workdir/jobs.out" >&2
  exit 1
}

echo "-- malformed body answers 400 without wedging the server"
echo 'not json' >"$workdir/bad.json"
if "$client" "$addr" jobs "$workdir/bad.json" >"$workdir/bad.out" 2>&1; then
  echo "FAIL: malformed batch was accepted" >&2
  exit 1
fi
grep -q '"error":"invalid-request"' "$workdir/bad.out" || {
  echo "FAIL: malformed batch missing the machine-readable error" >&2
  cat "$workdir/bad.out" >&2
  exit 1
}

echo "-- stats reflect the solves"
"$client" "$addr" stats >"$workdir/stats.out"
grep -Eq '"solves": ?2' "$workdir/stats.out" || {
  echo "FAIL: /stats does not show the 2 solves" >&2
  cat "$workdir/stats.out" >&2
  exit 1
}

echo "-- SIGTERM: graceful drain"
kill -TERM "$server_pid"
drained=1
for _ in $(seq 1 100); do
  if ! kill -0 "$server_pid" 2>/dev/null; then
    drained=0
    break
  fi
  sleep 0.1
done
if [[ "$drained" -ne 0 ]]; then
  echo "FAIL: server did not exit within 10 s of SIGTERM" >&2
  exit 1
fi
wait "$server_pid" && rc=0 || rc=$?
server_pid=""
if [[ "$rc" -ne 0 ]]; then
  echo "FAIL: server exited $rc after SIGTERM" >&2
  cat "$workdir/server.err" >&2
  exit 1
fi
grep -q "drained cleanly" "$workdir/server.out" || {
  echo "FAIL: server never reported a clean drain" >&2
  cat "$workdir/server.out" >&2
  exit 1
}
if [[ ! -s "$store" ]]; then
  echo "FAIL: drain left no store at $store" >&2
  exit 1
fi
echo "   store holds $(wc -l <"$store") lines after the drain"

echo "server smoke test passed: served, shed bad input, drained cleanly"
