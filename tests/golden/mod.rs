//! Shared golden-file harness for the byte-identity suites.
//!
//! Golden files live next to this module (`tests/golden/*.txt`). A
//! drift is a hard failure with both lengths in the message; an
//! *intentional* change is blessed by re-running the failing test with
//! `VOLTNOISE_BLESS=1`, which rewrites the file from the live output
//! so the diff lands in review instead of silently in an assertion.
//!
//! Include from a root test target with
//! `#[path = "golden/mod.rs"] mod golden;`.
#![allow(dead_code)]

use std::path::PathBuf;

/// The on-disk golden directory (`tests/golden/` at the repo root).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Asserts `actual` matches `tests/golden/<name>` byte for byte, or
/// rewrites the file when `VOLTNOISE_BLESS=1` is set.
pub fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("VOLTNOISE_BLESS").is_some() {
        std::fs::write(&path, actual)
            .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with VOLTNOISE_BLESS=1",
            path.display()
        )
    });
    assert!(
        actual == golden,
        "output drifted from tests/golden/{name} \
         (lengths: got {} golden {}); if the change is intentional, \
         re-run this test with VOLTNOISE_BLESS=1 and review the diff",
        actual.len(),
        golden.len()
    );
}
