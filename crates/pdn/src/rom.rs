//! Reduced-order PDN macromodel: Krylov moment matching with an
//! empirically enforced error budget.
//!
//! A multi-chip drawer assembles hundreds of MNA unknowns, but its
//! step response is dominated by a handful of smooth electrical modes
//! (the VRM loop, the spine resonance, the per-chip package modes). A
//! long transient spent back-substituting the full 200-unknown system
//! at every step wastes almost all of its work on dynamics that a
//! ~10-state model reproduces to sub-millivolt accuracy.
//!
//! The reduction is PRIMA-style single-input moment matching. The
//! netlist's descriptor form `C·ż + G·z = b·u(t)` (assembled by
//! [`MnaSystem::stamp_dc`] and [`MnaSystem::stamp_capacitance`] over
//! [`MnaSystem::dc_size`] unknowns, taken as a *deviation* from the DC
//! operating point so `z(0) = 0`) is projected onto the Krylov basis of
//! `(G + s₀C)⁻¹C` seeded with `(G + s₀C)⁻¹b`, matching transfer-function
//! moments at the expansion frequency `s₀ = 2π·expansion_hz`.
//!
//! **The error budget is enforced by measurement, not by construction**:
//! the reduced model is integrated over a short calibration window and
//! compared against the full-order solver on the same stimulus; the
//! reduced order grows (the Arnoldi basis is nested, so order `q` is the
//! leading `q×q` block of one projection) until the worst probe-voltage
//! discrepancy fits the caller's [`RomSpec::budget_v`], or the solve
//! fails with [`PdnError::RomBudget`]. A caller never silently gets a
//! model worse than the budget it keyed its results on.

use crate::backend::RomSpec;
use crate::error::PdnError;
use crate::linalg::{LuFactors, Matrix};
use crate::mna::{MnaSystem, SystemPattern};
use crate::netlist::Netlist;
use crate::sparse::{CsrMatrix, SparseLu};
use crate::telemetry::SolverCounters;
use crate::transient::{Drive, Probe, TransientConfig, TransientSolver};
use std::sync::Arc;

/// Relative tolerance below which an Arnoldi candidate vector is
/// treated as linearly dependent ("happy breakdown"): the Krylov space
/// is exhausted and the basis stops growing.
const BREAKDOWN_TOL: f64 = 1e-12;

/// A single-source step stimulus on a fixed netlist — the problem shape
/// the drawer propagation study solves thousands of times: every source
/// draws `idle_amps`, and at `t0_s` the source in drive slot `slot`
/// abruptly draws `delta_amps` more.
#[derive(Debug, Clone)]
pub struct RomStepProblem<'a> {
    /// The network to reduce.
    pub netlist: &'a Netlist,
    /// Drive slot (current-source index) receiving the step.
    pub slot: usize,
    /// Quiescent current of every source, amperes.
    pub idle_amps: f64,
    /// Additional current drawn by `slot` from `t0_s` on, amperes.
    pub delta_amps: f64,
    /// Step time, seconds (must fall inside the calibration window so
    /// the budget check actually exercises the transient).
    pub t0_s: f64,
    /// Simulated window length, seconds.
    pub window_s: f64,
    /// Observation probes; node voltages and source currents both map
    /// onto descriptor unknowns.
    pub probes: &'a [Probe],
    /// Coarse step of the *full-order reference*; the reduced model
    /// dilates this by [`RomSpec::dilation`] away from the edge.
    pub h_coarse: f64,
    /// Fine step used inside the refinement window around the edge.
    pub h_fine: f64,
}

/// Result of a reduced-order step solve.
#[derive(Debug, Clone)]
pub struct RomOutcome {
    /// Sample times, starting at 0 (the DC point).
    pub times: Vec<f64>,
    /// One trace per probe, aligned with `times`, in absolute volts
    /// (DC operating point plus the reduced deviation).
    pub traces: Vec<Vec<f64>>,
    /// Accepted reduced integration steps of the final run.
    pub steps: usize,
    /// Reduced order the calibration settled on.
    pub states: usize,
    /// Worst probe-voltage discrepancy against the full-order solver
    /// over the calibration window (guaranteed `<= spec.budget_v`).
    pub max_error_v: f64,
    /// Work counters: the ROM's own build/integration work plus the
    /// full-order calibration run it was validated against.
    pub counters: SolverCounters,
}

/// A built (projected and calibrated) reduced-order model.
///
/// Obtained via [`ReducedPdn::build`]; [`ReducedPdn::simulate`] then
/// integrates it over any window. [`solve_step_rom`] wraps both for the
/// common one-shot case.
#[derive(Debug, Clone)]
pub struct ReducedPdn {
    /// Active (calibrated) order; `gr`/`cr` leading blocks of this size
    /// are what `simulate` integrates.
    q: usize,
    /// Basis size actually built (row stride of `gr`, `cr`,
    /// `probe_rows`).
    q_built: usize,
    /// Projected conductance `Vᵀ G V`, row-major `q_built × q_built`.
    gr: Vec<f64>,
    /// Projected capacitance `Vᵀ C V`, row-major `q_built × q_built`.
    cr: Vec<f64>,
    /// Projected input vector `Vᵀ b`.
    br: Vec<f64>,
    /// Per-probe output rows (the probe's row of `V`).
    probe_rows: Vec<Vec<f64>>,
    /// Per-probe DC operating-point value (added back to deviations).
    probe_dc: Vec<f64>,
    /// Step description the model was built for.
    t0_s: f64,
    delta_amps: f64,
    h_coarse: f64,
    h_fine: f64,
    /// Worst calibration error at order `q`.
    max_error_v: f64,
    counters: SolverCounters,
}

/// The calibration drive: every source idles, `slot` steps up at `t0`.
/// Must describe exactly the stimulus the descriptor input vector `b`
/// models, or the calibration would validate the wrong problem.
struct StepTailDrive {
    slot: usize,
    idle: f64,
    delta: f64,
    t0: f64,
}

impl Drive for StepTailDrive {
    fn currents(&self, t: f64, out: &mut [f64]) {
        out.fill(self.idle);
        if t >= self.t0 {
            out[self.slot] += self.delta;
        }
    }
    fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
        if self.t0 >= t0 && self.t0 < t1 {
            out.push(self.t0);
        }
    }
}

/// Edge-refinement extents around the step, matching
/// [`TransientConfig`]'s defaults so reduced and full runs refine the
/// same window.
const REFINE_PRE: f64 = 2e-9;
const REFINE_POST: f64 = 10e-9;

impl ReducedPdn {
    /// Builds, projects, and calibrates a reduced model for `problem`.
    ///
    /// # Errors
    ///
    /// [`PdnError::InvalidTimebase`] for inconsistent problem/spec
    /// parameters, [`PdnError::UnknownNode`] for an out-of-range drive
    /// slot, [`PdnError::SingularMatrix`] when the descriptor cannot be
    /// factored, and [`PdnError::RomBudget`] when no order up to
    /// [`RomSpec::max_states`] meets the budget.
    pub fn build(problem: &RomStepProblem<'_>, spec: &RomSpec) -> Result<Self, PdnError> {
        validate(problem, spec)?;
        let sys = MnaSystem::new(problem.netlist);
        if problem.slot >= sys.drive_len() {
            return Err(PdnError::UnknownNode { node: problem.slot });
        }
        let nn = sys.dc_size();
        let mut counters = SolverCounters::default();

        // Assemble the descriptor pair over the shared dc_dynamic
        // pattern: G (static), C (dynamic), and Gs = G + s0*C.
        let pattern = Arc::new(SystemPattern::dc_dynamic(&sys));
        let mut gm = CsrMatrix::<f64>::zeros(pattern.clone());
        sys.stamp_dc(&mut gm);
        let mut cm = CsrMatrix::<f64>::zeros(pattern.clone());
        sys.stamp_capacitance(&mut cm, 1.0);
        let s0 = 2.0 * std::f64::consts::PI * spec.expansion_hz;
        let mut gsm = CsrMatrix::<f64>::zeros(pattern);
        sys.stamp_dc(&mut gsm);
        sys.stamp_capacitance(&mut gsm, s0);
        let gs = SparseLu::factor(&gsm)?;
        counters.lu_factorizations += 1;
        counters.est_flops += gs.factor_flops();

        // DC operating point under the idle drive (deviation reference).
        let mut rhs = vec![0.0; nn];
        for v in &sys.vsources {
            rhs[v.row] = v.volts;
        }
        for s in &sys.isources {
            if let Some(ifrom) = s.from {
                rhs[ifrom] -= problem.idle_amps;
            }
            if let Some(ito) = s.to {
                rhs[ito] += problem.idle_amps;
            }
        }
        let gdc = SparseLu::factor(&gm)?;
        counters.dc_solves += 1;
        counters.lu_factorizations += 1;
        counters.solve_calls += 1;
        counters.sparse_solves += 1;
        counters.est_flops += gdc.factor_flops() + gdc.solve_flops();
        let z_dc = gdc.solve(&rhs)?;
        for (node, &v) in z_dc.iter().enumerate() {
            if !v.is_finite() {
                return Err(PdnError::Diverged {
                    t: 0.0,
                    node,
                    value: v,
                });
            }
        }

        // Input vector: derivative of the RHS w.r.t. the stepped slot's
        // extra current (a load draws out of `from`).
        let mut b = vec![0.0; nn];
        let mut slot_wired = false;
        for s in &sys.isources {
            if s.source != problem.slot {
                continue;
            }
            slot_wired = true;
            if let Some(ifrom) = s.from {
                b[ifrom] -= 1.0;
            }
            if let Some(ito) = s.to {
                b[ito] += 1.0;
            }
        }
        if !slot_wired || b.iter().all(|&v| v == 0.0) {
            // Slot exists but drives only ground: nothing to reduce.
            return Err(PdnError::UnknownNode { node: problem.slot });
        }

        // Arnoldi on (G + s0*C)^-1 * C, seeded with (G + s0*C)^-1 * b,
        // modified Gram-Schmidt. The basis is nested: order q uses the
        // first q vectors, so one build serves every candidate order.
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(spec.max_states);
        let mut v0 = gs.solve(&b)?;
        counters.solve_calls += 1;
        counters.sparse_solves += 1;
        counters.est_flops += gs.solve_flops();
        let norm0 = norm(&v0);
        if !(norm0.is_finite() && norm0 > 0.0) {
            return Err(PdnError::SingularMatrix { column: 0 });
        }
        scale(&mut v0, 1.0 / norm0);
        basis.push(v0);
        while basis.len() < spec.max_states {
            let prev = &basis[basis.len() - 1];
            let cv = cm.mul_vec(prev)?;
            let mut w = gs.solve(&cv)?;
            counters.solve_calls += 1;
            counters.sparse_solves += 1;
            counters.est_flops += gs.solve_flops() + 2 * nn as u64;
            let mut survived = norm(&w);
            for v in &basis {
                let h = dot(v, &w);
                axpy(&mut w, -h, v);
                counters.est_flops += 4 * nn as u64;
            }
            let wn = norm(&w);
            if !(wn.is_finite() && wn > BREAKDOWN_TOL * survived.max(1.0)) {
                break; // Krylov space exhausted at this order.
            }
            survived = wn;
            scale(&mut w, 1.0 / survived);
            basis.push(w);
        }
        let q_built = basis.len();
        counters.rom_states += q_built as u64;

        // One-sided projection onto the basis: Gr = V^T G V, Cr = V^T C V,
        // br = V^T b, probe rows = the probes' rows of V.
        let mut gr = vec![0.0; q_built * q_built];
        let mut cr = vec![0.0; q_built * q_built];
        let mut br = vec![0.0; q_built];
        for (j, vj) in basis.iter().enumerate() {
            let gv = gm.mul_vec(vj)?;
            let cv = cm.mul_vec(vj)?;
            for (i, vi) in basis.iter().enumerate() {
                gr[i * q_built + j] = dot(vi, &gv);
                cr[i * q_built + j] = dot(vi, &cv);
            }
            br[j] = dot(vj, &b);
            counters.est_flops += (4 * q_built as u64 + 6) * nn as u64;
        }
        let (probe_rows, probe_dc) = probe_views(&sys, problem.probes, &basis, &z_dc);

        let mut rom = ReducedPdn {
            q: 0,
            q_built,
            gr,
            cr,
            br,
            probe_rows,
            probe_dc,
            t0_s: problem.t0_s,
            delta_amps: problem.delta_amps,
            h_coarse: problem.h_coarse * spec.dilation.max(1) as f64,
            h_fine: problem.h_fine,
            max_error_v: f64::INFINITY,
            counters,
        };

        // Calibrate: one full-order reference over the short window,
        // then grow the order until the budget is met.
        let drive = StepTailDrive {
            slot: problem.slot,
            idle: problem.idle_amps,
            delta: problem.delta_amps,
            t0: problem.t0_s,
        };
        let mut full = TransientSolver::new(problem.netlist)?;
        let mut cfg = TransientConfig::new(spec.calib_window_s);
        cfg.h_coarse = problem.h_coarse;
        cfg.h_fine = problem.h_fine;
        cfg.settle = 0.0;
        cfg.record_decimation = Some(1);
        let reference = full.run(&drive, problem.probes, &cfg)?;
        rom.counters.merge(&reference.counters);

        let mut best = f64::INFINITY;
        for q in 1..=q_built {
            rom.q = q;
            let trial = rom.simulate(spec.calib_window_s)?;
            let err = worst_error(&reference.times, &reference.traces, &trial);
            if err < best {
                best = err;
            }
            if err <= spec.budget_v {
                rom.max_error_v = err;
                return Ok(rom);
            }
        }
        Err(PdnError::RomBudget {
            budget_v: spec.budget_v,
            achieved_v: best,
            states: q_built,
        })
    }

    /// Calibrated reduced order.
    pub fn states(&self) -> usize {
        self.q
    }

    /// Worst calibration discrepancy against the full solver, volts.
    pub fn max_error_v(&self) -> f64 {
        self.max_error_v
    }

    /// Work counters accumulated so far (build + calibration; merge the
    /// outcome counters of later [`ReducedPdn::simulate`] calls
    /// yourself — they are returned per run).
    pub fn counters(&self) -> SolverCounters {
        self.counters
    }

    /// Integrates the reduced model over `[0, window_s]` with
    /// trapezoidal steps: dilated coarse steps away from the edge, fine
    /// steps inside the refinement window around it. Records every
    /// accepted step (plus the DC point at `t = 0`).
    ///
    /// # Errors
    ///
    /// [`PdnError::SingularMatrix`] if a reduced step matrix cannot be
    /// factored, [`PdnError::Diverged`] on a non-finite reduced state.
    fn simulate(&mut self, window_s: f64) -> Result<RomTrace, PdnError> {
        let q = self.q;
        let stride = self.q_built;
        let n_probes = self.probe_rows.len();
        let mut times = vec![0.0];
        let mut traces: Vec<Vec<f64>> = self.probe_dc.iter().map(|&v| vec![v]).collect();
        let mut z = vec![0.0; q];
        let mut znew = vec![0.0; q];
        let mut rhs = vec![0.0; q];
        // Per-step-size factors of (2C/h + G) plus the explicit-side
        // matrix (2C/h - G); at most three step sizes occur.
        let mut cache: Vec<(u64, LuFactors<f64>, Vec<f64>)> = Vec::new();
        let (w0, w1) = (self.t0_s - REFINE_PRE, self.t0_s + REFINE_POST);
        let eps = self.h_fine * 1e-6;
        let mut t = 0.0f64;
        let mut steps = 0usize;
        while t < window_s - eps {
            let in_window = t + self.h_coarse > w0 && t < w1;
            let mut h = if in_window {
                self.h_fine
            } else {
                self.h_coarse
            };
            if t + h > window_s {
                h = window_s - t;
            }
            let key = h.to_bits();
            let idx = match cache.iter().position(|(k, _, _)| *k == key) {
                Some(i) => i,
                None => {
                    let mut lhs = Matrix::<f64>::zeros(q, q);
                    let mut exp = vec![0.0; q * q];
                    for r in 0..q {
                        for c in 0..q {
                            let g = self.gr[r * stride + c];
                            let cc = 2.0 * self.cr[r * stride + c] / h;
                            lhs[(r, c)] = cc + g;
                            exp[r * q + c] = cc - g;
                        }
                    }
                    self.counters.est_flops += lhs.lu_flops();
                    self.counters.lu_factorizations += 1;
                    cache.push((key, lhs.lu()?, exp));
                    cache.len() - 1
                }
            };
            let t_next = t + h;
            let u0 = if t >= self.t0_s { self.delta_amps } else { 0.0 };
            let u1 = if t_next >= self.t0_s {
                self.delta_amps
            } else {
                0.0
            };
            let (_, lu, exp) = &cache[idx];
            let usum = u0 + u1;
            for r in 0..q {
                let mut acc = self.br[r] * usum;
                for c in 0..q {
                    acc += exp[r * q + c] * z[c];
                }
                rhs[r] = acc;
            }
            lu.solve_into(&rhs, &mut znew)?;
            for (node, &v) in znew.iter().enumerate() {
                if !v.is_finite() {
                    return Err(PdnError::Diverged {
                        t: t_next,
                        node,
                        value: v,
                    });
                }
            }
            std::mem::swap(&mut z, &mut znew);
            t = t_next;
            steps += 1;
            self.counters.rom_solves += 1;
            self.counters.est_flops += (4 * q * q + 4 * q) as u64;
            times.push(t);
            for (p, trace) in traces.iter_mut().enumerate().take(n_probes) {
                let row = &self.probe_rows[p];
                let mut acc = self.probe_dc[p];
                for (c, &zc) in z.iter().enumerate() {
                    acc += row[c] * zc;
                }
                trace.push(acc);
            }
        }
        Ok(RomTrace {
            times,
            traces,
            steps,
        })
    }
}

/// A recorded reduced-model integration.
struct RomTrace {
    times: Vec<f64>,
    traces: Vec<Vec<f64>>,
    steps: usize,
}

/// Builds, calibrates, and runs a reduced-order model for a single-step
/// problem — the one-call entry the system layer uses.
///
/// # Errors
///
/// See [`ReducedPdn::build`]; additionally anything the final
/// integration raises.
pub fn solve_step_rom(
    problem: &RomStepProblem<'_>,
    spec: &RomSpec,
) -> Result<RomOutcome, PdnError> {
    let mut rom = ReducedPdn::build(problem, spec)?;
    let run = rom.simulate(problem.window_s)?;
    Ok(RomOutcome {
        times: run.times,
        traces: run.traces,
        steps: run.steps,
        states: rom.q,
        max_error_v: rom.max_error_v,
        counters: rom.counters,
    })
}

fn validate(problem: &RomStepProblem<'_>, spec: &RomSpec) -> Result<(), PdnError> {
    let bad = |reason: String| Err(PdnError::InvalidTimebase { reason });
    let pos = |v: f64| v.is_finite() && v > 0.0;
    if !(pos(problem.window_s) && pos(problem.h_coarse) && pos(problem.h_fine)) {
        return bad("ROM window and steps must be positive and finite".to_string());
    }
    if problem.h_fine > problem.h_coarse {
        return bad("ROM h_fine must not exceed h_coarse".to_string());
    }
    if !(pos(problem.t0_s) && problem.t0_s < spec.calib_window_s) {
        return bad(format!(
            "ROM step time {:.3e} s must fall inside the calibration window {:.3e} s",
            problem.t0_s, spec.calib_window_s
        ));
    }
    if !(pos(spec.budget_v) && pos(spec.expansion_hz) && pos(spec.calib_window_s)) {
        return bad(
            "ROM budget, expansion frequency and calibration window must be positive".to_string(),
        );
    }
    if spec.max_states == 0 {
        return bad("ROM max_states must be at least 1".to_string());
    }
    if spec.calib_window_s > problem.window_s {
        return bad("ROM calibration window must not exceed the simulated window".to_string());
    }
    Ok(())
}

/// Maps probes to output rows of the basis and DC values: node voltages
/// index node unknowns, source currents index voltage-source branch
/// rows; a ground probe reads a constant zero.
fn probe_views(
    sys: &MnaSystem,
    probes: &[Probe],
    basis: &[Vec<f64>],
    z_dc: &[f64],
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let q = basis.len();
    let mut rows = Vec::with_capacity(probes.len());
    let mut dc = Vec::with_capacity(probes.len());
    for p in probes {
        let idx = match p {
            Probe::NodeVoltage(node) => node.unknown_index(),
            Probe::SourceCurrent(k) => sys.vsources.get(*k).map(|v| v.row),
        };
        match idx {
            Some(i) => {
                rows.push(basis.iter().take(q).map(|v| v[i]).collect());
                dc.push(z_dc[i]);
            }
            None => {
                rows.push(vec![0.0; q]);
                dc.push(0.0);
            }
        }
    }
    (rows, dc)
}

/// Worst absolute discrepancy between the reduced trace and the
/// full-order reference, comparing at the reduced sample times with
/// linear interpolation of the reference.
fn worst_error(ref_times: &[f64], ref_traces: &[Vec<f64>], trial: &RomTrace) -> f64 {
    let mut worst = 0.0f64;
    for (p, trace) in trial.traces.iter().enumerate() {
        let reference = &ref_traces[p];
        for (&t, &v) in trial.times.iter().zip(trace) {
            let r = interp(ref_times, reference, t);
            let e = (v - r).abs();
            if e > worst {
                worst = e;
            }
        }
    }
    worst
}

/// Linear interpolation of `(xs, ys)` at `x`, clamped to the endpoints.
fn interp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let i = xs.partition_point(|&t| t < x);
    if i == 0 {
        return ys[0];
    }
    if i >= xs.len() {
        return ys[ys.len() - 1];
    }
    let (x0, x1) = (xs[i - 1], xs[i]);
    let (y0, y1) = (ys[i - 1], ys[i]);
    if x1 <= x0 {
        return y1;
    }
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * *xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NodeId;
    use crate::topology::{DrawerParams, DrawerPdn};

    fn drawer_problem<'a>(
        drawer: &'a DrawerPdn,
        probes: &'a [Probe],
        window: f64,
    ) -> RomStepProblem<'a> {
        RomStepProblem {
            netlist: drawer.netlist(),
            slot: 0,
            idle_amps: 2.0,
            delta_amps: 10.0,
            t0_s: 0.5e-6,
            window_s: window,
            probes,
            h_coarse: 2e-9,
            h_fine: 0.5e-9,
        }
    }

    #[test]
    fn rom_meets_budget_and_matches_full_solver() {
        let drawer = DrawerPdn::build(&DrawerParams::default()).unwrap();
        let probes = [
            Probe::NodeVoltage(drawer.core_node(0, 0)),
            Probe::NodeVoltage(drawer.package_node(0)),
            Probe::NodeVoltage(drawer.package_node(3)),
        ];
        let window = 6e-6;
        let problem = drawer_problem(&drawer, &probes, window);
        let spec = RomSpec::default();
        let out = solve_step_rom(&problem, &spec).unwrap();
        assert!(out.states >= 1 && out.states <= spec.max_states);
        assert!(out.max_error_v <= spec.budget_v);
        assert!(out.counters.rom_solves > 0);
        assert_eq!(
            out.counters.rom_states as usize,
            spec.max_states.min(out.counters.rom_states as usize)
        );

        // Compare the full window against the full solver, not just the
        // calibration prefix: the budget must hold out-of-sample too
        // (allow 3x headroom for extrapolation beyond calibration).
        let drive = StepTailDrive {
            slot: 0,
            idle: 2.0,
            delta: 10.0,
            t0: 0.5e-6,
        };
        let mut full = TransientSolver::new(drawer.netlist()).unwrap();
        let mut cfg = TransientConfig::new(window);
        cfg.h_coarse = 2e-9;
        cfg.h_fine = 0.5e-9;
        cfg.settle = 0.0;
        cfg.record_decimation = Some(1);
        let reference = full.run(&drive, &probes, &cfg).unwrap();
        let trial = RomTrace {
            times: out.times.clone(),
            traces: out.traces.clone(),
            steps: out.steps,
        };
        let err = worst_error(&reference.times, &reference.traces, &trial);
        assert!(
            err <= 3.0 * spec.budget_v,
            "out-of-sample error {err:.3e} vs budget {:.3e}",
            spec.budget_v
        );
        // And the reduced run is far cheaper per step.
        assert!(out.steps < reference.steps);
    }

    #[test]
    fn impossible_budget_fails_with_rom_budget() {
        let drawer = DrawerPdn::build(&DrawerParams::default()).unwrap();
        let probes = [Probe::NodeVoltage(drawer.core_node(0, 0))];
        let problem = drawer_problem(&drawer, &probes, 6e-6);
        let spec = RomSpec {
            budget_v: 1e-15,
            max_states: 3,
            ..RomSpec::default()
        };
        let err = solve_step_rom(&problem, &spec).unwrap_err();
        let PdnError::RomBudget {
            budget_v,
            achieved_v,
            states,
        } = err
        else {
            panic!("expected RomBudget, got {err:?}");
        };
        assert_eq!(budget_v, 1e-15);
        assert!(achieved_v > budget_v);
        assert_eq!(states, 3);
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let drawer = DrawerPdn::build(&DrawerParams::default()).unwrap();
        let probes = [Probe::NodeVoltage(drawer.core_node(0, 0))];
        let spec = RomSpec::default();
        // Step outside the calibration window.
        let mut p = drawer_problem(&drawer, &probes, 6e-6);
        p.t0_s = spec.calib_window_s * 2.0;
        assert!(matches!(
            solve_step_rom(&p, &spec),
            Err(PdnError::InvalidTimebase { .. })
        ));
        // Out-of-range drive slot.
        let mut p = drawer_problem(&drawer, &probes, 6e-6);
        p.slot = 10_000;
        assert!(matches!(
            solve_step_rom(&p, &spec),
            Err(PdnError::UnknownNode { .. })
        ));
        // Calibration window longer than the simulated window.
        let p = drawer_problem(&drawer, &probes, spec.calib_window_s / 2.0);
        assert!(matches!(
            solve_step_rom(&p, &spec),
            Err(PdnError::InvalidTimebase { .. })
        ));
        // Zero states permitted.
        let p = drawer_problem(&drawer, &probes, 6e-6);
        let bad_spec = RomSpec {
            max_states: 0,
            ..RomSpec::default()
        };
        assert!(matches!(
            solve_step_rom(&p, &bad_spec),
            Err(PdnError::InvalidTimebase { .. })
        ));
        let _ = NodeId::GROUND;
    }
}
