//! Regenerates paper Fig. 11b: average noise by workload distribution
//! (how the same dI spread over different numbers of cores changes noise).

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { DeltaIConfig::reduced() } else { DeltaIConfig::paper() };
    let data = run_delta_i(tb, &cfg).expect("campaign runs");
    opts.finish(&data.render_fig11b(), &data);
}
