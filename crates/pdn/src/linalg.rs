//! Small dense linear algebra: LU factorization with partial pivoting.
//!
//! PDN netlists produce modest systems (tens of unknowns), so a dense
//! solver is both simpler and faster than a sparse one here. The solver is
//! generic over [`Scalar`] so the same code serves the real-valued
//! transient analysis and the complex-valued AC analysis.

use crate::complex::Complex;
use crate::error::PdnError;

/// Field-like scalar usable by the LU solver.
///
/// Implemented for `f64` (transient analysis) and [`Complex`] (AC
/// analysis). This trait is sealed in spirit: downstream implementations
/// are not supported.
pub trait Scalar:
    Copy
    + PartialEq
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Magnitude used for pivot selection.
    fn magnitude(self) -> f64;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex {
    const ZERO: Complex = Complex::ZERO;
    const ONE: Complex = Complex::ONE;
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
}

/// A dense row-major square-capable matrix.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::linalg::Matrix;
///
/// let mut m = Matrix::<f64>::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// let lu = m.lu().unwrap();
/// let x = lu.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Adds `value` to entry `(r, c)`; the standard MNA "stamp" primitive.
    #[inline]
    pub fn stamp(&mut self, r: usize, c: usize, value: T) {
        let idx = r * self.cols + c;
        self.data[idx] = self.data[idx] + value;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![T::ZERO; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = T::ZERO;
            for (a, b) in row.iter().zip(x) {
                acc = acc + *a * *b;
            }
            *yr = acc;
        }
        y
    }

    /// Estimated floating-point operations of one LU factorization of
    /// this matrix: the classic dense count `2n³/3 + n²/2`. Part of the
    /// solver cost model surfaced by
    /// [`crate::telemetry::SolverCounters::est_flops`]; an estimate, not
    /// a measurement (pivot searches and zero-skip branches are not
    /// charged).
    pub fn lu_flops(&self) -> u64 {
        let n = self.rows as u64;
        2 * n * n * n / 3 + n * n / 2
    }

    /// Factors the matrix as `P*A = L*U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::SingularMatrix`] when a pivot collapses below
    /// numerical tolerance, and [`PdnError::DimensionMismatch`] when the
    /// matrix is not square.
    pub fn lu(&self) -> Result<LuFactors<T>, PdnError> {
        if self.rows != self.cols {
            return Err(PdnError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Pivot selection: largest magnitude in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_mag = lu[k * n + k].magnitude();
            for r in (k + 1)..n {
                let mag = lu[r * n + k].magnitude();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if !(pivot_mag.is_finite() && pivot_mag > 1e-300) {
                return Err(PdnError::SingularMatrix { column: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    lu.swap(k * n + c, pivot_row * n + c);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                if factor != T::ZERO {
                    for c in (k + 1)..n {
                        let sub = factor * lu[k * n + c];
                        lu[r * n + c] = lu[r * n + c] - sub;
                    }
                }
            }
        }
        Ok(LuFactors { n, lu, perm })
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

/// LU factorization of a square matrix, reusable across many right-hand
/// sides — the transient solver factors once per distinct timestep and
/// back-substitutes every step.
#[derive(Debug, Clone)]
pub struct LuFactors<T> {
    n: usize,
    lu: Vec<T>,
    perm: Vec<usize>,
}

impl<T: Scalar> LuFactors<T> {
    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Estimated floating-point operations of one back-substitution
    /// against these factors: `2n²` (forward plus backward sweep). The
    /// companion of [`Matrix::lu_flops`] in the solver cost model.
    pub fn solve_flops(&self) -> u64 {
        let n = self.n as u64;
        2 * n * n
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::DimensionMismatch`] if `b.len()` differs from
    /// the factored dimension.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, PdnError> {
        if b.len() != self.n {
            return Err(PdnError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut x = vec![T::ZERO; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` writing into a caller-provided buffer, avoiding
    /// per-step allocation in hot loops.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::DimensionMismatch`] on size mismatch.
    pub fn solve_into(&self, b: &[T], x: &mut [T]) -> Result<(), PdnError> {
        let n = self.n;
        if b.len() != n || x.len() != n {
            return Err(PdnError::DimensionMismatch {
                expected: n,
                actual: b.len().min(x.len()),
            });
        }
        // Forward substitution on the permuted RHS (L has unit diagonal).
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for (j, xj) in x.iter().enumerate().take(i) {
                acc = acc - self.lu[i * n + j] * *xj;
            }
            x[i] = acc;
        }
        // Backward substitution. Indexing is clearer than iterator
        // gymnastics here because `x` is read and written in place.
        #[allow(clippy::needless_range_loop)]
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc = acc - self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        Ok(())
    }

    /// Solves `A X = B` for a batch of right-hand sides stored
    /// column-contiguously: RHS `k` occupies `rhs[k*n .. (k+1)*n]` and
    /// its solution lands in the same slice of `x`.
    ///
    /// The triangular sweeps run row-outer so each LU entry is loaded
    /// once per row and applied across the whole batch. Per-column the
    /// operation sequence is exactly that of [`LuFactors::solve_into`]
    /// (columns are independent), so results are **bitwise identical**
    /// to solving each RHS alone — batching is a pure traversal
    /// reordering, never a numerical change.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::DimensionMismatch`] when the buffer lengths
    /// differ or are not a multiple of the factored dimension.
    pub fn solve_batch_into(&self, rhs: &[T], x: &mut [T]) -> Result<(), PdnError> {
        let n = self.n;
        if n == 0 || rhs.len() != x.len() || !rhs.len().is_multiple_of(n) {
            return Err(PdnError::DimensionMismatch {
                expected: n,
                actual: rhs.len().min(x.len()),
            });
        }
        let k = rhs.len() / n;
        // Forward substitution on the permuted RHS (L has unit
        // diagonal); x[col*n + i] plays the role of solve_into's `acc`.
        for i in 0..n {
            let pi = self.perm[i];
            for col in 0..k {
                x[col * n + i] = rhs[col * n + pi];
            }
            for j in 0..i {
                let lij = self.lu[i * n + j];
                for col in 0..k {
                    let sub = lij * x[col * n + j];
                    x[col * n + i] = x[col * n + i] - sub;
                }
            }
        }
        // Backward substitution, same batch-inner traversal.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let uij = self.lu[i * n + j];
                for col in 0..k {
                    let sub = uij * x[col * n + j];
                    x[col * n + i] = x[col * n + i] - sub;
                }
            }
            let d = self.lu[i * n + i];
            for col in 0..k {
                x[col * n + i] = x[col * n + i] / d;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_real_system() {
        let mut a = Matrix::<f64>::zeros(3, 3);
        let rows = [[2.0, 1.0, -1.0], [-3.0, -1.0, 2.0], [-2.0, 1.0, 2.0]];
        for (r, row) in rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                a[(r, c)] = *v;
            }
        }
        let lu = a.lu().unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected.iter()) {
            assert!((xi - ei).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Matrix::<f64>::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let lu = a.lu().unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = Matrix::<f64>::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(matches!(a.lu(), Err(PdnError::SingularMatrix { .. })));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(a.lu(), Err(PdnError::DimensionMismatch { .. })));
    }

    #[test]
    fn complex_system_round_trips() {
        let n = 4;
        let mut a = Matrix::<Complex>::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = Complex::new(
                    (r * n + c) as f64 * 0.37 - 2.0,
                    (r as f64) - (c as f64) * 0.5,
                );
            }
            // Diagonal dominance keeps the system well conditioned.
            a[(r, r)] += Complex::new(10.0, 3.0);
        }
        let x_true: Vec<Complex> = (0..n)
            .map(|k| Complex::new(k as f64, -(k as f64) * 0.25))
            .collect();
        let b = a.mul_vec(&x_true);
        let x = a.lu().unwrap().solve(&b).unwrap();
        for (xi, ei) in x.iter().zip(&x_true) {
            assert!((*xi - *ei).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::<f64>::identity(5);
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(a.lu().unwrap().solve(&b).unwrap(), b);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let mut a = Matrix::<f64>::zeros(2, 3);
        a[(0, 0)] = 1.0;
        a[(0, 2)] = 2.0;
        a[(1, 1)] = -1.0;
        assert_eq!(a.mul_vec(&[1.0, 2.0, 3.0]), vec![7.0, -2.0]);
    }

    #[test]
    fn flop_estimates_follow_dense_cost_model() {
        let a = Matrix::<f64>::identity(10);
        // 2n³/3 + n²/2 with n = 10, integer arithmetic.
        assert_eq!(a.lu_flops(), 2 * 1000 / 3 + 100 / 2);
        assert_eq!(a.lu().unwrap().solve_flops(), 200);
    }

    #[test]
    fn batched_solve_is_bitwise_identical_to_looped() {
        // An ill-scaled, non-symmetric system so rounding would expose
        // any operation-order drift between the two code paths.
        let n = 7;
        let mut a = Matrix::<f64>::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = ((r * 31 + c * 17) as f64).sin() * 1e3_f64.powi((r % 3) as i32 - 1);
            }
            a[(r, r)] += 50.0;
        }
        let lu = a.lu().unwrap();
        let k = 5;
        let rhs: Vec<f64> = (0..n * k).map(|i| ((i * 13) as f64).cos() * 7.5).collect();
        let mut batched = vec![0.0; n * k];
        lu.solve_batch_into(&rhs, &mut batched).unwrap();
        for col in 0..k {
            let mut single = vec![0.0; n];
            lu.solve_into(&rhs[col * n..(col + 1) * n], &mut single)
                .unwrap();
            for i in 0..n {
                assert_eq!(
                    single[i].to_bits(),
                    batched[col * n + i].to_bits(),
                    "col {col} row {i}"
                );
            }
        }
    }

    #[test]
    fn batched_solve_rejects_ragged_buffers() {
        let lu = Matrix::<f64>::identity(3).lu().unwrap();
        let mut x = [0.0; 6];
        assert!(lu.solve_batch_into(&[1.0; 7], &mut x[..6]).is_err());
        assert!(lu.solve_batch_into(&[1.0; 6], &mut x[..3]).is_err());
        // Empty batch is a valid no-op.
        assert!(lu.solve_batch_into(&[], &mut []).is_ok());
    }

    #[test]
    fn solve_into_reuses_buffer() {
        let a = Matrix::<f64>::identity(3);
        let lu = a.lu().unwrap();
        let mut buf = vec![0.0; 3];
        lu.solve_into(&[9.0, 8.0, 7.0], &mut buf).unwrap();
        assert_eq!(buf, vec![9.0, 8.0, 7.0]);
    }
}
