//! Shared rendering helpers for the per-figure text artifacts.
//!
//! Every experiment renders the same shape of document: a `#`-commented
//! title, a CSV column line, data rows, and optional `#`-commented
//! footers. [`Table`] centralizes that layout. Cells are passed
//! *pre-formatted* — numeric formats are part of each figure's contract
//! (tests assert exact substrings), so formatting stays with the
//! experiment and only the framing lives here.

/// Builder for a comment-annotated CSV table.
///
/// ```
/// use voltnoise_analysis::render::Table;
/// let mut t = Table::new("Fig. X: an example");
/// t.columns(["freq_hz", "pct"]);
/// t.row(["1.0e3".to_string(), "12.5".to_string()]);
/// t.note("peak: 12.5");
/// assert_eq!(t.finish(), "# Fig. X: an example\nfreq_hz,pct\n1.0e3,12.5\n# peak: 12.5\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    buf: String,
}

impl Table {
    /// Starts a table with a `# `-prefixed title line.
    pub fn new(title: &str) -> Table {
        Table {
            buf: format!("# {title}\n"),
        }
    }

    /// Emits the comma-joined column-name line.
    pub fn columns<I, S>(&mut self, names: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.joined_line(names);
        self
    }

    /// Emits one comma-joined data row of pre-formatted cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.joined_line(cells);
        self
    }

    /// Emits a raw line verbatim (for prose sections or a second column
    /// header inside one document).
    pub fn line(&mut self, raw: &str) -> &mut Table {
        self.buf.push_str(raw);
        self.buf.push('\n');
        self
    }

    /// Emits a `# `-prefixed footer comment.
    pub fn note(&mut self, text: &str) -> &mut Table {
        self.buf.push_str("# ");
        self.buf.push_str(text);
        self.buf.push('\n');
        self
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        self.buf
    }

    fn joined_line<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for cell in cells {
            if !first {
                self.buf.push(',');
            }
            self.buf.push_str(cell.as_ref());
            first = false;
        }
        self.buf.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout_matches_figure_contract() {
        let mut t = Table::new("Fig. 0: test");
        t.columns(["a", "b", "c"]);
        t.row(["1", "2", "3"]);
        t.row(vec!["4".to_string(), "5".to_string(), "6".to_string()]);
        t.note("footer");
        let s = t.finish();
        assert_eq!(s, "# Fig. 0: test\na,b,c\n1,2,3\n4,5,6\n# footer\n");
    }

    #[test]
    fn raw_lines_pass_through() {
        let mut t = Table::new("x");
        t.line("plain prose");
        assert_eq!(t.finish(), "# x\nplain prose\n");
    }
}
