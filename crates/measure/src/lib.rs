#![warn(missing_docs)]

//! # voltnoise-measure
//!
//! Measurement substrates of the `voltnoise` workspace, modeling the
//! instrumentation the paper *"Voltage Noise in Multi-core Processors"*
//! (Bertran et al., MICRO 2014) used on real zEC12 silicon:
//!
//! - [`skitter`] — the per-core 129-tap latched delay-line noise sensors,
//!   including sticky mode and the %p2p readout of Figs. 7a/9/10/11;
//! - [`scope`] — oscilloscope trace capture (Fig. 8);
//! - [`power`] — chip-level milliwatt power metering via the service
//!   element;
//! - [`vmin`] — the undervolt-to-first-failure harness with the
//!   critical-path timing model and R-Unit detection (Fig. 12).
//!
//! # Examples
//!
//! ```
//! use voltnoise_measure::skitter::{Skitter, SkitterConfig};
//!
//! let sk = Skitter::new(SkitterConfig::default());
//! let reading = sk.measure_extremes(1.00, 1.09);
//! assert!(reading.pct_p2p() > 20.0);
//! ```

pub mod bitstring;
pub mod power;
pub mod scope;
pub mod skitter;
pub mod vmin;

pub use bitstring::{capture, BitString, StickyBitmap};
pub use power::{PowerMeter, PowerReading};
pub use scope::ScopeTrace;
pub use skitter::{Skitter, SkitterConfig, SkitterReading};
pub use vmin::{run_vmin, CriticalPath, RUnit, VminConfig, VminResult};
