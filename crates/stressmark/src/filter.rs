//! Steps 2–3 of the sequence search (paper Fig. 5): combination
//! generation and microarchitectural filtering.
//!
//! All `9^6 = 531 441` length-six combinations of the candidates are
//! enumerated ("length six ... is twice the dispatch group size", §IV-B)
//! and reduced with static constraints from the core model: sequences
//! that cannot average a dispatch-group size of three, carry too many
//! branches, or oversubscribe a unit's ports are dropped before any
//! simulation happens.

use serde::{Deserialize, Serialize};
use voltnoise_uarch::isa::{Isa, Opcode};
use voltnoise_uarch::pipeline::{form_groups, CoreConfig};
use voltnoise_uarch::units::UnitKind;

/// Length of searched sequences: twice the dispatch group size.
pub const SEQ_LEN: usize = 6;

/// Iterator over all `k^SEQ_LEN` candidate combinations.
///
/// # Examples
///
/// ```
/// use voltnoise_stressmark::filter::Combinations;
/// use voltnoise_uarch::isa::Isa;
///
/// let isa = Isa::zlike();
/// let ops = vec![isa.opcode("AR").unwrap(), isa.opcode("SR").unwrap()];
/// let combos: Vec<_> = Combinations::new(&ops).collect();
/// assert_eq!(combos.len(), 2usize.pow(6));
/// ```
#[derive(Debug, Clone)]
pub struct Combinations<'a> {
    candidates: &'a [Opcode],
    counters: [usize; SEQ_LEN],
    done: bool,
}

impl<'a> Combinations<'a> {
    /// Creates the enumerator. An empty candidate list yields nothing.
    pub fn new(candidates: &'a [Opcode]) -> Self {
        Combinations {
            candidates,
            counters: [0; SEQ_LEN],
            done: candidates.is_empty(),
        }
    }

    /// Total number of combinations that will be produced.
    pub fn total(&self) -> usize {
        if self.candidates.is_empty() {
            0
        } else {
            self.candidates.len().pow(SEQ_LEN as u32)
        }
    }
}

impl Iterator for Combinations<'_> {
    type Item = [Opcode; SEQ_LEN];

    fn next(&mut self) -> Option<[Opcode; SEQ_LEN]> {
        if self.done {
            return None;
        }
        let mut seq = [*self.candidates.first()?; SEQ_LEN];
        for (s, &c) in seq.iter_mut().zip(&self.counters) {
            *s = self.candidates[c];
        }
        // Odometer increment.
        let mut i = SEQ_LEN;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.counters[i] += 1;
            if self.counters[i] < self.candidates.len() {
                break;
            }
            self.counters[i] = 0;
        }
        Some(seq)
    }
}

/// Static microarchitectural constraints applied before simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Required average dispatch-group size (the zEC12 maximum is 3).
    pub required_avg_group_size: f64,
    /// Maximum branches per sequence.
    pub max_branches: usize,
    /// Maximum blocking (multi-cycle-occupancy) operations per sequence.
    pub max_blocking: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            required_avg_group_size: 3.0,
            max_branches: 2,
            max_blocking: 1,
        }
    }
}

/// True when a sequence survives the microarchitectural filter:
///
/// 1. group formation must reach the required average group size
///    ("sequences that are known to not have an average dispatch group
///    size of 3 ... are filtered out because they will not exhibit a high
///    IPC");
/// 2. at most `max_branches` branches;
/// 3. at most `max_blocking` blocking operations;
/// 4. no unit's total port-occupancy may exceed what the dispatch-bound
///    cycle count lets it issue.
pub fn microarch_filter(
    isa: &Isa,
    core: &CoreConfig,
    filter: &FilterConfig,
    seq: &[Opcode],
) -> bool {
    let groups = form_groups(isa, core, seq);
    let avg = if groups.is_empty() {
        0.0
    } else {
        seq.len() as f64 / groups.len() as f64
    };
    if avg + 1e-9 < filter.required_avg_group_size {
        return false;
    }
    let mut branches = 0usize;
    let mut blocking = 0usize;
    let mut occupancy = [0u64; 6];
    for &op in seq {
        let def = isa.def(op);
        if def.ends_group {
            branches += 1;
        }
        if def.occupancy > 1 {
            blocking += 1;
        }
        if def.serializing {
            return false;
        }
        occupancy[def.unit.index()] += def.occupancy as u64;
    }
    if branches > filter.max_branches || blocking > filter.max_blocking {
        return false;
    }
    // Dispatch needs `groups.len()` cycles; any unit needing more issue
    // slots than `cycles * ports` bottlenecks the loop below max IPC.
    let cycles = groups.len() as u64;
    for unit in UnitKind::ALL {
        if occupancy[unit.index()] > cycles * unit.ports() as u64 {
            return false;
        }
    }
    true
}

/// Runs the combination enumeration and filter, returning survivors and
/// funnel counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterOutcome {
    /// Sequences that passed the filter.
    pub survivors: Vec<[Opcode; SEQ_LEN]>,
    /// Total combinations enumerated (the paper's 531 441 for 9 candidates).
    pub total: usize,
}

/// Enumerates every combination of `candidates` and keeps those passing
/// [`microarch_filter`].
pub fn filter_combinations(
    isa: &Isa,
    core: &CoreConfig,
    filter: &FilterConfig,
    candidates: &[Opcode],
) -> FilterOutcome {
    let combos = Combinations::new(candidates);
    let total = combos.total();
    let survivors = combos
        .filter(|seq| microarch_filter(isa, core, filter, seq))
        .collect();
    FilterOutcome { survivors, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Isa, CoreConfig, FilterConfig) {
        (Isa::zlike(), CoreConfig::default(), FilterConfig::default())
    }

    #[test]
    fn combination_count_is_k_pow_6() {
        let (isa, _, _) = setup();
        let ops: Vec<Opcode> = ["AR", "SR", "NR"]
            .iter()
            .map(|m| isa.opcode(m).unwrap())
            .collect();
        let c = Combinations::new(&ops);
        assert_eq!(c.total(), 729);
        assert_eq!(c.count(), 729);
    }

    #[test]
    fn nine_candidates_enumerate_531441() {
        let (isa, _, _) = setup();
        let ops: Vec<Opcode> = ["AR", "SR", "NR", "OR", "XR", "CR", "LGR", "LR", "LCR"]
            .iter()
            .map(|m| isa.opcode(m).unwrap())
            .collect();
        assert_eq!(Combinations::new(&ops).total(), 531_441);
    }

    #[test]
    fn combinations_are_unique() {
        let (isa, _, _) = setup();
        let ops: Vec<Opcode> = ["AR", "SR"]
            .iter()
            .map(|m| isa.opcode(m).unwrap())
            .collect();
        let all: std::collections::HashSet<Vec<u16>> = Combinations::new(&ops)
            .map(|s| s.iter().map(|o| o.index() as u16).collect())
            .collect();
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn filter_rejects_mid_sequence_branches() {
        let (isa, core, filter) = setup();
        let cib = isa.opcode("CIB").unwrap();
        let ar = isa.opcode("AR").unwrap();
        // Branch at position 0 truncates the first group to size 1.
        let seq = [cib, ar, ar, ar, ar, ar];
        assert!(!microarch_filter(&isa, &core, &filter, &seq));
        // Branches at group-final positions keep the average at 3.
        let seq_ok = [ar, ar, cib, ar, ar, cib];
        assert!(microarch_filter(&isa, &core, &filter, &seq_ok));
    }

    #[test]
    fn filter_rejects_serializing_ops() {
        let (isa, core, filter) = setup();
        let ar = isa.opcode("AR").unwrap();
        let srnm = isa.opcode("SRNM").unwrap();
        assert!(!microarch_filter(
            &isa,
            &core,
            &filter,
            &[ar, ar, ar, ar, ar, srnm]
        ));
    }

    #[test]
    fn filter_rejects_port_oversubscription() {
        let (isa, core, filter) = setup();
        // Six BFP multiply-adds on the single BFU port cannot sustain
        // anywhere near IPC 3.
        let madbr = isa.opcode("MADBR").unwrap();
        assert!(!microarch_filter(&isa, &core, &filter, &[madbr; 6]));
    }

    #[test]
    fn filter_rejects_too_many_blocking_ops() {
        let (isa, core, filter) = setup();
        let ar = isa.opcode("AR").unwrap();
        let xc = isa.opcode("XC").unwrap(); // occupancy > 1
        assert!(!microarch_filter(
            &isa,
            &core,
            &filter,
            &[xc, ar, ar, xc, ar, ar]
        ));
    }

    #[test]
    fn filter_accepts_known_good_mix() {
        let (isa, core, filter) = setup();
        let seq = [
            isa.opcode("CHHSI").unwrap(),
            isa.opcode("L").unwrap(),
            isa.opcode("CIB").unwrap(),
            isa.opcode("CHHSI").unwrap(),
            isa.opcode("MADBR").unwrap(),
            isa.opcode("CIB").unwrap(),
        ];
        assert!(microarch_filter(&isa, &core, &filter, &seq));
        assert!(
            (voltnoise_uarch::pipeline::average_group_size(&isa, &core, &seq) - 3.0).abs() < 1e-12
        );
    }

    #[test]
    fn filter_outcome_counts_total() {
        let (isa, core, filter) = setup();
        let ops: Vec<Opcode> = ["AR", "CIB"]
            .iter()
            .map(|m| isa.opcode(m).unwrap())
            .collect();
        let out = filter_combinations(&isa, &core, &filter, &ops);
        assert_eq!(out.total, 64);
        assert!(!out.survivors.is_empty());
        assert!(out.survivors.len() < 64);
    }
}
