//! `voltnoise-client` — a minimal client for the campaign daemon.
//!
//! ```text
//! voltnoise-client [--max-attempts N] ADDR health   # GET /healthz
//! voltnoise-client [--max-attempts N] ADDR stats    # GET /stats
//! voltnoise-client [--max-attempts N] ADDR jobs BODY.json
//! voltnoise-client [--max-attempts N] ADDR jobs -   # body from stdin
//! ```
//!
//! Exits 0 on a 2xx response, 1 otherwise; the response body goes to
//! stdout either way (a `429` body carries the retry hint).
//!
//! With `--max-attempts N` (default 1, i.e. no retry), a `429` or `503`
//! answer is retried up to N total attempts. The wait before each retry
//! honors the server's `Retry-After` header as a *floor* under the
//! engine's seeded splitmix64 exponential backoff — deterministic per
//! request body, so a shell loop of identical clients retries on a
//! reproducible schedule yet distinct bodies spread out and don't
//! stampede back in the same millisecond.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;
use voltnoise_server::http_request;
use voltnoise_system::fault::RetryPolicy;

/// FNV-1a 64-bit over the request body: the deterministic backoff seed.
fn body_seed(body: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in body.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn run() -> Result<u16, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_attempts: u32 = 1;
    if let Some(pos) = args.iter().position(|a| a == "--max-attempts") {
        if pos + 1 >= args.len() {
            return Err("--max-attempts needs a value".to_string());
        }
        max_attempts = args[pos + 1]
            .parse()
            .map_err(|_| "--max-attempts must be a positive integer".to_string())?;
        if max_attempts == 0 {
            return Err("--max-attempts must be at least 1".to_string());
        }
        args.drain(pos..pos + 2);
    }
    let (addr, command) =
        match args.as_slice() {
            [addr, command, ..] => (addr.as_str(), command.as_str()),
            _ => return Err(
                "usage: voltnoise-client [--max-attempts N] ADDR health|stats|jobs [BODY.json|-]"
                    .to_string(),
            ),
        };
    let timeout = Duration::from_secs(600);
    let (method, path, body) = match command {
        "health" => ("GET", "/healthz", None),
        "stats" => ("GET", "/stats", None),
        "jobs" => {
            let source = args
                .get(2)
                .ok_or_else(|| "jobs needs a body file (or - for stdin)".to_string())?;
            let body = if source == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?
            };
            ("POST", "/jobs", Some(body))
        }
        other => return Err(format!("unknown command {other:?}")),
    };
    let policy = RetryPolicy::attempts(max_attempts).with_backoff(100, 10_000);
    let seed = body_seed(body.as_deref().unwrap_or(path));
    let mut attempt: u32 = 1;
    let response = loop {
        let response = http_request(addr, method, path, body.as_deref(), timeout)
            .map_err(|e| format!("request failed: {e}"))?;
        let retryable = matches!(response.status, 429 | 503);
        if !retryable || attempt >= max_attempts {
            break response;
        }
        let hint_ms = response
            .header("retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(0, |secs| secs.saturating_mul(1000));
        let delay_ms = policy.delay_with_hint(seed, attempt, hint_ms);
        eprintln!(
            "voltnoise-client: server answered {}, retrying in {delay_ms} ms \
             (attempt {attempt}/{max_attempts})",
            response.status
        );
        std::thread::sleep(Duration::from_millis(delay_ms));
        attempt += 1;
    };
    print!("{}", response.body);
    Ok(response.status)
}

fn main() -> ExitCode {
    match run() {
        Ok(status) if (200..300).contains(&status) => ExitCode::SUCCESS,
        Ok(status) => {
            eprintln!("voltnoise-client: server answered {status}");
            ExitCode::FAILURE
        }
        Err(why) => {
            eprintln!("voltnoise-client: {why}");
            ExitCode::FAILURE
        }
    }
}
