//! Available voltage margin via Vmin experiments (paper Fig. 12).
//!
//! For each stimulus frequency and number of consecutive ΔI events, the
//! operating voltage is lowered in 0.5 % steps until the R-Unit detects
//! the first failure. Margins are reported relative to the worst case
//! (the configuration that fails at the highest bias), and an
//! extrapolated "worst-case customer code" line assumes unsynchronized
//! events at 80 % of the maximum ΔI.

use crate::experiment::{Experiment, ExperimentFailure};
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_measure::vmin::{run_vmin, CriticalPath, RUnit, VminConfig};
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::{CompiledStressmark, SyncSpec};
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::{CoreLoad, NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;

/// Vmin campaign configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginConfig {
    /// Stimulus frequencies: resonant bands and their surroundings plus
    /// the 1 Hz / 100 MHz extremes.
    pub freqs_hz: Vec<f64>,
    /// Consecutive-ΔI-event counts; `None` = unsynchronized (∞ events).
    pub event_counts: Vec<Option<u32>>,
    /// Noise-simulation window per Vmin step.
    pub window_s: f64,
    /// Undervolting harness configuration.
    pub vmin: VminConfig,
    /// ΔI fraction assumed for the customer-code extrapolation.
    pub customer_delta_i_fraction: f64,
}

impl MarginConfig {
    /// Paper-style grid (§V-E): resonant bands 35 kHz / 2.5 MHz and
    /// surroundings, plus 1 Hz and 100 MHz; events 1..1000 and ∞.
    pub fn paper() -> Self {
        MarginConfig {
            freqs_hz: vec![1.0, 25e3, 35e3, 50e3, 1.75e6, 2.5e6, 3.5e6, 100e6],
            event_counts: vec![
                Some(1),
                Some(2),
                Some(4),
                Some(8),
                Some(16),
                Some(1000),
                None,
            ],
            window_s: 40e-6,
            vmin: VminConfig::default(),
            customer_delta_i_fraction: 0.8,
        }
    }

    /// Reduced grid for tests.
    pub fn reduced() -> Self {
        MarginConfig {
            freqs_hz: vec![35e3, 2.5e6],
            event_counts: vec![Some(1), Some(1000), None],
            window_s: 30e-6,
            vmin: VminConfig::default(),
            customer_delta_i_fraction: 0.8,
        }
    }
}

/// One Vmin grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginCell {
    /// Stimulus frequency.
    pub freq_hz: f64,
    /// Consecutive events per burst; `None` = no synchronization.
    pub events: Option<u32>,
    /// Bias at first failure (`None` = never failed above the floor).
    pub failing_bias: Option<f64>,
    /// Margin relative to the worst case, in percent of nominal voltage.
    pub margin_rel_pct: f64,
}

/// Result of the margin campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginResult {
    /// All grid cells.
    pub cells: Vec<MarginCell>,
    /// The worst-case failing bias (highest bias to fail).
    pub worst_bias: f64,
    /// Extrapolated customer-code margin relative to the worst case.
    pub customer_margin_pct: f64,
}

impl MarginResult {
    /// Cells of one event count, in frequency order.
    pub fn row(&self, events: Option<u32>) -> Vec<&MarginCell> {
        self.cells.iter().filter(|c| c.events == events).collect()
    }

    /// Mean relative margin of the synchronized cells (any finite event
    /// count).
    pub fn mean_sync_margin(&self) -> f64 {
        let xs: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.events.is_some())
            .map(|c| c.margin_rel_pct)
            .collect();
        crate::stats::mean(&xs)
    }

    /// Mean relative margin of the unsynchronized cells.
    pub fn mean_unsync_margin(&self) -> f64 {
        let xs: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.events.is_none())
            .map(|c| c.margin_rel_pct)
            .collect();
        crate::stats::mean(&xs)
    }

    /// Renders the Fig. 12 table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 12: available margin (% Vbias to first failure, relative to worst case)",
        );
        t.columns(["freq_hz", "events", "failing_bias", "margin_rel_pct"]);
        for c in &self.cells {
            t.row([
                format!("{:.3e}", c.freq_hz),
                c.events.map_or("inf/nosync".to_string(), |e| e.to_string()),
                c.failing_bias
                    .map_or("none".to_string(), |b| format!("{b:.4}")),
                format!("{:.2}", c.margin_rel_pct),
            ]);
        }
        t.note(&format!("worst-case failing bias: {:.4}", self.worst_bias));
        t.note(&format!(
            "extrapolated customer-code margin: {:.2} %",
            self.customer_margin_pct
        ));
        t.finish()
    }
}

/// One Vmin descent: lowers the bias until the R-Unit flags a failure.
/// Each bias step is a content-keyed [`SimJob`] on an undervolted chip,
/// so repeated descents over the same grid hit the engine cache.
fn vmin_of_loads(
    tb: &Testbed,
    engine: &Engine,
    loads: &[CoreLoad; NUM_CORES],
    cfg: &MarginConfig,
    path: &CriticalPath,
) -> Result<Option<f64>, PdnError> {
    let mut error: Option<PdnError> = None;
    let mut runit = RUnit::new();
    let result = run_vmin(&cfg.vmin, |bias| {
        if error.is_some() {
            return true; // abort quickly once an error occurred
        }
        let chip = match tb.chip().undervolted(bias) {
            Ok(c) => c,
            Err(e) => {
                error = Some(e);
                return true;
            }
        };
        let job = SimJob::new(
            Arc::new(chip),
            loads.clone(),
            NoiseRunConfig {
                window_s: Some(cfg.window_s),
                record_traces: false,
                seed: 1,
                ..NoiseRunConfig::default()
            },
        );
        let out = match engine.run_one(&job) {
            Ok(o) => o,
            Err(e) => {
                error = Some(e);
                return true;
            }
        };
        let v_min = out.v_min.iter().copied().fold(f64::INFINITY, f64::min);
        runit.check(path, v_min)
    });
    match error {
        Some(e) => Err(e),
        None => Ok(result.failing_bias),
    }
}

/// The Fig. 12 available-margin experiment.
///
/// The Vmin descent adapts each next bias to the previous outcome, so the
/// job list cannot be enumerated up front; this experiment overrides
/// [`Experiment::run`] and drives the engine directly, parallelizing over
/// grid cells with [`Engine::par_map`] while each descent stays serial.
#[derive(Debug, Clone)]
pub struct MarginExperiment {
    /// The campaign grid.
    pub cfg: MarginConfig,
}

impl MarginExperiment {
    fn campaign(&self, tb: &Testbed, engine: &Engine) -> Result<MarginResult, PdnError> {
        let cfg = &self.cfg;
        let path = tb.chip().config().critical_path;
        let mut grid: Vec<(f64, Option<u32>)> = Vec::new();
        for &freq in &cfg.freqs_hz {
            for &events in &cfg.event_counts {
                grid.push((freq, events));
            }
        }
        let biases = engine.par_map(&grid, |&(freq, events)| {
            let sync = events.map(|e| SyncSpec {
                events: e,
                ..SyncSpec::paper_default()
            });
            let sm = tb.max_stressmark(freq, sync);
            let loads: [CoreLoad; NUM_CORES] =
                std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
            vmin_of_loads(tb, engine, &loads, cfg, &path)
        })?;
        let raw: Vec<(f64, Option<u32>, Option<f64>)> = grid
            .iter()
            .zip(biases)
            .map(|(&(freq, events), bias)| (freq, events, bias))
            .collect();

        // Customer-code extrapolation: unsynchronized, 80 % of max ΔI.
        let customer_sm = scaled_stressmark(
            tb.max_stressmark(2.5e6, None),
            cfg.customer_delta_i_fraction,
        );
        let customer_loads: [CoreLoad; NUM_CORES] =
            std::array::from_fn(|_| CoreLoad::Stressmark(customer_sm.clone()));
        let customer_bias = vmin_of_loads(tb, engine, &customer_loads, cfg, &path)?;

        let worst_bias = raw
            .iter()
            .filter_map(|(_, _, b)| *b)
            .fold(f64::NEG_INFINITY, f64::max);
        let rel = |b: Option<f64>| b.map_or(100.0, |b| (worst_bias - b) * 100.0);
        let cells = raw
            .into_iter()
            .map(|(freq_hz, events, failing_bias)| MarginCell {
                freq_hz,
                events,
                failing_bias,
                margin_rel_pct: rel(failing_bias),
            })
            .collect();
        Ok(MarginResult {
            cells,
            worst_bias,
            customer_margin_pct: rel(customer_bias),
        })
    }
}

impl Experiment for MarginExperiment {
    type Artifact = MarginResult;

    fn id(&self) -> &'static str {
        "fig12"
    }

    fn title(&self) -> &'static str {
        "Fig. 12: available voltage margin (Vmin campaign)"
    }

    // jobs() stays empty: the adaptive descent generates jobs on the fly.

    fn assemble(
        &self,
        tb: &Testbed,
        _outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<MarginResult, PdnError> {
        self.campaign(tb, Engine::shared())
    }

    fn render(&self, artifact: &MarginResult) -> String {
        artifact.render()
    }

    fn run(&self, tb: &Testbed, engine: &Engine) -> Result<MarginResult, PdnError> {
        self.campaign(tb, engine)
    }

    // The default run_settled would route through the job-list path and
    // assemble (which falls back to the shared engine); the adaptive
    // campaign must keep driving the caller's engine instead.
    fn run_settled(
        &self,
        tb: &Testbed,
        engine: &Engine,
    ) -> Result<MarginResult, ExperimentFailure> {
        self.campaign(tb, engine).map_err(ExperimentFailure::from)
    }
}

/// Runs the full margin campaign on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_margin(tb: &Testbed, cfg: &MarginConfig) -> Result<MarginResult, PdnError> {
    MarginExperiment { cfg: cfg.clone() }.run(tb, Engine::shared())
}

/// Rescales a stressmark's high-phase current so its ΔI becomes
/// `fraction` of the original.
fn scaled_stressmark(mut sm: CompiledStressmark, fraction: f64) -> CompiledStressmark {
    let delta = sm.delta_i();
    sm.i_high_a = sm.i_low_a + delta * fraction;
    sm
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static MarginResult {
        static CELL: OnceLock<MarginResult> = OnceLock::new();
        CELL.get_or_init(|| run_margin(Testbed::fast(), &MarginConfig::reduced()).expect("runs"))
    }

    #[test]
    fn synchronized_margins_are_much_smaller_than_unsync() {
        let r = result();
        let sync = r.mean_sync_margin();
        let unsync = r.mean_unsync_margin();
        // Paper: sync 0-2 %, unsync 5-7 % — "more than doubled".
        assert!(
            unsync > 2.0 * sync.max(0.5),
            "unsync {unsync} vs sync {sync}"
        );
        assert!(sync < 3.0, "sync margin {sync}");
    }

    #[test]
    fn single_synchronized_event_is_enough() {
        // Paper: "the noise generated with just a single synchronized dI
        // event is large enough" — events=1 margins track events=1000.
        let r = result();
        let one: Vec<f64> = r.row(Some(1)).iter().map(|c| c.margin_rel_pct).collect();
        let thousand: Vec<f64> = r.row(Some(1000)).iter().map(|c| c.margin_rel_pct).collect();
        for (a, b) in one.iter().zip(&thousand) {
            assert!((a - b).abs() < 2.5, "events=1 {a} vs events=1000 {b}");
        }
    }

    #[test]
    fn customer_line_leaves_margin() {
        let r = result();
        assert!(
            r.customer_margin_pct > r.mean_sync_margin(),
            "customer {} vs sync {}",
            r.customer_margin_pct,
            r.mean_sync_margin()
        );
    }

    #[test]
    fn worst_bias_is_a_real_failure_point() {
        let r = result();
        assert!(
            r.worst_bias > 0.85 && r.worst_bias < 1.0,
            "{}",
            r.worst_bias
        );
        assert!(r.cells.iter().any(|c| c.margin_rel_pct < 0.75));
    }

    #[test]
    fn render_contains_all_cells() {
        let r = result();
        let text = r.render();
        assert!(text.contains("inf/nosync"));
        assert_eq!(
            text.lines()
                .filter(|l| !l.starts_with('#') && l.contains(','))
                .count(),
            r.cells.len() + 1 // +1 header
        );
    }
}
