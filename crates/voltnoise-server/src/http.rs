//! Minimal HTTP/1.1 framing over a [`TcpStream`]: request parsing with
//! hard limits, plain responses, and chunked transfer encoding for
//! streamed results.
//!
//! This is deliberately not a general HTTP implementation. It parses
//! exactly the subset the daemon serves — sequential requests on a
//! keep-alive connection, `Content-Length` bodies, case-insensitive
//! header lookup — and enforces limits *before* buffering: an oversized
//! header block or body is refused with a typed [`HttpError`] instead
//! of an allocation.
//!
//! Keep-alive is the caller's decision per response: every writer takes
//! a `keep_alive` flag and emits the matching `Connection` header, so
//! the connection handler can bound requests-per-connection and close
//! during a drain while routed retries and health probes reuse warm
//! connections.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// Request path, query string included.
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked for the connection to be closed after
    /// this response (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn connection_header(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Why a request could not be read. Each variant maps onto one HTTP
/// status so the connection handler can answer before closing.
#[derive(Debug)]
pub enum HttpError {
    /// The request line or headers were malformed (→ 400).
    Malformed(String),
    /// The head exceeded [`MAX_HEAD_BYTES`] (→ 431).
    HeadTooLarge,
    /// The declared body exceeded the server's body limit (→ 413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Server limit it exceeded.
        limit: usize,
    },
    /// The peer closed or timed out before a full request arrived (→ no
    /// response; the connection is simply dropped).
    Disconnected,
    /// The body was not valid UTF-8 (→ 400).
    NotUtf8,
}

impl HttpError {
    /// The HTTP status this error answers with (`None`: just close).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) | HttpError::NotUtf8 => Some((400, "Bad Request")),
            HttpError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge { .. } => Some((413, "Payload Too Large")),
            HttpError::Disconnected => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
            HttpError::NotUtf8 => write!(f, "body is not valid UTF-8"),
        }
    }
}

/// Reads one request from the stream, enforcing the head limit and the
/// caller's body limit.
///
/// # Errors
///
/// Returns [`HttpError`] on malformed, oversized or truncated input.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Read byte-at-a-time until the blank line; the head is tiny and a
    // buffered reader would over-read into the body.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(_) => head.push(byte[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Disconnected)
            }
            Err(_) => return Err(HttpError::Disconnected),
        }
    }
    let head = String::from_utf8(head).map_err(|_| HttpError::NotUtf8)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request path".into()))?
        .to_string();
    if parts.next().is_none_or(|v| !v.starts_with("HTTP/1.")) {
        return Err(HttpError::Malformed("not an HTTP/1.x request".into()));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|_| HttpError::Disconnected)?;
    let body = String::from_utf8(body).map_err(|_| HttpError::NotUtf8)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes a complete (non-chunked) response.
///
/// # Errors
///
/// Returns the underlying I/O error (callers log and drop the
/// connection; the peer may already be gone).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        connection_header(keep_alive)
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a chunked `200` response; follow with [`write_chunk`] and
/// [`finish_chunked`].
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn start_chunked(
    stream: &mut TcpStream,
    content_type: &str,
    keep_alive: bool,
) -> io::Result<()> {
    stream.write_all(
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            connection_header(keep_alive)
        )
        .as_bytes(),
    )?;
    stream.flush()
}

/// Writes one chunk of a chunked response and flushes it, so the peer
/// sees the data now — the mechanism behind "results stream as they
/// settle".
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn finish_chunked(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
            // Keep the connection open long enough for the read side.
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let out = read_request(&mut stream, max_body);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "abcd");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("content-length"), Some("4"));
    }

    #[test]
    fn refuses_oversized_bodies_before_reading_them() {
        let err = round_trip(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                declared: 999999,
                limit: 1024
            }
        ));
        assert_eq!(err.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        let err = round_trip(b"NOT_HTTP\r\n\r\n", 1024).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
        let err = round_trip(b"GET /x SPDY/3\r\n\r\n", 1024).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn connection_close_requests_are_detected() {
        let req = round_trip(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", 1024).unwrap();
        assert!(req.wants_close());
        let req = round_trip(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn truncated_bodies_surface_as_disconnects() {
        // Declares 10 bytes, sends 2: the reader must not hang forever
        // nor fabricate a request.
        let err = round_trip(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab", 1024).unwrap_err();
        assert!(matches!(err, HttpError::Disconnected), "{err:?}");
        assert_eq!(err.status(), None);
    }
}
