//! voltnoise-fleet: a supervised multi-process shard pool over
//! `voltnoise-server`, with chaos-proven crash recovery.
//!
//! The single-process daemon (PR 7) hardened one engine; this crate
//! scales it out without giving up the determinism that makes the
//! reproduction trustworthy. The pieces, bottom-up:
//!
//! * [`ring`] — consistent-hash routing: `JobKey::store_digest` → shard,
//!   plus the failover preference order every router agrees on.
//! * [`supervisor`] — process lifecycle: spawn N workers (each with its
//!   own `--store` shard and read-through `--read-store` siblings),
//!   detect crashes, respawn within a bounded budget, forward drains.
//! * [`breaker`] — per-shard circuit breakers driven by `/readyz`
//!   probes; stalled or draining shards are walked past, then retried
//!   after a cooldown through a half-open probe.
//! * [`client`] — the campaign client: wave dispatch, streamed capture,
//!   deterministic retry honoring `429 Retry-After`, tail hedging to
//!   the ring successor, resume of only the missing jobs.
//! * [`chaos`] — the seeded fault harness (SIGKILL mid-batch, SIGSTOP
//!   stalls, injected resets) that `tests/fleet.rs` uses to prove a
//!   chaotic campaign is byte-identical to a clean single-engine run
//!   with zero duplicate solves.
//!
//! The cross-process invariant everything rests on: a worker appends a
//! result only to its *own* shard store, and read-through never
//! appends. So the union of shard stores contains each solved key
//! exactly once, no matter how many crashes, retries, and failovers a
//! campaign survived.

#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod client;
pub mod ring;
pub mod supervisor;

pub use breaker::{BreakerState, CircuitBreaker};
pub use chaos::{campaign_specs, ChaosDriver, ChaosPlan, ChaosReport, FaultAction};
pub use client::{
    CampaignReport, Directive, FleetClient, FleetClientConfig, FleetEvent, FleetObserver, NoChaos,
};
pub use ring::HashRing;
pub use supervisor::{send_signal, server_binary, FleetConfig, Supervisor};
