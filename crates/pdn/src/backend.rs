//! The pluggable solve-backend interface: one factorization type over
//! the dense and sparse LU paths, plus the serializable solve
//! specification ([`SolveSpec`]) callers use to pick a backend and
//! optionally a reduced-order macromodel ([`RomSpec`]).
//!
//! Historically every analysis that needed "factor once, solve many"
//! carried its own private dense-or-sparse enum (the transient solver's
//! factor cache, the AC analyzer's per-frequency matrix). This module
//! hoists that shape into a first-class [`Factorization`] so the
//! batched multi-RHS path, the AC sweep, the transient step loop, and
//! the ROM calibration all share one solve surface — and one set of
//! flop/telemetry conventions.
//!
//! Two invariants the rest of the workspace leans on:
//!
//! - **Batching never changes bits.** [`Factorization::solve_batch_into`]
//!   delegates to batched kernels whose per-column operation order is
//!   exactly the single-RHS order, so a sweep routed through the batch
//!   path produces byte-identical figures.
//! - **The spec is content.** [`SolveSpec`] (backend choice + ROM error
//!   budget) serializes and feeds the system layer's content keys: a
//!   result computed under a different spec is a different result.

use crate::error::PdnError;
use crate::linalg::{LuFactors, Scalar};
use crate::mna::SolverBackend;
use crate::sparse::SparseLu;
use serde::{Deserialize, Serialize};

/// LU factors from either backend, reusable across many right-hand
/// sides. The common currency of the solve path: the transient factor
/// cache stores these, the AC analyzer factors one per frequency, and
/// the batched sweep solves whole RHS blocks against one.
#[derive(Debug, Clone)]
pub enum Factorization<T> {
    /// Dense partial-pivoting LU ([`crate::linalg::LuFactors`]).
    Dense(LuFactors<T>),
    /// Sparse Markowitz LU ([`crate::sparse::SparseLu`]).
    Sparse(SparseLu<T>),
}

impl<T: Scalar> Factorization<T> {
    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        match self {
            Factorization::Dense(f) => f.dim(),
            Factorization::Sparse(f) => f.dim(),
        }
    }

    /// Whether these factors came from the sparse backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Factorization::Sparse(_))
    }

    /// Estimated floating-point operations of one back-substitution:
    /// the dense `2n²` model or the sparse `2·nnz(L+U)` measurement
    /// (see [`crate::telemetry::SolverCounters::est_flops`]).
    pub fn solve_flops(&self) -> u64 {
        match self {
            Factorization::Dense(f) => f.solve_flops(),
            Factorization::Sparse(f) => f.solve_flops(),
        }
    }

    /// Solves `A x = b` into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// [`PdnError::DimensionMismatch`] on size mismatch.
    pub fn solve_into(&self, b: &[T], x: &mut [T]) -> Result<(), PdnError> {
        match self {
            Factorization::Dense(f) => f.solve_into(b, x),
            Factorization::Sparse(f) => f.solve_into(b, x),
        }
    }

    /// Solves a batch of right-hand sides stored column-contiguously
    /// (RHS `k` in `rhs[k*n .. (k+1)*n]`), bitwise identical to calling
    /// [`Factorization::solve_into`] per column — see
    /// [`crate::linalg::LuFactors::solve_batch_into`] and
    /// [`crate::sparse::SparseLu::solve_batch_into`].
    ///
    /// # Errors
    ///
    /// [`PdnError::DimensionMismatch`] when buffer lengths differ or
    /// are not a multiple of the factored dimension.
    pub fn solve_batch_into(&self, rhs: &[T], x: &mut [T]) -> Result<(), PdnError> {
        match self {
            Factorization::Dense(f) => f.solve_batch_into(rhs, x),
            Factorization::Sparse(f) => f.solve_batch_into(rhs, x),
        }
    }
}

/// Configuration of a reduced-order PDN macromodel: a single-input
/// Krylov (moment-matching) projection of the drawer's descriptor
/// system onto a handful of states, accurate near the expansion
/// frequency and validated against the full solver before use.
///
/// The budget is **empirical, not a priori**: the ROM is calibrated by
/// running both models over a short prefix window and growing the
/// reduced order until the worst-case probe-voltage discrepancy fits
/// inside `budget_v` (or [`PdnError::RomBudget`] fires). Every field
/// participates in content keys — two runs with different budgets are
/// different computations even when their outputs agree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RomSpec {
    /// Worst-case probe-voltage error budget (volts) versus the full
    /// solver over the calibration window.
    pub budget_v: f64,
    /// Hard cap on the reduced order (Krylov vectors / states).
    pub max_states: usize,
    /// Expansion frequency (hertz) for the moment-matching shift
    /// `s₀ = 2π·expansion_hz`; pick it near the resonance band that
    /// matters (the drawer's low-megahertz spine modes).
    pub expansion_hz: f64,
    /// Length (seconds) of the full-solver prefix run the ROM is
    /// calibrated against. Must cover the fastest transient of
    /// interest; a few microseconds for drawer steps.
    pub calib_window_s: f64,
    /// Coarse-step dilation: the ROM integrates the post-edge tail with
    /// `dilation ×` the full solver's coarse step (its few smooth modes
    /// tolerate larger steps; edge refinement still runs at full rate).
    pub dilation: u32,
}

impl Default for RomSpec {
    fn default() -> Self {
        RomSpec {
            budget_v: 1e-3,
            max_states: 16,
            expansion_hz: 2e6,
            calib_window_s: 2e-6,
            dilation: 6,
        }
    }
}

/// Full solve specification: which factorization backend, and whether a
/// reduced-order macromodel may stand in for the full-order transient.
///
/// `rom: None` (the default) always runs the full-order solver — the
/// byte-identity baseline every figure is pinned to. Paths that do not
/// support model reduction (chip-scale noise runs, AC sweeps) ignore
/// `rom` and document that they do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SolveSpec {
    /// Dense/sparse/auto backend selection.
    pub backend: SolverBackend,
    /// Optional reduced-order macromodel for long transients.
    pub rom: Option<RomSpec>,
}

/// Hand-written deserialization so `rom` defaults to `None` when the
/// field is absent — configuration JSON written before the ROM existed
/// must keep parsing (the vendored serde derive has no
/// `#[serde(default)]`).
impl Deserialize for SolveSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for SolveSpec"))?;
        let rom = match obj.iter().find(|(k, _)| k == "rom") {
            Some((_, v)) => Deserialize::from_value(v)?,
            None => None,
        };
        Ok(SolveSpec {
            backend: serde::field(obj, "backend")?,
            rom,
        })
    }
}

impl SolveSpec {
    /// The full-order default spec (auto backend, no ROM).
    pub fn full() -> Self {
        SolveSpec::default()
    }

    /// A spec requesting the reduced-order macromodel with the given
    /// configuration (auto backend for everything the ROM does not
    /// cover).
    pub fn reduced(rom: RomSpec) -> Self {
        SolveSpec {
            backend: SolverBackend::Auto,
            rom: Some(rom),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    #[test]
    fn spec_defaults_are_full_order_auto() {
        let spec = SolveSpec::default();
        assert_eq!(spec.backend, SolverBackend::Auto);
        assert!(spec.rom.is_none());
        assert_eq!(spec, SolveSpec::full());
        let reduced = SolveSpec::reduced(RomSpec::default());
        assert!(reduced.rom.is_some());
    }

    #[test]
    fn spec_round_trips_through_json_and_old_json_parses() {
        let spec = SolveSpec::reduced(RomSpec {
            budget_v: 2e-3,
            ..RomSpec::default()
        });
        let json = serde_json::to_string(&spec).unwrap();
        let back: SolveSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // A bare backend (pre-ROM JSON) still parses: `rom` defaults.
        let legacy: SolveSpec = serde_json::from_str(r#"{"backend":"Sparse"}"#).unwrap();
        assert_eq!(legacy.backend, SolverBackend::Sparse);
        assert!(legacy.rom.is_none());
    }

    #[test]
    fn factorization_dispatches_both_backends() {
        let dense = Matrix::<f64>::identity(3).lu().unwrap();
        let f = Factorization::Dense(dense);
        assert!(!f.is_sparse());
        assert_eq!(f.dim(), 3);
        assert_eq!(f.solve_flops(), 18);
        let mut x = vec![0.0; 3];
        f.solve_into(&[1.0, 2.0, 3.0], &mut x).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        let mut xb = vec![0.0; 6];
        f.solve_batch_into(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &mut xb)
            .unwrap();
        assert_eq!(xb, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }
}
