//! Regenerates paper Fig. 13a: the inter-core noise correlation matrix
//! over all workload mappings, with the detected core clusters.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig13a");
}
