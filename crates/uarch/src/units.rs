//! Functional units and issue classes of the modeled core.
//!
//! The modeled machine follows the zEC12 execution-resource outline the
//! paper relies on: two fixed-point pipes, two load/store pipes, one
//! binary floating-point pipe, one decimal floating-point pipe, a branch
//! pipe, and a serializing system pipe.

use serde::{Deserialize, Serialize};

/// Execution unit kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnitKind {
    /// Fixed-point unit (arithmetic, logical, compare).
    Fxu,
    /// Load/store unit.
    Lsu,
    /// Binary floating-point unit.
    Bfu,
    /// Decimal floating-point unit.
    Dfu,
    /// Branch unit.
    Bru,
    /// System/control unit (serializing operations).
    Sys,
}

impl UnitKind {
    /// Every unit kind, in display order.
    pub const ALL: [UnitKind; 6] = [
        UnitKind::Fxu,
        UnitKind::Lsu,
        UnitKind::Bfu,
        UnitKind::Dfu,
        UnitKind::Bru,
        UnitKind::Sys,
    ];

    /// Number of issue ports of this unit kind on the modeled core.
    pub fn ports(self) -> usize {
        match self {
            UnitKind::Fxu | UnitKind::Lsu => 2,
            UnitKind::Bfu | UnitKind::Dfu | UnitKind::Bru | UnitKind::Sys => 1,
        }
    }

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            UnitKind::Fxu => "fxu",
            UnitKind::Lsu => "lsu",
            UnitKind::Bfu => "bfu",
            UnitKind::Dfu => "dfu",
            UnitKind::Bru => "bru",
            UnitKind::Sys => "sys",
        }
    }

    /// Index into dense per-unit arrays.
    pub fn index(self) -> usize {
        match self {
            UnitKind::Fxu => 0,
            UnitKind::Lsu => 1,
            UnitKind::Bfu => 2,
            UnitKind::Dfu => 3,
            UnitKind::Bru => 4,
            UnitKind::Sys => 5,
        }
    }
}

impl std::fmt::Display for UnitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Issue class used by the stressmark candidate selection: the paper
/// categorizes instructions "by their functional unit usage and issue
/// class" (§IV-B step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IssueClass {
    /// Single-cycle pipelined operation.
    Short,
    /// Multi-cycle but fully pipelined operation.
    Pipelined,
    /// Long-latency operation occupying its unit (divides, decimal).
    Blocking,
    /// Serializes the pipeline (system controls).
    Serializing,
}

impl IssueClass {
    /// Every issue class.
    pub const ALL: [IssueClass; 4] = [
        IssueClass::Short,
        IssueClass::Pipelined,
        IssueClass::Blocking,
        IssueClass::Serializing,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_counts_match_model() {
        assert_eq!(UnitKind::Fxu.ports(), 2);
        assert_eq!(UnitKind::Lsu.ports(), 2);
        assert_eq!(UnitKind::Dfu.ports(), 1);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for u in UnitKind::ALL {
            assert!(!seen[u.index()]);
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_matches_name() {
        for u in UnitKind::ALL {
            assert_eq!(u.to_string(), u.name());
        }
    }
}
